//! The paper's motivating scenario: a streaming application and a
//! random-access application destroy each other's DRAM behaviour when
//! sharing banks — and bank partitioning restores it.
//!
//! Run with: `cargo run --release --example interference_demo`

use dbp_repro::dbp::policy::PolicyKind;
use dbp_repro::sim::{runner, SimConfig};
use dbp_repro::workloads::Mix;

fn main() {
    let cfg = SimConfig {
        warmup_instructions: 200_000,
        target_instructions: 400_000,
        epoch_cpu_cycles: 400_000,
        ..Default::default()
    };

    // libquantum-like: one sequential stream, ~97% row-buffer locality.
    // mcf-like: pointer-chasing, high bank-level parallelism.
    let mix = Mix { name: "demo", intensive_pct: 100, benchmarks: vec!["libquantum", "mcf"] };

    println!("libquantum (streaming) + mcf (random) on shared DRAM banks\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "policy", "lq IPC", "mcf IPC", "WS", "lq RBL", "rowhit"
    );
    for (label, policy) in [
        ("shared", PolicyKind::Unpartitioned),
        ("equal-BP", PolicyKind::Equal),
        ("DBP", PolicyKind::Dbp(Default::default())),
    ] {
        let mut c = cfg.clone();
        c.policy = policy;
        let run = runner::run_mix(&c, &mix);
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>10.3} {:>8.2} {:>7.1}%",
            label,
            run.shared.threads[0].ipc,
            run.shared.threads[1].ipc,
            run.metrics.weighted_speedup,
            run.shared.threads[0].rbl,
            run.shared.row_hit_rate * 100.0,
        );
    }
    println!(
        "\nUnder sharing, mcf's random accesses keep closing libquantum's \
         open rows (watch lq's RBL collapse); partitioning the banks gives \
         each application its own row buffers back."
    );
}
