//! Scheduling and partitioning are orthogonal: sweep the full
//! (scheduler x partitioning policy) matrix on one heavy mix.
//!
//! This is the paper's second contribution in miniature — the best cell
//! combines TCM scheduling with DBP partitioning.
//!
//! Run with: `cargo run --release --example scheduler_policy_matrix`

use dbp_repro::dbp::policy::PolicyKind;
use dbp_repro::sim::{runner, SchedulerKind, SimConfig};
use dbp_repro::workloads::mixes_4core;

fn main() {
    let cfg = SimConfig {
        warmup_instructions: 200_000,
        target_instructions: 400_000,
        epoch_cpu_cycles: 400_000,
        ..Default::default()
    };

    let mix = &mixes_4core()[12]; // mix100-1: four intensive applications
    println!("mix {} = {:?}\n", mix.name, mix.benchmarks);
    println!("weighted speedup / maximum slowdown:\n");

    let schedulers = [
        ("FCFS", SchedulerKind::Fcfs),
        ("FR-FCFS", SchedulerKind::FrFcfs),
        ("PAR-BS", SchedulerKind::ParBs(Default::default())),
        ("TCM", SchedulerKind::Tcm(Default::default())),
    ];
    let policies = [
        ("shared", PolicyKind::Unpartitioned),
        ("equal-BP", PolicyKind::Equal),
        ("DBP", PolicyKind::Dbp(Default::default())),
    ];

    // Alone runs do not depend on the cell under test: measure once.
    let alone = runner::alone_ipcs(&cfg, mix);

    print!("{:<10}", "");
    for (pl, _) in &policies {
        print!("{pl:>16}");
    }
    println!();
    for (sl, sched) in &schedulers {
        print!("{sl:<10}");
        for (_, policy) in &policies {
            let mut c = cfg.clone();
            c.scheduler = *sched;
            c.policy = *policy;
            let run = runner::run_mix_with_alone(&c, mix, alone.clone());
            print!(
                "{:>16}",
                format!("{:.3}/{:.3}", run.metrics.weighted_speedup, run.metrics.max_slowdown)
            );
        }
        println!();
    }
    println!("\n(higher WS is better; lower MS is fairer)");
}
