//! Quickstart: simulate one multiprogrammed mix under Dynamic Bank
//! Partitioning and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use dbp_repro::dbp::policy::PolicyKind;
use dbp_repro::sim::{runner, SchedulerKind, SimConfig};
use dbp_repro::workloads::mixes_4core;

fn main() {
    // The Table 1 system: 4 cores, DDR3-1333, 2 channels x 8 banks.
    let cfg = SimConfig {
        scheduler: SchedulerKind::FrFcfs,
        policy: PolicyKind::Dbp(Default::default()),
        // Keep the example snappy.
        warmup_instructions: 200_000,
        target_instructions: 400_000,
        epoch_cpu_cycles: 400_000,
        ..Default::default()
    };

    // mix50-1: two memory-intensive applications (mcf-like, libquantum-
    // like) plus two compute-bound ones.
    let mix = &mixes_4core()[5];
    println!("simulating {} = {:?} under DBP ...", mix.name, mix.benchmarks);

    let run = runner::run_mix(&cfg, mix);

    println!("\nper-thread results:");
    for (i, name) in mix.benchmarks.iter().enumerate() {
        let t = &run.shared.threads[i];
        println!(
            "  {name:>12}: IPC {:.3} (alone {:.3}, slowdown {:.2}x)  MPKI {:.1}  RBL {:.2}  BLP {:.2}",
            t.ipc,
            run.alone_ipcs[i],
            1.0 / run.metrics.speedups[i],
            t.mpki,
            t.rbl,
            t.blp,
        );
    }
    println!("\nsystem metrics:");
    println!(
        "  weighted speedup  {:.3}  (throughput; max = {})",
        run.metrics.weighted_speedup,
        mix.cores()
    );
    println!("  harmonic speedup  {:.3}", run.metrics.harmonic_speedup);
    println!(
        "  maximum slowdown  {:.3}  (unfairness; 1.0 is perfectly fair)",
        run.metrics.max_slowdown
    );
    println!("  row-buffer hits   {:.1}%", run.shared.row_hit_rate * 100.0);
    println!("  repartitions      {}", run.shared.repartitions);
    println!("  pages migrated    {}", run.shared.migrated_pages);
}
