//! Using the public API with a *custom* workload: define your own
//! benchmark profile and even a hand-written trace source, then see how
//! DBP sizes its bank allocation.
//!
//! Run with: `cargo run --release --example custom_workload`

use dbp_repro::cpu::{TraceOp, TraceSource};
use dbp_repro::dbp::policy::PolicyKind;
use dbp_repro::sim::{SimConfig, System};
use dbp_repro::workloads::{BenchmarkProfile, SyntheticTrace};

/// A tiny hand-written source: a strided walk over 64 MiB with a
/// pointer-chase flavour every 8th access.
struct MyKernel {
    i: u64,
    chase: u64,
}

impl TraceSource for MyKernel {
    fn next_op(&mut self) -> TraceOp {
        self.i += 1;
        if self.i.is_multiple_of(8) {
            // "Pointer chase": a pseudo-random jump.
            self.chase = self.chase.wrapping_mul(6364136223846793005).wrapping_add(1);
            TraceOp { gap: 30, addr: (self.chase >> 20) % (64 << 20), is_write: false }
        } else {
            TraceOp {
                gap: 30,
                addr: (self.i * 64) % (64 << 20),
                is_write: self.i.is_multiple_of(5),
            }
        }
    }
}

fn main() {
    // A profile-driven synthetic co-runner: extremely bank-parallel.
    let hungry = BenchmarkProfile {
        name: "custom-hungry",
        mpki: 28.0,
        rbl: 0.35,
        blp: 6.0,
        footprint_pages: 8192,
        write_frac: 0.2,
    };

    let cfg = SimConfig {
        policy: PolicyKind::Dbp(Default::default()),
        warmup_instructions: 200_000,
        target_instructions: 300_000,
        epoch_cpu_cycles: 300_000,
        ..Default::default()
    };

    let traces: Vec<Box<dyn TraceSource>> = vec![
        Box::new(MyKernel { i: 0, chase: 0x1234_5678 }),
        Box::new(SyntheticTrace::new(&hungry, 7)),
    ];
    let mut sys = System::new(cfg, traces);
    let result = sys.run();

    println!(
        "thread 0 (hand-written kernel): IPC {:.3}, MPKI {:.1}, BLP {:.2}",
        result.threads[0].ipc, result.threads[0].mpki, result.threads[0].blp
    );
    println!(
        "thread 1 (profile-driven)     : IPC {:.3}, MPKI {:.1}, BLP {:.2}",
        result.threads[1].ipc, result.threads[1].mpki, result.threads[1].blp
    );
    let plan = sys.current_plan().expect("DBP installed a plan");
    println!("\nDBP's final bank-color partition:");
    println!("  thread 0 -> {} colors: {}", plan[0].len(), plan[0]);
    println!("  thread 1 -> {} colors: {}", plan[1].len(), plan[1]);
    println!("\nThe BLP-hungry co-runner receives the larger share, sized from");
    println!("its run-time profile — no static configuration involved.");
}
