//! End-to-end tests of the `dbpsim` command-line interface.

use std::process::Command;

fn dbpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dbpsim"))
}

#[test]
fn help_prints_usage() {
    let out = dbpsim().arg("help").output().expect("spawn dbpsim");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--policy"));
}

#[test]
fn list_names_mixes_and_benchmarks() {
    let out = dbpsim().arg("list").output().expect("spawn dbpsim");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mix100-1"));
    assert!(text.contains("libquantum"));
}

#[test]
fn run_ad_hoc_mix_reports_metrics() {
    let out = dbpsim()
        .args([
            "run",
            "--bench",
            "povray,gobmk",
            "--instructions",
            "30000",
            "--warmup",
            "10000",
            "--policy",
            "equal",
        ])
        .output()
        .expect("spawn dbpsim");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("weighted speedup"));
    assert!(text.contains("povray"));
}

#[test]
fn csv_mode_emits_csv() {
    let out = dbpsim()
        .args(["run", "--bench", "povray", "--instructions", "20000", "--warmup", "5000", "--csv"])
        .output()
        .expect("spawn dbpsim");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("thread,benchmark,IPC"));
}

#[test]
fn telemetry_exports_are_valid_json() {
    let dir = std::env::temp_dir().join(format!("dbpsim-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.json");

    let out = dbpsim()
        .args([
            "run",
            "--bench",
            "mcf,povray",
            "--instructions",
            "30000",
            "--warmup",
            "10000",
            "--epoch",
            "20000",
            "--policy",
            "dbp",
        ])
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("spawn dbpsim");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let trace_doc =
        dbp_repro::obs::json::parse(&std::fs::read_to_string(&trace).expect("trace file written"))
            .expect("trace file must be valid JSON");
    let rows = trace_doc.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents array");
    assert!(rows.len() > 2, "expected events beyond the metadata rows");

    let metrics_doc = dbp_repro::obs::json::parse(
        &std::fs::read_to_string(&metrics).expect("metrics file written"),
    )
    .expect("metrics file must be valid JSON");
    let epochs = metrics_doc.get("epochs").and_then(|v| v.as_arr()).expect("epochs array");
    assert!(!epochs.is_empty(), "expected at least one sampled epoch");
    assert!(metrics_doc.get("summary").is_some());
    assert!(
        epochs[0].get("threads").and_then(|v| v.as_arr()).is_some_and(|t| t.len() == 2),
        "per-thread samples for both cores"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_options_fail_cleanly() {
    for args in [
        vec!["run"],                      // missing mix
        vec!["run", "--mix", "nope"],     // unknown mix
        vec!["run", "--bench", "quake3"], // unknown benchmark
        vec!["run", "--policy", "best"],  // unknown policy
        vec!["frobnicate"],               // unknown command
    ] {
        let out = dbpsim().args(&args).output().expect("spawn dbpsim");
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}
