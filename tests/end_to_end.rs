//! Cross-crate integration tests: the full stack (traces -> cores ->
//! caches -> OS -> controller -> DRAM -> policies) behaving as a system.

use dbp_repro::dbp::policy::PolicyKind;
use dbp_repro::sim::{runner, MigrationCost, SchedulerKind, SimConfig, System};
use dbp_repro::workloads::{mixes_4core, profiles, Mix, SyntheticTrace};

fn tiny() -> SimConfig {
    let mut cfg = SimConfig::fast_test();
    cfg.warmup_instructions = 20_000;
    cfg.target_instructions = 60_000;
    cfg
}

fn sys_for(cfg: &SimConfig, names: &[&str]) -> System {
    let traces = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Box::new(SyntheticTrace::new(profiles::by_name(n), i as u64 + 1))
                as Box<dyn dbp_repro::cpu::TraceSource>
        })
        .collect();
    System::new(cfg.clone(), traces)
}

#[test]
fn every_policy_completes_a_heavy_mix() {
    for policy in [
        PolicyKind::Unpartitioned,
        PolicyKind::Equal,
        PolicyKind::Dbp(Default::default()),
        PolicyKind::Mcp(Default::default()),
    ] {
        let mut cfg = tiny();
        cfg.policy = policy;
        let mut sys = sys_for(&cfg, &["mcf", "lbm", "libquantum", "milc"]);
        let r = sys.run();
        assert!(r.reached_target, "{policy:?} hit the cycle cap");
        for t in &r.threads {
            assert!(t.ipc > 0.0 && t.ipc <= 4.0, "{policy:?}: ipc {}", t.ipc);
        }
    }
}

#[test]
fn every_scheduler_completes_a_heavy_mix() {
    for sched in [
        SchedulerKind::Fcfs,
        SchedulerKind::FrFcfs,
        SchedulerKind::FrFcfsCap(Default::default()),
        SchedulerKind::ParBs(Default::default()),
        SchedulerKind::Atlas(Default::default()),
        SchedulerKind::Bliss(Default::default()),
        SchedulerKind::Tcm(Default::default()),
    ] {
        let mut cfg = tiny();
        cfg.scheduler = sched;
        let mut sys = sys_for(&cfg, &["mcf", "lbm"]);
        let r = sys.run();
        assert!(r.reached_target, "{sched:?} hit the cycle cap");
    }
}

#[test]
fn partitioning_isolates_intensive_threads() {
    let mut cfg = tiny();
    cfg.policy = PolicyKind::Dbp(Default::default());
    cfg.epoch_cpu_cycles = 40_000;
    let mut sys = sys_for(&cfg, &["mcf", "libquantum"]);
    sys.run();
    let plan = sys.current_plan().expect("plan installed");
    assert!(
        plan[0].is_disjoint(&plan[1]),
        "two intensive threads must end with disjoint banks: {} vs {}",
        plan[0],
        plan[1]
    );
}

#[test]
fn partitioned_runs_raise_row_hit_rate_on_conflicting_pair() {
    // A streaming thread plus a random thread: sharing banks destroys the
    // stream's locality; any bank partitioning must restore some of it.
    let run = |policy| {
        let mut cfg = tiny();
        cfg.policy = policy;
        let mut sys = sys_for(&cfg, &["libquantum", "mcf", "lbm", "omnetpp"]);
        sys.run().row_hit_rate
    };
    let shared = run(PolicyKind::Unpartitioned);
    let equal = run(PolicyKind::Equal);
    assert!(equal > shared, "equal partitioning must improve row hits: {equal:.3} vs {shared:.3}");
}

#[test]
fn mix_metrics_are_internally_consistent() {
    let cfg = tiny();
    let mix = &mixes_4core()[5];
    let run = runner::run_mix(&cfg, mix);
    let n = mix.cores();
    assert_eq!(run.metrics.speedups.len(), n);
    // WS is the sum of speedups; MS the max inverse speedup.
    let ws: f64 = run.metrics.speedups.iter().sum();
    assert!((ws - run.metrics.weighted_speedup).abs() < 1e-9);
    let ms = run.metrics.speedups.iter().map(|s| 1.0 / s).fold(f64::MIN, f64::max);
    assert!((ms - run.metrics.max_slowdown).abs() < 1e-9);
    // No thread can exceed its alone performance by more than noise.
    for &s in &run.metrics.speedups {
        assert!(s < 1.1, "speedup {s} over alone is implausible");
    }
}

#[test]
fn free_migration_is_an_upper_bound_on_migrated_traffic() {
    let mut charged = tiny();
    charged.policy = PolicyKind::Dbp(Default::default());
    charged.epoch_cpu_cycles = 30_000;
    let mut free = charged.clone();
    free.migration_cost = MigrationCost::Free;
    let rc = sys_for(&charged, &["mcf", "libquantum"]).run();
    let rf = sys_for(&free, &["mcf", "libquantum"]).run();
    assert_eq!(rf.migration_requests, 0);
    let _ = rc; // charged may or may not have measured-window migrations
}

#[test]
fn scaled_mixes_run_on_more_cores() {
    let base = &mixes_4core()[2];
    let mix8 = dbp_repro::workloads::scale_mix(base, 8);
    let mut cfg = tiny();
    cfg.target_instructions = 30_000;
    cfg.warmup_instructions = 10_000;
    let r = runner::run_shared(&cfg, &mix8);
    assert_eq!(r.threads.len(), 8);
    assert!(r.reached_target);
}

#[test]
fn fallback_allocations_do_not_happen_in_normal_runs() {
    let mut cfg = tiny();
    cfg.policy = PolicyKind::Equal;
    let mut sys = sys_for(&cfg, &["mcf", "lbm", "libquantum", "milc"]);
    let r = sys.run();
    assert_eq!(r.fallback_allocations, 0, "partitions must be large enough for the footprints");
}

#[test]
fn single_thread_mix_works() {
    let cfg = tiny();
    let mix = Mix { name: "solo", intensive_pct: 100, benchmarks: vec!["mcf"] };
    let run = runner::run_mix(&cfg, &mix);
    // Alone == shared for a single thread: speedup ~ 1.
    assert!((run.metrics.speedups[0] - 1.0).abs() < 0.05);
    assert!((run.metrics.max_slowdown - 1.0).abs() < 0.05);
}
