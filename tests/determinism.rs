//! Bit-exact reproducibility across the whole stack.
//!
//! Everything in the simulator is seeded and ordered: two identical runs
//! must produce identical statistics, or experiments are not comparable.

use dbp_repro::cpu::TraceSource;
use dbp_repro::dbp::policy::PolicyKind;
use dbp_repro::sim::{runner, RunResult, SchedulerKind, SimConfig};
use dbp_repro::workloads::{mixes_4core, profiles, SyntheticTrace};

fn run_once(policy: PolicyKind, sched: SchedulerKind) -> RunResult {
    let mut cfg = SimConfig::fast_test();
    cfg.warmup_instructions = 20_000;
    cfg.target_instructions = 50_000;
    cfg.policy = policy;
    cfg.scheduler = sched;
    runner::run_shared(&cfg, &mixes_4core()[5])
}

#[test]
fn identical_runs_are_bit_exact_shared() {
    let a = run_once(PolicyKind::Unpartitioned, SchedulerKind::FrFcfs);
    let b = run_once(PolicyKind::Unpartitioned, SchedulerKind::FrFcfs);
    assert_eq!(a, b);
}

#[test]
fn identical_runs_are_bit_exact_dbp() {
    let a = run_once(PolicyKind::Dbp(Default::default()), SchedulerKind::FrFcfs);
    let b = run_once(PolicyKind::Dbp(Default::default()), SchedulerKind::FrFcfs);
    assert_eq!(a, b, "DBP runs (including migrations) must be deterministic");
}

#[test]
fn identical_runs_are_bit_exact_tcm_mcp() {
    let a = run_once(PolicyKind::Mcp(Default::default()), SchedulerKind::Tcm(Default::default()));
    let b = run_once(PolicyKind::Mcp(Default::default()), SchedulerKind::Tcm(Default::default()));
    assert_eq!(a, b);
}

#[test]
fn different_policies_actually_differ() {
    let a = run_once(PolicyKind::Unpartitioned, SchedulerKind::FrFcfs);
    let b = run_once(PolicyKind::Equal, SchedulerKind::FrFcfs);
    assert_ne!(a, b, "policies must change observable behaviour");
}

/// The structural equality above could in principle pass while a rendered
/// report differs (e.g. via a non-deterministic Debug impl); pin the
/// byte-level rendering too, since reports are what humans diff.
#[test]
fn same_seed_reports_are_byte_identical() {
    let a = run_once(PolicyKind::Dbp(Default::default()), SchedulerKind::FrFcfs);
    let b = run_once(PolicyKind::Dbp(Default::default()), SchedulerKind::FrFcfs);
    assert_eq!(
        format!("{a:#?}").into_bytes(),
        format!("{b:#?}").into_bytes(),
        "rendered reports must match byte for byte"
    );
}

/// Telemetry must observe, never perturb: a run with an enabled recorder
/// attached is byte-identical to the same run without one. This is the
/// contract that lets `--trace-out` be used on real experiments without
/// invalidating them.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    use dbp_repro::obs::{Recorder, RecorderConfig};

    let mut cfg = SimConfig::fast_test();
    cfg.warmup_instructions = 20_000;
    cfg.target_instructions = 50_000;
    cfg.policy = PolicyKind::Dbp(Default::default());
    let mix = &mixes_4core()[5];

    let silent = runner::run_shared(&cfg, mix);
    let rec = Recorder::new(RecorderConfig::default());
    let recorded = runner::run_shared_recorded(&cfg, mix, rec.clone());

    assert_eq!(silent, recorded, "an enabled recorder must not change the run");
    let t = rec.snapshot();
    assert!(!t.events.is_empty(), "the recorder must actually have observed events");
    assert!(!t.series.is_empty(), "the recorder must have sampled epoch metrics");
}

/// Self-profiling must observe, never perturb: a run with an enabled
/// host profiler is byte-identical to the same run without one, and the
/// profile it produces survives a JSON round-trip (exact-sum included)
/// while a future-major document is rejected. This is the contract that
/// lets `--profile-out` ride along on real experiments.
#[test]
fn profiling_does_not_perturb_the_simulation() {
    use dbp_repro::obs::{export, Prof, Profile};

    let mut cfg = SimConfig::fast_test();
    cfg.warmup_instructions = 20_000;
    cfg.target_instructions = 50_000;
    cfg.policy = PolicyKind::Dbp(Default::default());
    let mix = &mixes_4core()[5];

    let silent = runner::run_shared(&cfg, mix);
    let prof = Prof::enabled();
    let profiled = runner::run_shared_profiled(&cfg, mix, prof.clone());
    assert_eq!(silent, profiled, "an enabled profiler must not change the run");
    assert_eq!(
        format!("{silent:#?}").into_bytes(),
        format!("{profiled:#?}").into_bytes(),
        "rendered reports must match byte for byte"
    );

    // The profile itself: non-empty, exact-sum (asserted inside
    // snapshot), and stable through the export document.
    let profile = prof.snapshot();
    assert!(!profile.is_empty(), "the profiler must actually have observed spans");
    let doc = export::profile_document(
        &profile,
        dbp_repro::obs::Json::obj([("mix", dbp_repro::obs::Json::str(mix.name))]),
    );
    let text = doc.to_json();
    let parsed = dbp_repro::obs::json::parse(&text).expect("profile document must be valid JSON");
    export::check_schema_version(&parsed).expect("own schema version must be accepted");
    let back = Profile::from_json(&parsed).expect("profile must round-trip");
    assert_eq!(profile, back, "span tree and counters must survive the round-trip");

    // A document stamped with a future major schema must be rejected.
    let future = text.replacen(
        &format!("\"schema_version\":\"{}\"", export::SCHEMA_VERSION),
        "\"schema_version\":\"99.0\"",
        1,
    );
    assert_ne!(future, text, "replacement must have found the version stamp");
    let parsed = dbp_repro::obs::json::parse(&future).unwrap();
    assert!(
        export::check_schema_version(&parsed).is_err(),
        "a future-major document must be rejected, not misread"
    );
}

/// The in-tree xoshiro256++ PRNG must actually respond to its seed: the
/// same (profile, seed) pair replays an identical op stream, while a
/// different seed diverges.
#[test]
fn changing_the_trace_seed_changes_the_trace() {
    let stream = |seed: u64| {
        let mut t = SyntheticTrace::new(profiles::by_name("mcf"), seed);
        (0..4096).map(|_| t.next_op()).collect::<Vec<_>>()
    };
    let base = stream(7);
    assert_eq!(base, stream(7), "same seed must replay the same ops");
    assert_ne!(base, stream(8), "a changed seed must produce a different trace");
}
