//! Property-based tests on the partitioning policies through the public
//! API: for *any* profile vector, the plans must be well-formed.

use dbp_repro::dbp::policy::{
    ChannelPartitioning, Dbp, EqualBankPartitioning, PartitionPolicy, Unpartitioned,
};
use dbp_repro::dbp::{ColorTopology, ThreadMemProfile};
use dbp_repro::osmem::ColorSet;
use dbp_util::prop::{check, f64_range, range, vec_of, CaseResult, Config, Gen};
use dbp_util::{prop_assert, prop_assert_eq};

fn arb_profile() -> impl Gen<Value = ThreadMemProfile> {
    (
        f64_range(0.0..60.0),
        f64_range(0.0..1.0),
        f64_range(1.0..8.0),
        range(1u64..200_000),
        range(0u64..800_000),
    )
        .map(|(mpki, rbl, blp, reads, bus)| ThreadMemProfile {
            mpki,
            rbl,
            blp,
            reads,
            bus_cycles: bus,
        })
}

fn arb_topology() -> impl Gen<Value = ColorTopology> {
    (range(0u32..2), range(0u32..2), range(1u32..5))
        .map(|(ch, ra, ba)| ColorTopology::new(1 << ch, 1 << ra, 1 << ba))
}

fn check_plan_wellformed(plan: &[ColorSet], topo: &ColorTopology, n: usize) -> CaseResult {
    prop_assert_eq!(plan.len(), n);
    for s in plan {
        prop_assert!(!s.is_empty(), "every thread needs at least one color");
        for c in s.iter() {
            prop_assert!(c < topo.num_colors(), "color {c} out of range");
        }
    }
    Ok(())
}

#[test]
fn dbp_plans_are_wellformed() {
    let g = (vec_of(arb_profile(), 1..6), arb_topology());
    check(Config::cases(64), &g, |(profiles, topo)| {
        let mut dbp = Dbp::new(Default::default());
        let n = profiles.len();
        let plan = dbp.partition(&profiles, &topo, None);
        check_plan_wellformed(&plan, &topo, n)?;
        // Repartitioning with the same profiles must be stable.
        let again = dbp.partition(&profiles, &topo, Some(&plan));
        prop_assert_eq!(&plan, &again);
        Ok(())
    });
}

#[test]
fn dbp_intensive_threads_get_disjoint_colors() {
    let g = (vec_of(arb_profile(), 2..6), arb_topology());
    check(Config::cases(64), &g, |(profiles, topo)| {
        let mut dbp = Dbp::new(Default::default());
        let plan = dbp.partition(&profiles, &topo, None);
        let intensive: Vec<usize> =
            (0..profiles.len()).filter(|&t| profiles[t].mpki >= 1.25).collect();
        // When every intensive thread can have its own unit, their color
        // sets are pairwise disjoint.
        if !intensive.is_empty()
            && (intensive.len() as u32) < topo.units()
            && intensive.len() < profiles.len()
        {
            for (a, &i) in intensive.iter().enumerate() {
                for &j in &intensive[a + 1..] {
                    prop_assert!(
                        plan[i].is_disjoint(&plan[j]),
                        "threads {i} and {j} share colors: {} vs {}",
                        plan[i],
                        plan[j]
                    );
                }
            }
        }
        Ok(())
    });
}

#[test]
fn equal_plans_partition_everything() {
    let g = (range(1usize..9), arb_topology());
    check(Config::cases(64), &g, |(n, topo)| {
        let mut eq = EqualBankPartitioning;
        let profiles = vec![ThreadMemProfile::default(); n];
        let plan = eq.partition(&profiles, &topo, None);
        check_plan_wellformed(&plan, &topo, n)?;
        let union = plan.iter().fold(ColorSet::empty(), |a, s| a.union(s));
        prop_assert_eq!(union, topo.all_colors());
        Ok(())
    });
}

#[test]
fn mcp_plans_are_wellformed() {
    let g = (vec_of(arb_profile(), 1..6), arb_topology());
    check(Config::cases(64), &g, |(profiles, topo)| {
        let mut mcp = ChannelPartitioning::new(Default::default());
        let n = profiles.len();
        let plan = mcp.partition(&profiles, &topo, None);
        check_plan_wellformed(&plan, &topo, n)?;
        // MCP allocates whole channels: each thread's set is a union of
        // complete channels.
        for s in &plan {
            for ch in 0..topo.channels() {
                let overlap = topo.channel_colors(ch).intersection(s).len();
                prop_assert!(
                    overlap == 0 || overlap == topo.channel_colors(ch).len(),
                    "partial channel in MCP plan"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn unpartitioned_always_grants_everything() {
    let g = (vec_of(arb_profile(), 1..6), arb_topology());
    check(Config::cases(64), &g, |(profiles, topo)| {
        let mut u = Unpartitioned;
        let plan = u.partition(&profiles, &topo, None);
        for s in &plan {
            prop_assert_eq!(*s, topo.all_colors());
        }
        Ok(())
    });
}
