//! Property-based tests on the partitioning policies through the public
//! API: for *any* profile vector, the plans must be well-formed.

use dbp_repro::dbp::policy::{
    ChannelPartitioning, Dbp, EqualBankPartitioning, PartitionPolicy, Unpartitioned,
};
use dbp_repro::dbp::{ColorTopology, ThreadMemProfile};
use dbp_repro::osmem::ColorSet;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = ThreadMemProfile> {
    (0.0f64..60.0, 0.0f64..1.0, 1.0f64..8.0, 1u64..200_000, 0u64..800_000).prop_map(
        |(mpki, rbl, blp, reads, bus)| ThreadMemProfile {
            mpki,
            rbl,
            blp,
            reads,
            bus_cycles: bus,
        },
    )
}

fn arb_topology() -> impl Strategy<Value = ColorTopology> {
    (0u32..2, 0u32..2, 1u32..5)
        .prop_map(|(ch, ra, ba)| ColorTopology::new(1 << ch, 1 << ra, 1 << ba))
}

fn check_plan_wellformed(plan: &[ColorSet], topo: &ColorTopology, n: usize) {
    assert_eq!(plan.len(), n);
    for s in plan {
        assert!(!s.is_empty(), "every thread needs at least one color");
        for c in s.iter() {
            assert!(c < topo.num_colors(), "color {c} out of range");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dbp_plans_are_wellformed(
        profiles in prop::collection::vec(arb_profile(), 1..6),
        topo in arb_topology(),
    ) {
        let mut dbp = Dbp::new(Default::default());
        let n = profiles.len();
        let plan = dbp.partition(&profiles, &topo, None);
        check_plan_wellformed(&plan, &topo, n);
        // Repartitioning with the same profiles must be stable.
        let again = dbp.partition(&profiles, &topo, Some(&plan));
        prop_assert_eq!(&plan, &again);
    }

    #[test]
    fn dbp_intensive_threads_get_disjoint_colors(
        profiles in prop::collection::vec(arb_profile(), 2..6),
        topo in arb_topology(),
    ) {
        let mut dbp = Dbp::new(Default::default());
        let plan = dbp.partition(&profiles, &topo, None);
        let intensive: Vec<usize> = (0..profiles.len())
            .filter(|&t| profiles[t].mpki >= 1.25)
            .collect();
        // When every intensive thread can have its own unit, their color
        // sets are pairwise disjoint.
        if !intensive.is_empty()
            && (intensive.len() as u32) < topo.units()
            && intensive.len() < profiles.len()
        {
            for (a, &i) in intensive.iter().enumerate() {
                for &j in &intensive[a + 1..] {
                    prop_assert!(
                        plan[i].is_disjoint(&plan[j]),
                        "threads {i} and {j} share colors: {} vs {}",
                        plan[i],
                        plan[j]
                    );
                }
            }
        }
    }

    #[test]
    fn equal_plans_partition_everything(
        n in 1usize..9,
        topo in arb_topology(),
    ) {
        let mut eq = EqualBankPartitioning;
        let profiles = vec![ThreadMemProfile::default(); n];
        let plan = eq.partition(&profiles, &topo, None);
        check_plan_wellformed(&plan, &topo, n);
        let union = plan.iter().fold(ColorSet::empty(), |a, s| a.union(s));
        prop_assert_eq!(union, topo.all_colors());
    }

    #[test]
    fn mcp_plans_are_wellformed(
        profiles in prop::collection::vec(arb_profile(), 1..6),
        topo in arb_topology(),
    ) {
        let mut mcp = ChannelPartitioning::new(Default::default());
        let n = profiles.len();
        let plan = mcp.partition(&profiles, &topo, None);
        check_plan_wellformed(&plan, &topo, n);
        // MCP allocates whole channels: each thread's set is a union of
        // complete channels.
        for s in &plan {
            for ch in 0..topo.channels() {
                let overlap = topo.channel_colors(ch).intersection(s).len();
                prop_assert!(
                    overlap == 0 || overlap == topo.channel_colors(ch).len(),
                    "partial channel in MCP plan"
                );
            }
        }
    }

    #[test]
    fn unpartitioned_always_grants_everything(
        profiles in prop::collection::vec(arb_profile(), 1..6),
        topo in arb_topology(),
    ) {
        let mut u = Unpartitioned;
        let plan = u.partition(&profiles, &topo, None);
        for s in &plan {
            prop_assert_eq!(*s, topo.all_colors());
        }
    }
}
