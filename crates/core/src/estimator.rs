//! Bank-demand estimation from run-time profiles.
//!
//! The key principle of the paper: *"profile threads' memory
//! characteristics at run-time and estimate their demands for bank
//! amount, then use the estimation to direct bank partitioning."*
//!
//! A thread's achieved BLP under-reports the parallelism it could exploit
//! — banks were contended while it was measured — so the estimate scales
//! measured BLP by a head-room factor `alpha`. Threads with very high
//! row-buffer locality are discounted: a streaming thread keeps one row
//! open per stream and gains little from extra banks.

use crate::profile::ThreadMemProfile;

/// Tuning knobs for [`BankDemandEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Head-room multiplier over measured BLP (paper intuition: a thread
    /// needs more banks than it currently reaches to avoid serialisation).
    pub alpha: f64,
    /// RBL above which demand is discounted (streaming threads).
    pub high_rbl: f64,
    /// Multiplier applied to the demand of high-RBL threads.
    pub rbl_discount: f64,
    /// Threads at or above this MPKI get at least
    /// `bandwidth_floor_units` regardless of discounts: a heavily
    /// streaming thread still needs a second bank to overlap the next
    /// row activation with the current row's drain (and to absorb its
    /// write-backs).
    pub bandwidth_floor_mpki: f64,
    /// The floor applied to such threads.
    pub bandwidth_floor_units: u32,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            alpha: 2.0,
            high_rbl: 0.85,
            rbl_discount: 0.5,
            bandwidth_floor_mpki: 10.0,
            bandwidth_floor_units: 2,
        }
    }
}

/// Estimates how many bank units a thread can profitably use.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankDemandEstimator {
    cfg: EstimatorConfig,
}

impl BankDemandEstimator {
    /// Build an estimator.
    pub fn new(cfg: EstimatorConfig) -> Self {
        assert!(cfg.alpha > 0.0, "alpha must be positive");
        BankDemandEstimator { cfg }
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Estimated bank-unit demand of `profile`, clamped to
    /// `1..=max_units`.
    pub fn demand(&self, profile: &ThreadMemProfile, max_units: u32) -> u32 {
        let mut d = self.cfg.alpha * profile.blp.max(1.0);
        if profile.rbl >= self.cfg.high_rbl {
            d *= self.cfg.rbl_discount;
        }
        let mut d = d.round() as u32;
        if profile.mpki >= self.cfg.bandwidth_floor_mpki {
            d = d.max(self.cfg.bandwidth_floor_units);
        }
        d.clamp(1, max_units.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(blp: f64, rbl: f64) -> ThreadMemProfile {
        ThreadMemProfile { mpki: 20.0, rbl, blp, reads: 1000, bus_cycles: 4000 }
    }

    #[test]
    fn demand_scales_with_blp() {
        let e = BankDemandEstimator::default();
        assert!(e.demand(&prof(6.0, 0.3), 32) > e.demand(&prof(1.5, 0.3), 32));
        assert_eq!(e.demand(&prof(4.0, 0.3), 32), 8); // alpha = 2
    }

    #[test]
    fn streaming_threads_discounted() {
        let e = BankDemandEstimator::default();
        let random = e.demand(&prof(3.0, 0.2), 32);
        let stream = e.demand(&prof(3.0, 0.95), 32);
        assert!(stream < random);
    }

    #[test]
    fn clamped_to_bounds() {
        let e = BankDemandEstimator::default();
        assert_eq!(e.demand(&prof(0.0, 0.0), 32), 2); // max(blp,1)*alpha
        assert_eq!(e.demand(&prof(100.0, 0.0), 8), 8);
        assert!(e.demand(&prof(0.1, 0.99), 32) >= 1);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_panics() {
        let _ = BankDemandEstimator::new(EstimatorConfig { alpha: 0.0, ..Default::default() });
    }
}
