//! Static equal bank partitioning (Jeong et al. HPCA 2012 / Liu et al.
//! PACT 2012), the prior work DBP improves on.

use dbp_osmem::ColorSet;

use crate::policy::PartitionPolicy;
use crate::profile::ThreadMemProfile;
use crate::topology::ColorTopology;

/// Split the bank units evenly among threads, ignoring their behaviour.
///
/// Eliminates inter-thread row-buffer interference like any bank
/// partitioning, but caps every thread at `banks / n` banks — which
/// destroys the bank-level parallelism of threads that could use more.
/// That lost BLP is exactly what [`crate::policy::Dbp`] recovers.
///
/// When there are more threads than units, threads share units
/// round-robin (`thread i -> unit i mod units`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualBankPartitioning;

impl PartitionPolicy for EqualBankPartitioning {
    fn name(&self) -> &'static str {
        "equal bank partitioning"
    }

    fn partition(
        &mut self,
        profiles: &[ThreadMemProfile],
        topo: &ColorTopology,
        _prev: Option<&[ColorSet]>,
    ) -> Vec<ColorSet> {
        let n = profiles.len() as u32;
        assert!(n > 0, "no threads to partition");
        let units = topo.units();
        if n > units {
            return (0..n).map(|t| topo.unit_colors(t % units)).collect();
        }
        let per = units / n;
        let extra = units % n;
        let mut next = 0u32;
        (0..n)
            .map(|t| {
                let count = per + u32::from(t < extra);
                let set = topo.units_colors(next..next + count);
                next += count;
                set
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_threads_eight_units() {
        let topo = ColorTopology::new(2, 2, 8);
        let mut p = EqualBankPartitioning;
        let plan = p.partition(&[ThreadMemProfile::default(); 4], &topo, None);
        // Each thread: 2 units x 4 (ch,rank) = 8 colors.
        for s in &plan {
            assert_eq!(s.len(), 8);
        }
        // Disjoint and complete.
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(plan[i].is_disjoint(&plan[j]));
            }
        }
        let union = plan.iter().fold(ColorSet::empty(), |a, s| a.union(s));
        assert_eq!(union, topo.all_colors());
    }

    #[test]
    fn uneven_split_gives_remainder_to_first() {
        let topo = ColorTopology::new(1, 1, 8);
        let mut p = EqualBankPartitioning;
        let plan = p.partition(&[ThreadMemProfile::default(); 3], &topo, None);
        let lens: Vec<u32> = plan.iter().map(ColorSet::len).collect();
        assert_eq!(lens, vec![3, 3, 2]);
    }

    #[test]
    fn more_threads_than_units_shares_round_robin() {
        let topo = ColorTopology::new(1, 1, 4);
        let mut p = EqualBankPartitioning;
        let plan = p.partition(&[ThreadMemProfile::default(); 6], &topo, None);
        assert_eq!(plan[0], plan[4]);
        assert_eq!(plan[1], plan[5]);
        assert!(plan[0].is_disjoint(&plan[1]));
    }

    #[test]
    fn ignores_profiles_entirely() {
        let topo = ColorTopology::new(2, 2, 8);
        let mut p = EqualBankPartitioning;
        let hungry = ThreadMemProfile { blp: 8.0, mpki: 50.0, ..Default::default() };
        let idle = ThreadMemProfile::default();
        let plan = p.partition(&[hungry, idle], &topo, None);
        assert_eq!(plan[0].len(), plan[1].len());
    }
}
