//! The shared baseline: no partitioning at all.

use dbp_osmem::ColorSet;

use crate::policy::PartitionPolicy;
use crate::profile::ThreadMemProfile;
use crate::topology::ColorTopology;

/// Every thread may allocate from every color. Interference is whatever
/// the scheduler permits — this is the conventional shared memory system.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unpartitioned;

impl PartitionPolicy for Unpartitioned {
    fn name(&self) -> &'static str {
        "unpartitioned"
    }

    fn partition(
        &mut self,
        profiles: &[ThreadMemProfile],
        topo: &ColorTopology,
        _prev: Option<&[ColorSet]>,
    ) -> Vec<ColorSet> {
        vec![topo.all_colors(); profiles.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everyone_gets_everything() {
        let topo = ColorTopology::new(2, 2, 8);
        let mut p = Unpartitioned;
        let plan = p.partition(&[ThreadMemProfile::default(); 4], &topo, None);
        assert_eq!(plan.len(), 4);
        for s in plan {
            assert_eq!(s, topo.all_colors());
        }
    }
}
