//! Dynamic Bank Partitioning — the paper's algorithm.

use dbp_osmem::ColorSet;

use crate::estimator::{BankDemandEstimator, EstimatorConfig};
use crate::policy::{proportional_alloc, PartitionPolicy};
use crate::profile::ThreadMemProfile;
use crate::topology::ColorTopology;

/// DBP tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbpConfig {
    /// Threads below this MPKI are *non-intensive* and grouped onto a
    /// shared slice — they rarely conflict, so dedicating banks to each
    /// of them wastes parallelism the intensive threads need.
    pub low_mpki: f64,
    /// Demand-estimation parameters.
    pub estimator: EstimatorConfig,
    /// Minimum bank-unit demand attributed to the non-intensive group
    /// (it behaves like one thread with at least this much parallelism).
    pub calm_group_floor: u32,
    /// Ablation switch: when false, non-intensive threads are *not*
    /// grouped and compete for dedicated units like everyone else.
    pub group_non_intensive: bool,
}

impl Default for DbpConfig {
    fn default() -> Self {
        DbpConfig {
            low_mpki: 1.0,
            estimator: EstimatorConfig::default(),
            calm_group_floor: 2,
            group_non_intensive: true,
        }
    }
}

/// The Dynamic Bank Partitioning policy.
///
/// Each epoch:
///
/// 1. classify threads by memory intensity (with hysteresis);
/// 2. estimate every intensive thread's bank-unit demand from its
///    measured BLP and row locality (exponentially smoothed);
/// 3. treat the non-intensive threads as *one* group-taker whose demand is
///    that of its hungriest member;
/// 4. **water-fill** the bank units: takers whose demand fits under the
///    fair share get exactly their demand, the freed units flow to the
///    BLP-hungry takers, and any surplus is split proportionally — so no
///    thread is squeezed below its demand to feed another (the failure
///    mode of both equal partitioning and naive proportional splits);
/// 5. keep previously-owned units wherever possible and debounce count
///    changes, so repartitioning migrates few pages.
#[derive(Debug)]
pub struct Dbp {
    cfg: DbpConfig,
    est: BankDemandEstimator,
    last_demands: Vec<u32>,
    ewma_demand: Vec<f64>,
    was_intensive: Vec<bool>,
    pending_counts: Option<Vec<u32>>,
    rec: dbp_obs::Recorder,
}

impl Dbp {
    /// Build the policy.
    pub fn new(cfg: DbpConfig) -> Self {
        assert!(cfg.calm_group_floor >= 1, "calm group needs at least one unit");
        Dbp {
            est: BankDemandEstimator::new(cfg.estimator),
            cfg,
            last_demands: Vec::new(),
            ewma_demand: Vec::new(),
            was_intensive: Vec::new(),
            pending_counts: None,
            rec: dbp_obs::Recorder::disabled(),
        }
    }

    fn classify_intensive(&mut self, t: usize, profile: &ThreadMemProfile) -> bool {
        let (enter, leave) = (self.cfg.low_mpki * 1.25, self.cfg.low_mpki * 0.75);
        let now = if self.was_intensive[t] { profile.mpki >= leave } else { profile.mpki >= enter };
        self.was_intensive[t] = now;
        now
    }

    fn smoothed_demand(&mut self, t: usize, raw: u32) -> f64 {
        let raw = f64::from(raw);
        let prev = self.ewma_demand[t];
        let next = if prev == 0.0 { raw } else { 0.5 * prev + 0.5 * raw };
        self.ewma_demand[t] = next;
        next
    }

    /// The per-thread demand estimates from the most recent
    /// [`PartitionPolicy::partition`] call (0 for non-intensive threads).
    pub fn last_demands(&self) -> &[u32] {
        &self.last_demands
    }

    /// Water-filling with demand caps until the pool is spoken for, then
    /// proportional surplus. Every taker gets at least one unit.
    ///
    /// # Panics
    ///
    /// Panics if there are more takers than units.
    fn water_fill(pool: u32, demands: &[u32]) -> Vec<u32> {
        let n = demands.len();
        assert!(n as u32 <= pool, "more takers than units");
        let total_demand: u32 = demands.iter().sum();
        if total_demand <= pool {
            // Everyone's demand fits; split the surplus proportionally.
            let surplus = pool - total_demand;
            let extra = proportional_alloc(
                surplus + n as u32,
                &demands.iter().map(|&d| f64::from(d)).collect::<Vec<_>>(),
            );
            return demands
                .iter()
                .zip(extra)
                .map(|(&d, e)| d + e - 1) // proportional_alloc guarantees >= 1
                .collect();
        }
        // Demand exceeds supply: satisfy small demands fully, then share
        // the rest proportionally among the big ones.
        let mut alloc: Vec<Option<u32>> = vec![None; n];
        let mut remaining = pool;
        let mut active: Vec<usize> = (0..n).collect();
        loop {
            let share = remaining / active.len() as u32;
            let (fits, over): (Vec<usize>, Vec<usize>) =
                active.iter().partition(|&&i| demands[i] <= share.max(1));
            if fits.is_empty() || over.is_empty() {
                let dem: Vec<f64> = active.iter().map(|&i| f64::from(demands[i])).collect();
                let split = proportional_alloc(remaining, &dem);
                for (&i, s) in active.iter().zip(split) {
                    alloc[i] = Some(s);
                }
                break;
            }
            for &i in &fits {
                alloc[i] = Some(demands[i]);
                remaining -= demands[i];
            }
            active = over;
        }
        alloc.into_iter().map(|a| a.expect("all takers assigned")).collect()
    }

    /// Stable unit assignment: keep previously-owned units, then fill
    /// ascending. `counts[k]` units for taker `k`; `prev_units[k]` lists
    /// units taker `k` currently owns within the pool `0..pool`.
    fn assign_stable(pool: u32, counts: &[u32], prev_units: &[Vec<u32>]) -> Vec<Vec<u32>> {
        let mut owner: Vec<Option<usize>> = vec![None; pool as usize];
        let mut result: Vec<Vec<u32>> = vec![Vec::new(); counts.len()];
        for (k, prev) in prev_units.iter().enumerate() {
            for &u in prev {
                if u < pool && owner[u as usize].is_none() && result[k].len() < counts[k] as usize {
                    owner[u as usize] = Some(k);
                    result[k].push(u);
                }
            }
        }
        for (k, &count) in counts.iter().enumerate() {
            let mut u = 0u32;
            while result[k].len() < count as usize {
                debug_assert!(u < pool, "unit pool exhausted");
                if owner[u as usize].is_none() {
                    owner[u as usize] = Some(k);
                    result[k].push(u);
                }
                u += 1;
            }
            result[k].sort_unstable();
        }
        result
    }
}

impl PartitionPolicy for Dbp {
    fn name(&self) -> &'static str {
        "dynamic bank partitioning"
    }

    fn attach_recorder(&mut self, rec: dbp_obs::Recorder) {
        self.rec = rec;
    }

    fn partition(
        &mut self,
        profiles: &[ThreadMemProfile],
        topo: &ColorTopology,
        prev: Option<&[ColorSet]>,
    ) -> Vec<ColorSet> {
        let n = profiles.len();
        assert!(n > 0, "no threads to partition");
        self.last_demands = vec![0; n];
        if self.ewma_demand.len() != n {
            self.ewma_demand = vec![0.0; n];
            self.was_intensive = vec![false; n];
        }
        // Cold start (no measurements yet): fall back to the equal-split
        // prior so the first real epoch only migrates the *delta* between
        // equal and demand-proportional shares.
        if profiles.iter().all(|p| p.reads == 0) {
            return crate::policy::EqualBankPartitioning.partition(profiles, topo, prev);
        }
        let (intensive, calm): (Vec<usize>, Vec<usize>) = (0..n).partition(|&t| {
            !self.cfg.group_non_intensive || self.classify_intensive(t, &profiles[t])
        });
        // Nothing intensive: partitioning buys nothing; leave everything
        // shared so the non-intensive threads keep all their locality.
        if intensive.is_empty() {
            return vec![topo.all_colors(); n];
        }
        let units = topo.units();
        // Takers: one per intensive thread + one for the calm group.
        let n_takers = intensive.len() as u32 + u32::from(!calm.is_empty());
        if n_takers > units {
            // More takers than units: fall back to round-robin sharing.
            let mut plan = vec![ColorSet::empty(); n];
            for (k, &t) in intensive.iter().enumerate() {
                self.last_demands[t] = 1;
                plan[t] = topo.unit_colors(k as u32 % units);
            }
            let calm_set = topo.unit_colors(units - 1);
            for &t in &calm {
                plan[t] = calm_set;
            }
            return plan;
        }
        let mut demands: Vec<u32> = intensive
            .iter()
            .map(|&t| {
                let raw = self.est.demand(&profiles[t], units);
                let d = self.smoothed_demand(t, raw).round().max(1.0) as u32;
                self.last_demands[t] = d;
                self.rec.emit(dbp_obs::EventKind::BankDemand { thread: t, units: d });
                d
            })
            .collect();
        if !calm.is_empty() {
            let calm_max =
                calm.iter().map(|&t| self.est.demand(&profiles[t], units)).max().unwrap_or(1);
            demands.push(calm_max.max(self.cfg.calm_group_floor));
        }
        let mut counts = Self::water_fill(units, &demands);
        let prev_units: Vec<Vec<u32>> = intensive
            .iter()
            .map(|&t| match prev {
                Some(p) => topo.units_of(&p[t]),
                None => Vec::new(),
            })
            .chain(calm.first().map(|&t| match prev {
                Some(p) => topo.units_of(&p[t]),
                None => Vec::new(),
            }))
            .collect();
        // Debounce: adopt a changed count vector only when the same vector
        // is proposed in two consecutive epochs. Rounding flapping (a
        // demand hovering between two unit counts) then never migrates
        // pages, while a genuine demand shift is adopted one epoch late.
        if prev.is_some() {
            let prev_counts: Vec<u32> = prev_units.iter().map(|u| u.len() as u32).collect();
            let fits =
                prev_counts.iter().sum::<u32>() == units && prev_counts.iter().all(|&c| c >= 1);
            if fits && counts != prev_counts {
                if self.pending_counts.as_ref() == Some(&counts) {
                    self.pending_counts = None; // confirmed: adopt
                } else {
                    self.pending_counts = Some(counts.clone());
                    counts = prev_counts;
                }
            } else {
                self.pending_counts = None;
            }
        }
        let assigned = Self::assign_stable(units, &counts, &prev_units);
        let mut plan = vec![ColorSet::empty(); n];
        for (k, &t) in intensive.iter().enumerate() {
            plan[t] = topo.units_colors(assigned[k].iter().copied());
        }
        if !calm.is_empty() {
            let calm_set = topo.units_colors(assigned[intensive.len()].iter().copied());
            for &t in &calm {
                plan[t] = calm_set;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn intensive(blp: f64, rbl: f64) -> ThreadMemProfile {
        ThreadMemProfile { mpki: 25.0, rbl, blp, reads: 50_000, bus_cycles: 200_000 }
    }

    fn calm() -> ThreadMemProfile {
        ThreadMemProfile { mpki: 0.2, rbl: 0.5, blp: 1.0, reads: 400, bus_cycles: 1_600 }
    }

    fn topo() -> ColorTopology {
        ColorTopology::new(2, 2, 8)
    }

    #[test]
    fn water_fill_respects_demand_caps() {
        // Demands [6, 2] over 8: both satisfied exactly.
        assert_eq!(Dbp::water_fill(8, &[6, 2]), vec![6, 2]);
        // Over-demand [6, 6] over 8: proportional split.
        assert_eq!(Dbp::water_fill(8, &[6, 6]), vec![4, 4]);
        // Small demand protected: [7, 1] over 4 -> [3, 1].
        assert_eq!(Dbp::water_fill(4, &[7, 1]), vec![3, 1]);
    }

    #[test]
    fn water_fill_distributes_surplus() {
        // Demands [2, 2] over 8: surplus split evenly.
        let a = Dbp::water_fill(8, &[2, 2]);
        assert_eq!(a.iter().sum::<u32>(), 8);
        assert_eq!(a, vec![4, 4]);
        // Surplus follows demand.
        let b = Dbp::water_fill(8, &[4, 2]);
        assert_eq!(b.iter().sum::<u32>(), 8);
        assert!(b[0] > b[1]);
    }

    #[test]
    fn water_fill_never_starves() {
        for pool in 3..=16u32 {
            for d in 1..=8u32 {
                let a = Dbp::water_fill(pool, &[d, 8, 8].map(|x| x.min(pool)));
                assert_eq!(a.iter().sum::<u32>(), pool, "pool {pool} d {d}");
                assert!(a.iter().all(|&x| x >= 1));
            }
        }
    }

    #[test]
    fn high_blp_thread_gets_more_banks() {
        let mut dbp = Dbp::new(DbpConfig::default());
        let plan = dbp.partition(&[intensive(6.0, 0.2), intensive(1.2, 0.95)], &topo(), None);
        assert!(plan[0].len() > plan[1].len());
        assert!(plan[0].is_disjoint(&plan[1]));
        assert!(dbp.last_demands()[0] > dbp.last_demands()[1]);
    }

    #[test]
    fn streaming_thread_keeps_its_demand() {
        // The streaming thread's demand (~2 units) must be satisfied, not
        // squeezed to 1 by the hungry thread.
        let mut dbp = Dbp::new(DbpConfig::default());
        let plan = dbp.partition(&[intensive(8.0, 0.2), intensive(1.0, 0.95)], &topo(), None);
        let streaming_units = topo().units_of(&plan[1]).len();
        assert!(streaming_units >= 1);
        assert_eq!(topo().units_of(&plan[0]).len() + streaming_units, topo().units() as usize);
    }

    #[test]
    fn non_intensive_threads_share_one_slice() {
        let mut dbp = Dbp::new(DbpConfig::default());
        let plan = dbp.partition(&[intensive(4.0, 0.3), calm(), calm()], &topo(), None);
        assert_eq!(plan[1], plan[2]);
        assert!(plan[0].is_disjoint(&plan[1]));
        assert!(!plan[1].is_empty());
    }

    #[test]
    fn all_calm_stays_unpartitioned() {
        let mut dbp = Dbp::new(DbpConfig::default());
        let plan = dbp.partition(&[calm(), calm()], &topo(), None);
        assert_eq!(plan[0], topo().all_colors());
        assert_eq!(plan[1], topo().all_colors());
    }

    #[test]
    fn plan_covers_all_units_disjointly() {
        let mut dbp = Dbp::new(DbpConfig::default());
        let profs = [intensive(6.0, 0.2), intensive(3.0, 0.4), intensive(2.0, 0.6), calm()];
        let plan = dbp.partition(&profs, &topo(), None);
        for i in 0..3 {
            for j in i + 1..4 {
                assert!(plan[i].is_disjoint(&plan[j]), "{i} vs {j}");
            }
            assert!(!plan[i].is_empty());
        }
        let union = plan.iter().fold(ColorSet::empty(), |a, s| a.union(s));
        assert_eq!(union, topo().all_colors());
    }

    #[test]
    fn repartition_is_stable_under_same_profiles() {
        let mut dbp = Dbp::new(DbpConfig::default());
        let profs = [intensive(5.0, 0.2), intensive(2.0, 0.7), calm(), calm()];
        let first = dbp.partition(&profs, &topo(), None);
        let second = dbp.partition(&profs, &topo(), Some(&first));
        assert_eq!(first, second, "same profiles must not churn pages");
    }

    #[test]
    fn demand_shift_adopted_after_debounce() {
        let mut dbp = Dbp::new(DbpConfig::default());
        let t = topo();
        let hungry = [intensive(8.0, 0.2), intensive(1.0, 0.2)];
        let modest = [intensive(1.0, 0.2), intensive(8.0, 0.2)];
        let p0 = dbp.partition(&hungry, &t, None);
        assert!(t.units_of(&p0[0]).len() > t.units_of(&p0[1]).len());
        // One epoch of the shifted profile: debounced, plan unchanged.
        let p1 = dbp.partition(&modest, &t, Some(&p0));
        assert_eq!(p0, p1);
        // After enough epochs the smoothed demands converge and the plan
        // flips around.
        let mut plan = p1;
        for _ in 0..6 {
            plan = dbp.partition(&modest, &t, Some(&plan));
        }
        assert!(t.units_of(&plan[1]).len() > t.units_of(&plan[0]).len());
        // And the shrunk thread keeps a subset of its old units.
        assert!(!plan[0].intersection(&p0[0]).is_empty());
    }

    #[test]
    fn more_intensive_threads_than_units_share() {
        let small = ColorTopology::new(1, 1, 2);
        let mut dbp = Dbp::new(DbpConfig::default());
        let profs = vec![intensive(2.0, 0.3); 4];
        let plan = dbp.partition(&profs, &small, None);
        assert_eq!(plan[0], plan[2]);
        assert_eq!(plan[1], plan[3]);
        assert!(plan[0].is_disjoint(&plan[1]));
    }

    #[test]
    fn grouping_ablation_dedicates_units_to_calm_threads() {
        let mut dbp = Dbp::new(DbpConfig { group_non_intensive: false, ..Default::default() });
        let plan = dbp.partition(&[intensive(4.0, 0.3), calm(), calm()], &topo(), None);
        // Without grouping, the calm threads get their own disjoint units.
        assert!(plan[1].is_disjoint(&plan[2]));
    }

    #[test]
    fn single_unit_topology_degenerates_to_sharing() {
        let tiny = ColorTopology::new(1, 1, 1);
        let mut dbp = Dbp::new(DbpConfig::default());
        let plan = dbp.partition(&[intensive(4.0, 0.2), calm()], &tiny, None);
        assert!(!plan[0].is_empty());
        assert!(!plan[1].is_empty());
    }
}
