//! Partitioning policies: profiles in, per-thread color sets out.

mod dbp;
mod equal;
mod mcp;
mod restrict;
mod unpartitioned;

pub use dbp::{Dbp, DbpConfig};
pub use equal::EqualBankPartitioning;
pub use mcp::{ChannelPartitioning, McpConfig};
pub use restrict::RestrictFirst;
pub use unpartitioned::Unpartitioned;

use dbp_osmem::ColorSet;

use crate::profile::ThreadMemProfile;
use crate::topology::ColorTopology;

/// A memory-partitioning policy.
///
/// Called once per profiling epoch with every thread's measured profile;
/// returns the color set each thread may allocate pages from. `prev` is
/// the plan currently in force, letting stateful policies minimise the
/// pages that must migrate.
pub trait PartitionPolicy: std::fmt::Debug {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Hand the policy a telemetry recorder to emit decision events into
    /// (DBP demand estimates, MCP group moves). Stateless policies ignore
    /// it, which is the default.
    fn attach_recorder(&mut self, _rec: dbp_obs::Recorder) {}

    /// Compute the next plan. The result has one non-empty [`ColorSet`]
    /// per thread.
    fn partition(
        &mut self,
        profiles: &[ThreadMemProfile],
        topo: &ColorTopology,
        prev: Option<&[ColorSet]>,
    ) -> Vec<ColorSet>;
}

/// Declarative policy selection for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// All threads may use every color (the shared baseline).
    Unpartitioned,
    /// Static equal split of bank units (prior work the paper improves).
    Equal,
    /// Dynamic Bank Partitioning (the paper's contribution).
    Dbp(DbpConfig),
    /// Memory Channel Partitioning (MCP baseline).
    Mcp(McpConfig),
    /// Measurement-only: pin thread 0 to N bank units (Figure 2).
    RestrictFirst(u32),
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn PartitionPolicy> {
        match *self {
            PolicyKind::Unpartitioned => Box::new(Unpartitioned),
            PolicyKind::Equal => Box::new(EqualBankPartitioning),
            PolicyKind::Dbp(cfg) => Box::new(Dbp::new(cfg)),
            PolicyKind::Mcp(cfg) => Box::new(ChannelPartitioning::new(cfg)),
            PolicyKind::RestrictFirst(units) => Box::new(RestrictFirst::new(units)),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Unpartitioned => "shared",
            PolicyKind::Equal => "equal-BP",
            PolicyKind::Dbp(_) => "DBP",
            PolicyKind::Mcp(_) => "MCP",
            PolicyKind::RestrictFirst(_) => "restrict",
        }
    }
}

/// Split `total` units among `demands.len()` takers proportionally, with
/// every taker receiving at least one unit (largest-remainder style).
///
/// # Panics
///
/// Panics if there are more takers than units, or no takers.
pub(crate) fn proportional_alloc(total: u32, demands: &[f64]) -> Vec<u32> {
    let n = demands.len();
    assert!(n > 0, "no takers");
    assert!(n as u32 <= total, "more takers ({n}) than units ({total})");
    let sum: f64 = demands.iter().sum::<f64>().max(f64::MIN_POSITIVE);
    let mut alloc: Vec<u32> =
        demands.iter().map(|d| (((total as f64) * d / sum).floor() as u32).max(1)).collect();
    let mut s: u32 = alloc.iter().sum();
    while s > total {
        // Reclaim from the taker with the most units (keep the minimum 1).
        let i = (0..n)
            .filter(|&i| alloc[i] > 1)
            .max_by_key(|&i| alloc[i])
            .expect("sum > total implies someone has more than 1");
        alloc[i] -= 1;
        s -= 1;
    }
    while s < total {
        // Grant to the most under-served taker (largest demand per unit).
        let i = (0..n)
            .max_by(|&a, &b| {
                let ra = demands[a] / f64::from(alloc[a]);
                let rb = demands[b] / f64::from(alloc[b]);
                ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("n > 0");
        alloc[i] += 1;
        s += 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_alloc_sums_to_total() {
        let a = proportional_alloc(8, &[6.0, 2.0, 1.0, 1.0]);
        assert_eq!(a.iter().sum::<u32>(), 8);
        assert!(a.iter().all(|&x| x >= 1));
        assert!(a[0] > a[1]);
    }

    #[test]
    fn proportional_alloc_handles_zero_demands() {
        let a = proportional_alloc(4, &[0.0, 0.0]);
        assert_eq!(a.iter().sum::<u32>(), 4);
        assert!(a.iter().all(|&x| x >= 1));
    }

    #[test]
    fn proportional_alloc_exact_split() {
        assert_eq!(proportional_alloc(4, &[1.0, 1.0]), vec![2, 2]);
    }

    #[test]
    fn proportional_alloc_respects_minimum() {
        let a = proportional_alloc(4, &[1000.0, 0.001, 0.001]);
        assert_eq!(a.iter().sum::<u32>(), 4);
        assert_eq!(a[1], 1);
        assert_eq!(a[2], 1);
        assert_eq!(a[0], 2);
    }

    #[test]
    #[should_panic(expected = "more takers")]
    fn too_many_takers_panics() {
        let _ = proportional_alloc(2, &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn policy_kind_builds_all() {
        for kind in [
            PolicyKind::Unpartitioned,
            PolicyKind::Equal,
            PolicyKind::Dbp(DbpConfig::default()),
            PolicyKind::Mcp(McpConfig::default()),
            PolicyKind::RestrictFirst(2),
        ] {
            let p = kind.build();
            assert!(!p.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }
}
