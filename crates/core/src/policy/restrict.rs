//! A measurement policy: pin thread 0 to a fixed number of bank units.
//!
//! Used by the "equal partitioning destroys bank-level parallelism"
//! characterisation (Figure 2): running one benchmark alone while varying
//! its bank allotment isolates the IPC-vs-banks curve that motivates DBP.

use dbp_osmem::ColorSet;

use crate::policy::PartitionPolicy;
use crate::profile::ThreadMemProfile;
use crate::topology::ColorTopology;

/// Thread 0 gets exactly `units` bank units; all other threads (if any)
/// share the remaining units.
#[derive(Debug, Clone, Copy)]
pub struct RestrictFirst {
    units: u32,
}

impl RestrictFirst {
    /// Build the policy.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn new(units: u32) -> Self {
        assert!(units > 0, "thread 0 needs at least one unit");
        RestrictFirst { units }
    }
}

impl PartitionPolicy for RestrictFirst {
    fn name(&self) -> &'static str {
        "restrict-first"
    }

    fn partition(
        &mut self,
        profiles: &[ThreadMemProfile],
        topo: &ColorTopology,
        _prev: Option<&[ColorSet]>,
    ) -> Vec<ColorSet> {
        let k = self.units.min(topo.units());
        let first = topo.units_colors(0..k);
        let rest =
            if k < topo.units() { topo.units_colors(k..topo.units()) } else { topo.all_colors() };
        (0..profiles.len()).map(|t| if t == 0 { first } else { rest }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricts_thread_zero_only() {
        let topo = ColorTopology::new(2, 1, 8);
        let mut p = RestrictFirst::new(2);
        let plan = p.partition(&[ThreadMemProfile::default(); 3], &topo, None);
        assert_eq!(plan[0].len(), 4); // 2 units x 2 channels

        assert_eq!(plan[1], plan[2]);
        assert!(plan[0].is_disjoint(&plan[1]));
    }

    #[test]
    fn clamps_to_topology() {
        let topo = ColorTopology::new(1, 1, 4);
        let mut p = RestrictFirst::new(99);
        let plan = p.partition(&[ThreadMemProfile::default()], &topo, None);
        assert_eq!(plan[0], topo.all_colors());
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        let _ = RestrictFirst::new(0);
    }
}
