//! Memory Channel Partitioning (Muralidhara, Subramanian, Mutlu,
//! Kandemir, Moscibroda — MICRO 2011), reconstructed as a baseline.
//!
//! MCP maps the data of applications that interfere most severely onto
//! *different channels*: threads are classified by memory intensity, the
//! intensive ones by row-buffer locality, and the channel set is divided
//! between the groups in proportion to their bandwidth demand. All banks
//! within a group's channels stay shared among that group.
//!
//! The DBP paper's criticism, which this implementation reproduces by
//! construction: channel granularity is coarse, so intensive threads are
//! squeezed onto a channel subset, *physically* concentrating their
//! contention and inflating their slowdown (hurting fairness) even when
//! it helps the non-intensive threads.

use dbp_osmem::ColorSet;

use crate::policy::{proportional_alloc, PartitionPolicy};
use crate::profile::ThreadMemProfile;
use crate::topology::ColorTopology;

/// MCP classification thresholds (MICRO 2011 values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McpConfig {
    /// Threads below this MPKI are non-intensive.
    pub low_mpki: f64,
    /// Intensive threads at or above this RBL form the high-locality
    /// group.
    pub high_rbl: f64,
}

impl Default for McpConfig {
    fn default() -> Self {
        McpConfig { low_mpki: 1.5, high_rbl: 0.5 }
    }
}

/// The channel-partitioning policy.
///
/// Classification uses a hysteresis band (+/-25 % on the MPKI threshold,
/// +/-0.1 on the RBL threshold): a thread near a boundary would otherwise
/// flip groups every epoch, and under channel partitioning a group flip
/// migrates the thread's *entire* resident footprint.
#[derive(Debug)]
pub struct ChannelPartitioning {
    cfg: McpConfig,
    last_group: Vec<Option<usize>>,
    /// A tentative group switch observed last epoch; applied only when the
    /// same switch is computed twice in a row (debouncing — one flip
    /// migrates the thread's whole footprint across channels).
    pending_switch: Vec<Option<usize>>,
    rec: dbp_obs::Recorder,
}

impl ChannelPartitioning {
    /// Build the policy.
    pub fn new(cfg: McpConfig) -> Self {
        ChannelPartitioning {
            cfg,
            last_group: Vec::new(),
            pending_switch: Vec::new(),
            rec: dbp_obs::Recorder::disabled(),
        }
    }

    /// Group with hysteresis and debouncing: 0 = intensive low-RBL,
    /// 1 = intensive high-RBL, 2 = non-intensive.
    fn group_of(&mut self, t: usize, p: &ThreadMemProfile) -> usize {
        let prev = self.last_group[t];
        let was_intensive = matches!(prev, Some(0) | Some(1));
        let intensive = if was_intensive {
            p.mpki >= self.cfg.low_mpki * 0.75
        } else {
            p.mpki >= self.cfg.low_mpki * 1.25
        };
        let raw = if !intensive {
            2
        } else {
            let was_high = prev == Some(1);
            let high = if was_high {
                p.rbl >= self.cfg.high_rbl - 0.1
            } else {
                p.rbl >= self.cfg.high_rbl + 0.1
            };
            usize::from(high)
        };
        let group = match prev {
            None => raw, // first classification applies immediately
            Some(prev_g) if raw == prev_g => {
                self.pending_switch[t] = None;
                prev_g
            }
            Some(prev_g) => {
                if self.pending_switch[t] == Some(raw) {
                    self.pending_switch[t] = None;
                    raw
                } else {
                    self.pending_switch[t] = Some(raw);
                    prev_g
                }
            }
        };
        self.last_group[t] = Some(group);
        group
    }
}

impl PartitionPolicy for ChannelPartitioning {
    fn name(&self) -> &'static str {
        "memory channel partitioning"
    }

    fn attach_recorder(&mut self, rec: dbp_obs::Recorder) {
        self.rec = rec;
    }

    fn partition(
        &mut self,
        profiles: &[ThreadMemProfile],
        topo: &ColorTopology,
        _prev: Option<&[ColorSet]>,
    ) -> Vec<ColorSet> {
        let n = profiles.len();
        assert!(n > 0, "no threads to partition");
        if self.last_group.len() != n {
            self.last_group = vec![None; n];
            self.pending_switch = vec![None; n];
        }
        // Channel partitioning needs more than one channel.
        if topo.channels() < 2 {
            return vec![topo.all_colors(); n];
        }
        // Group 0: intensive, low RBL. Group 1: intensive, high RBL.
        // Group 2: non-intensive.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for (t, p) in profiles.iter().enumerate() {
            let g = self.group_of(t, p);
            self.rec.emit(dbp_obs::EventKind::ChannelGroup { thread: t, group: g as u8 });
            members[g].push(t);
        }
        let mut groups: Vec<(Vec<usize>, f64)> = members
            .into_iter()
            .filter(|m| !m.is_empty())
            .map(|m| {
                let bw = m.iter().map(|&t| profiles[t].bandwidth_demand()).sum::<f64>();
                (m, bw)
            })
            .collect();
        if groups.len() < 2 {
            return vec![topo.all_colors(); n];
        }
        // Fewer channels than groups: merge the lightest group into the
        // next lightest until they fit.
        groups.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        while groups.len() as u32 > topo.channels() {
            let (light_members, light_bw) = groups.remove(0);
            groups[0].0.extend(light_members);
            groups[0].1 += light_bw;
        }
        let demands: Vec<f64> = groups.iter().map(|g| g.1).collect();
        let counts = proportional_alloc(topo.channels(), &demands);
        let mut plan = vec![ColorSet::empty(); n];
        let mut next_ch = 0u32;
        for ((members, _), count) in groups.iter().zip(counts) {
            let mut set = ColorSet::empty();
            for ch in next_ch..next_ch + count {
                set = set.union(&topo.channel_colors(ch));
            }
            next_ch += count;
            for &t in members {
                plan[t] = set;
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof(mpki: f64, rbl: f64, bw: u64) -> ThreadMemProfile {
        ThreadMemProfile { mpki, rbl, blp: 2.0, reads: bw / 4, bus_cycles: bw }
    }

    fn topo() -> ColorTopology {
        ColorTopology::new(2, 2, 8)
    }

    #[test]
    fn separates_streaming_from_random_intensive() {
        let mut mcp = ChannelPartitioning::new(McpConfig::default());
        let plan =
            mcp.partition(&[prof(30.0, 0.2, 100_000), prof(25.0, 0.9, 100_000)], &topo(), None);
        assert!(plan[0].is_disjoint(&plan[1]), "conflicting groups share no channel");
        assert_eq!(plan[0].len(), 16); // one full channel each
        assert_eq!(plan[1].len(), 16);
    }

    #[test]
    fn non_intensive_gets_own_channel_when_available() {
        let mut mcp = ChannelPartitioning::new(McpConfig::default());
        let four_ch = ColorTopology::new(4, 1, 8);
        let plan = mcp.partition(
            &[prof(30.0, 0.2, 100_000), prof(25.0, 0.9, 100_000), prof(0.1, 0.5, 100)],
            &four_ch,
            None,
        );
        assert!(plan[2].is_disjoint(&plan[0]));
        assert!(plan[2].is_disjoint(&plan[1]));
    }

    #[test]
    fn merges_groups_when_channels_scarce() {
        let mut mcp = ChannelPartitioning::new(McpConfig::default());
        // Three groups but only two channels: the lightest (non-intensive)
        // merges.
        let plan = mcp.partition(
            &[prof(30.0, 0.2, 100_000), prof(25.0, 0.9, 90_000), prof(0.1, 0.5, 100)],
            &topo(),
            None,
        );
        // The two intensive groups remain separated.
        assert!(plan[0].is_disjoint(&plan[1]));
        // The calm thread shares with exactly one of them.
        assert!(plan[2] == plan[0] || plan[2] == plan[1]);
    }

    #[test]
    fn same_group_threads_share_channels() {
        let mut mcp = ChannelPartitioning::new(McpConfig::default());
        let plan = mcp.partition(
            &[prof(30.0, 0.2, 100_000), prof(28.0, 0.1, 90_000), prof(25.0, 0.9, 100_000)],
            &topo(),
            None,
        );
        assert_eq!(plan[0], plan[1]);
        assert!(plan[0].is_disjoint(&plan[2]));
    }

    #[test]
    fn single_channel_degenerates_to_shared() {
        let mut mcp = ChannelPartitioning::new(McpConfig::default());
        let one_ch = ColorTopology::new(1, 2, 8);
        let plan = mcp.partition(&[prof(30.0, 0.2, 1000), prof(25.0, 0.9, 1000)], &one_ch, None);
        assert_eq!(plan[0], one_ch.all_colors());
        assert_eq!(plan[1], one_ch.all_colors());
    }

    #[test]
    fn all_one_group_degenerates_to_shared() {
        let mut mcp = ChannelPartitioning::new(McpConfig::default());
        let plan = mcp.partition(&[prof(30.0, 0.2, 1000), prof(28.0, 0.3, 900)], &topo(), None);
        assert_eq!(plan[0], topo().all_colors());
        assert_eq!(plan[1], topo().all_colors());
    }

    #[test]
    fn bandwidth_heavy_group_gets_more_channels() {
        let mut mcp = ChannelPartitioning::new(McpConfig::default());
        let four_ch = ColorTopology::new(4, 1, 8);
        let plan = mcp.partition(
            &[prof(40.0, 0.2, 300_000), prof(35.0, 0.1, 300_000), prof(20.0, 0.9, 50_000)],
            &four_ch,
            None,
        );
        assert!(plan[0].len() > plan[2].len());
    }
}
