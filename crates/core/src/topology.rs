//! The color space partitioning policies operate on.

use dbp_dram::{ColorId, DramConfig};
use dbp_osmem::ColorSet;

/// Shape of the color space: colors are dense indices over
/// (channel, rank, bank), matching `dbp_dram::AddressMapper::color_of`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColorTopology {
    channels: u32,
    ranks: u32,
    banks: u32,
}

impl ColorTopology {
    /// Build a topology.
    ///
    /// # Panics
    ///
    /// Panics unless all dimensions are positive powers of two and the
    /// total fits in a [`ColorSet`].
    pub fn new(channels: u32, ranks: u32, banks: u32) -> Self {
        for (name, v) in [("channels", channels), ("ranks", ranks), ("banks", banks)] {
            assert!(v > 0 && v.is_power_of_two(), "{name} must be a positive power of two");
        }
        assert!(channels * ranks * banks <= ColorSet::MAX_COLORS, "too many colors for ColorSet");
        ColorTopology { channels, ranks, banks }
    }

    /// Topology of a DRAM configuration.
    pub fn from_dram(cfg: &DramConfig) -> Self {
        Self::new(cfg.channels, cfg.ranks_per_channel, cfg.banks_per_rank)
    }

    /// Channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Ranks per channel.
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Banks per rank — the number of allocatable **units**. A unit is
    /// one bank index replicated across every channel and rank, so
    /// allocating whole units preserves each thread's channel- and
    /// rank-level parallelism; only the *bank* dimension is partitioned,
    /// which is precisely the paper's mechanism. (A finer, per-color
    /// granularity was evaluated and rejected: it destabilises the plan
    /// and skews threads across channels.)
    pub fn units(&self) -> u32 {
        self.banks
    }

    /// Total colors.
    pub fn num_colors(&self) -> u32 {
        self.channels * self.ranks * self.banks
    }

    /// The color of (channel, rank, bank).
    pub fn color(&self, channel: u32, rank: u32, bank: u32) -> ColorId {
        debug_assert!(channel < self.channels && rank < self.ranks && bank < self.banks);
        (channel * self.ranks + rank) * self.banks + bank
    }

    /// Every color, as a set.
    pub fn all_colors(&self) -> ColorSet {
        ColorSet::all(self.num_colors())
    }

    /// The colors of bank-unit `bank` across all channels and ranks.
    ///
    /// # Panics
    ///
    /// Panics if `bank >= units()` in debug builds.
    pub fn unit_colors(&self, bank: u32) -> ColorSet {
        debug_assert!(bank < self.units());
        let mut s = ColorSet::empty();
        for ch in 0..self.channels {
            for ra in 0..self.ranks {
                s.insert(self.color(ch, ra, bank));
            }
        }
        s
    }

    /// The colors of all units in `units`.
    pub fn units_colors(&self, units: impl IntoIterator<Item = u32>) -> ColorSet {
        let mut s = ColorSet::empty();
        for u in units {
            s = s.union(&self.unit_colors(u));
        }
        s
    }

    /// Every color belonging to `channel` (all its ranks and banks) — the
    /// allocation unit of MCP-style channel partitioning.
    pub fn channel_colors(&self, channel: u32) -> ColorSet {
        let mut s = ColorSet::empty();
        for ra in 0..self.ranks {
            for ba in 0..self.banks {
                s.insert(self.color(channel, ra, ba));
            }
        }
        s
    }

    /// The units represented in `colors`.
    pub fn units_of(&self, colors: &ColorSet) -> Vec<u32> {
        (0..self.units())
            .filter(|&u| !self.unit_colors(u).intersection(colors).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_mapper_color_layout() {
        let cfg = DramConfig::default();
        let topo = ColorTopology::from_dram(&cfg);
        let mapper = dbp_dram::AddressMapper::new(&cfg);
        for ch in 0..cfg.channels {
            for ra in 0..cfg.ranks_per_channel {
                for ba in 0..cfg.banks_per_rank {
                    let d = dbp_dram::DecodedAddr {
                        channel: ch,
                        rank: ra,
                        bank: ba,
                        row: 0,
                        column: 0,
                    };
                    assert_eq!(topo.color(ch, ra, ba), mapper.color_of(&d));
                }
            }
        }
    }

    #[test]
    fn unit_spans_all_channels_and_ranks() {
        let topo = ColorTopology::new(2, 2, 8);
        assert_eq!(topo.units(), 8);
        let u = topo.unit_colors(3);
        assert_eq!(u.len(), 4); // 2 channels x 2 ranks
        assert!(u.contains(topo.color(0, 0, 3)));
        assert!(u.contains(topo.color(1, 1, 3)));
        assert!(!u.contains(topo.color(0, 0, 4)));
    }

    #[test]
    fn contiguous_units_balance_channels() {
        let topo = ColorTopology::new(2, 1, 8);
        // Every unit spans both channels, so any range is balanced.
        let s = topo.units_colors(2..6);
        let per_channel: Vec<u32> =
            (0..2).map(|ch| topo.channel_colors(ch).intersection(&s).len()).collect();
        assert_eq!(per_channel, vec![4, 4]);
    }

    #[test]
    fn units_partition_the_color_space() {
        let topo = ColorTopology::new(2, 2, 8);
        let mut acc = ColorSet::empty();
        for b in 0..topo.units() {
            let u = topo.unit_colors(b);
            assert!(acc.is_disjoint(&u));
            acc = acc.union(&u);
        }
        assert_eq!(acc, topo.all_colors());
    }

    #[test]
    fn channel_colors_partition_the_space() {
        let topo = ColorTopology::new(2, 2, 8);
        let c0 = topo.channel_colors(0);
        let c1 = topo.channel_colors(1);
        assert!(c0.is_disjoint(&c1));
        assert_eq!(c0.union(&c1), topo.all_colors());
        assert_eq!(c0.len(), 16);
    }

    #[test]
    fn units_of_roundtrip() {
        let topo = ColorTopology::new(2, 2, 8);
        let colors = topo.units_colors([1, 5]);
        assert_eq!(topo.units_of(&colors), vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = ColorTopology::new(3, 1, 8);
    }
}
