//! The policy-facing view of a thread's epoch profile.

/// One thread's measured memory behaviour over an epoch.
///
/// This is the exact triple the paper's run-time profiler collects
/// (plus raw volumes used for proportional splits): memory intensity,
/// row-buffer locality, and bank-level parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ThreadMemProfile {
    /// LLC misses (demand reads) per kilo-instruction.
    pub mpki: f64,
    /// Fraction of serviced requests that hit an open row, in [0, 1].
    pub rbl: f64,
    /// Average banks concurrently holding the thread's reads.
    pub blp: f64,
    /// Demand reads this epoch.
    pub reads: u64,
    /// Attained data-bus cycles this epoch.
    pub bus_cycles: u64,
}

impl ThreadMemProfile {
    /// Whether the thread counts as memory-intensive under `threshold`
    /// MPKI (paper-style classification).
    pub fn is_intensive(&self, threshold: f64) -> bool {
        self.mpki >= threshold
    }

    /// A bandwidth-demand proxy used for proportional channel splits:
    /// attained bus cycles, falling back to read counts when bus usage was
    /// not measured.
    pub fn bandwidth_demand(&self) -> f64 {
        if self.bus_cycles > 0 {
            self.bus_cycles as f64
        } else {
            self.reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_threshold() {
        let p = ThreadMemProfile { mpki: 1.5, ..Default::default() };
        assert!(p.is_intensive(1.0));
        assert!(!p.is_intensive(2.0));
    }

    #[test]
    fn bandwidth_falls_back_to_reads() {
        let p = ThreadMemProfile { reads: 10, ..Default::default() };
        assert_eq!(p.bandwidth_demand(), 10.0);
        let q = ThreadMemProfile { reads: 10, bus_cycles: 99, ..Default::default() };
        assert_eq!(q.bandwidth_demand(), 99.0);
    }
}
