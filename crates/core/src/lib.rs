//! Dynamic Bank Partitioning — the primary contribution of
//! *"Improving system throughput and fairness simultaneously in shared
//! memory CMP systems via Dynamic Bank Partitioning"* (Xie, Tong, Huang,
//! Cheng — HPCA 2014).
//!
//! Bank partitioning assigns disjoint DRAM banks to threads through OS
//! page coloring, eliminating inter-thread row-buffer interference. Prior
//! *equal* partitioning splits banks evenly, which starves threads with
//! high bank-level parallelism (BLP). DBP instead:
//!
//! 1. **Profiles** each thread every epoch — memory intensity (MPKI),
//!    row-buffer locality (RBL), achieved BLP ([`ThreadMemProfile`]).
//! 2. **Estimates** each thread's bank demand from its profile
//!    ([`BankDemandEstimator`]).
//! 3. **Partitions** bank *units* (a bank index replicated across every
//!    channel and rank, so channel/rank parallelism is never sacrificed)
//!    proportionally to demand, grouping non-intensive threads onto a
//!    small shared slice ([`policy::Dbp`]).
//!
//! The crate also implements the baselines the paper compares against:
//! [`policy::EqualBankPartitioning`], [`policy::ChannelPartitioning`]
//! (MCP, Muralidhara et al. MICRO 2011), and [`policy::Unpartitioned`].
//!
//! Partition *application* (page allocation and migration) lives in
//! `dbp-osmem`; scheduling (TCM et al.) lives in `dbp-memctrl`; this crate
//! is pure policy: profiles in, [`dbp_osmem::ColorSet`]s out.
//!
//! # Example
//!
//! ```
//! use dbp_core::{ColorTopology, ThreadMemProfile};
//! use dbp_core::policy::{Dbp, DbpConfig, PartitionPolicy};
//!
//! let topo = ColorTopology::new(2, 2, 8); // 2 ch x 2 ranks x 8 banks
//! let profiles = vec![
//!     ThreadMemProfile { mpki: 30.0, rbl: 0.2, blp: 6.0, reads: 90_000, bus_cycles: 360_000 },
//!     ThreadMemProfile { mpki: 25.0, rbl: 0.9, blp: 1.5, reads: 75_000, bus_cycles: 300_000 },
//!     ThreadMemProfile { mpki: 0.3, rbl: 0.6, blp: 1.0, reads: 900, bus_cycles: 3_600 },
//!     ThreadMemProfile { mpki: 0.2, rbl: 0.5, blp: 1.0, reads: 600, bus_cycles: 2_400 },
//! ];
//! let mut dbp = Dbp::new(DbpConfig::default());
//! let plan = dbp.partition(&profiles, &topo, None);
//! // The high-BLP thread gets more bank colors than the streaming one.
//! assert!(plan[0].len() > plan[1].len());
//! // Non-intensive threads share one slice.
//! assert_eq!(plan[2], plan[3]);
//! ```

pub mod estimator;
pub mod policy;
pub mod profile;
pub mod topology;

pub use estimator::{BankDemandEstimator, EstimatorConfig};
pub use profile::ThreadMemProfile;
pub use topology::ColorTopology;
