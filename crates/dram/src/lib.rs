//! Cycle-level DDR3 DRAM device model.
//!
//! This crate is the memory-system substrate for the Dynamic Bank
//! Partitioning (HPCA 2014) reproduction. It models a multi-channel DDR3
//! main memory at command granularity:
//!
//! - **Banks** with open-row state machines and per-command earliest-issue
//!   times (`tRCD`, `tRP`, `tRAS`, `tRC`, `tRTP`, `tWR`).
//! - **Ranks** enforcing `tRRD`, the four-activate window `tFAW`, and the
//!   write-to-read turnaround `tWTR`.
//! - **Channels** with a shared data bus (burst occupancy, rank-to-rank
//!   switch penalty `tRTRS`, read/write bus turnaround) and a command bus
//!   that accepts one command per cycle.
//! - **Refresh** at `tREFI` intervals costing `tRFC` per rank.
//! - **Address mapping** schemes, including the page-coloring layout used
//!   by bank partitioning (channel/rank/bank bits directly above the page
//!   offset) and a permutation-based (XOR) bank index.
//!
//! The device is *passive*: a memory controller (see the `dbp-memctrl`
//! crate) decides which command to send each cycle, asking
//! [`Dram::can_issue`] first and then calling [`Dram::issue`].
//!
//! # Example
//!
//! ```
//! use dbp_dram::{Command, DramConfig, Dram};
//!
//! let cfg = DramConfig::default(); // DDR3-1333, 2 channels x 2 ranks x 8 banks
//! let mut dram = Dram::new(cfg);
//! let act = Command::activate(0, 0, 0, 42);
//! assert!(dram.can_issue(&act, 0));
//! dram.issue(&act, 0);
//! let rd = Command::read(0, 0, 0, 42, 3, false);
//! let t = dram.earliest_issue(&rd, 0).unwrap();
//! let done = dram.issue(&rd, t);
//! assert!(done.data_ready_at.unwrap() > t);
//! ```

pub mod address;
pub mod command;
pub mod config;
pub mod device;
pub mod energy;
pub mod state;
pub mod stats;
pub mod timing;

pub use address::{AddressMapper, ColorId, DecodedAddr, MappingScheme};
pub use command::{Command, CommandKind, Loc};
pub use config::{DramConfig, RowPolicy};
pub use device::{ColumnGate, Dram, IssueResult};
pub use energy::EnergyModel;
pub use stats::DramStats;
pub use timing::TimingParams;

/// A point in time, measured in DRAM bus clock cycles.
pub type Cycle = u64;
