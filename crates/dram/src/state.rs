//! Internal timing state of banks, ranks, and channels.
//!
//! Each level keeps "earliest next issue" timestamps which
//! [`crate::device::Dram`] consults and advances. The representation is
//! deliberately monotone: timestamps only move forward, which makes the
//! model robust to out-of-order queries.

use std::collections::VecDeque;

use crate::Cycle;

/// Per-bank state: the open row plus earliest-issue times for each command
/// class affecting this bank.
#[derive(Debug, Clone, Default)]
pub struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u32>,
    /// Earliest cycle an ACT may issue (covers tRP after PRE and tRC after
    /// the previous ACT).
    pub next_act: Cycle,
    /// Earliest cycle a READ may issue (covers tRCD).
    pub next_read: Cycle,
    /// Earliest cycle a WRITE may issue (covers tRCD).
    pub next_write: Cycle,
    /// Earliest cycle a PRE may issue (covers tRAS, tRTP, tWR).
    pub next_pre: Cycle,
}

impl BankState {
    /// Whether the bank has `row` open.
    pub fn has_open(&self, row: u32) -> bool {
        self.open_row == Some(row)
    }
}

/// Per-rank state: tRRD / tFAW activation throttling and the
/// write-to-read turnaround within the rank.
#[derive(Debug, Clone, Default)]
pub struct RankState {
    /// Earliest cycle any ACT may issue in this rank (tRRD).
    pub next_act: Cycle,
    /// Issue times of the most recent activates (bounded to 4, for tFAW).
    pub act_window: VecDeque<Cycle>,
    /// Earliest cycle a READ may issue in this rank (tWTR after writes).
    pub next_read: Cycle,
    /// When the rank's current refresh completes (banks unusable before).
    pub refresh_done: Cycle,
}

impl RankState {
    /// Whether a fifth activate at `now` would violate the four-activate
    /// window `t_faw`.
    pub fn faw_blocked(&self, now: Cycle, t_faw: u32) -> bool {
        self.act_window.len() >= 4
            && now < self.act_window[self.act_window.len() - 4] + Cycle::from(t_faw)
    }

    /// Record an activate at `now`, retiring entries that have left the
    /// window.
    pub fn record_act(&mut self, now: Cycle, t_faw: u32) {
        self.act_window.push_back(now);
        while let Some(&front) = self.act_window.front() {
            if self.act_window.len() > 4 || front + Cycle::from(t_faw) <= now {
                self.act_window.pop_front();
            } else {
                break;
            }
        }
    }
}

/// Per-channel state: the shared data bus and read/write turnaround.
#[derive(Debug, Clone, Default)]
pub struct ChannelState {
    /// First cycle the data bus is free.
    pub data_free_at: Cycle,
    /// Rank that owns the most recent data burst (for tRTRS).
    pub last_data_rank: Option<u32>,
    /// Earliest cycle a READ command may issue on this channel
    /// (write-to-read bus turnaround is handled per rank; this covers
    /// channel-level gaps).
    pub next_read: Cycle,
    /// Earliest cycle a WRITE command may issue (read-to-write turnaround).
    pub next_write: Cycle,
    /// Cycle of the last command accepted (one command per cycle).
    pub last_cmd_at: Option<Cycle>,
}

impl ChannelState {
    /// Earliest start for a data burst by `rank`, honouring bus occupancy
    /// and the rank-switch penalty.
    pub fn data_start(&self, rank: u32, t_rtrs: u32) -> Cycle {
        match self.last_data_rank {
            Some(r) if r != rank => self.data_free_at + Cycle::from(t_rtrs),
            _ => self.data_free_at,
        }
    }

    /// Whether the command bus can accept a command at `now`.
    pub fn cmd_free(&self, now: Cycle) -> bool {
        self.last_cmd_at != Some(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faw_blocks_fifth_activate() {
        let mut r = RankState::default();
        for t in [0, 2, 4, 6] {
            r.record_act(t, 8);
        }
        assert!(r.faw_blocked(7, 8));
        assert!(!r.faw_blocked(8, 8)); // first act at 0 ages out at 0+8
    }

    #[test]
    fn faw_window_stays_bounded() {
        let mut r = RankState::default();
        for t in 0..100 {
            r.record_act(t * 3, 8);
        }
        assert!(r.act_window.len() <= 4);
    }

    #[test]
    fn rank_switch_adds_penalty() {
        let ch = ChannelState { data_free_at: 10, last_data_rank: Some(0), ..Default::default() };
        assert_eq!(ch.data_start(0, 2), 10);
        assert_eq!(ch.data_start(1, 2), 12);
    }

    #[test]
    fn command_bus_single_issue_per_cycle() {
        let mut ch = ChannelState::default();
        assert!(ch.cmd_free(5));
        ch.last_cmd_at = Some(5);
        assert!(!ch.cmd_free(5));
        assert!(ch.cmd_free(6));
    }

    #[test]
    fn bank_open_row_check() {
        let mut b = BankState::default();
        assert!(!b.has_open(3));
        b.open_row = Some(3);
        assert!(b.has_open(3));
        assert!(!b.has_open(4));
    }
}
