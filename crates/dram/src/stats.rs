//! Device-level statistics: command counts, per-bank activity, and data
//! bus utilisation.

use crate::Cycle;

/// Counters accumulated by [`crate::Dram`] as commands issue.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// Total ACT commands.
    pub activates: u64,
    /// Total READ commands.
    pub reads: u64,
    /// Total WRITE commands.
    pub writes: u64,
    /// Total PRE commands (explicit and auto).
    pub precharges: u64,
    /// Total REF commands.
    pub refreshes: u64,
    /// Bus cycles spent transferring data.
    pub data_bus_busy: Cycle,
    /// ACT count per bank (flat index), for bank-balance studies.
    pub activates_per_bank: Vec<u64>,
    /// Column commands per bank (flat index).
    pub accesses_per_bank: Vec<u64>,
}

impl DramStats {
    pub(crate) fn new(num_banks: usize) -> Self {
        DramStats {
            activates_per_bank: vec![0; num_banks],
            accesses_per_bank: vec![0; num_banks],
            ..Default::default()
        }
    }

    pub(crate) fn record_activate(&mut self, bank: usize) {
        self.activates += 1;
        self.activates_per_bank[bank] += 1;
    }

    pub(crate) fn record_read(&mut self, bank: usize, t_burst: u32) {
        self.reads += 1;
        self.accesses_per_bank[bank] += 1;
        self.data_bus_busy += Cycle::from(t_burst);
    }

    pub(crate) fn record_write(&mut self, bank: usize, t_burst: u32) {
        self.writes += 1;
        self.accesses_per_bank[bank] += 1;
        self.data_bus_busy += Cycle::from(t_burst);
    }

    pub(crate) fn record_precharge(&mut self, _bank: usize) {
        self.precharges += 1;
    }

    pub(crate) fn record_refresh(&mut self) {
        self.refreshes += 1;
    }

    /// Fieldwise difference `self - prev`, for measuring over a window
    /// (e.g. excluding warmup).
    ///
    /// # Panics
    ///
    /// Panics if `prev` has a different bank count or is not an earlier
    /// snapshot of the same device (counter underflow).
    pub fn delta(&self, prev: &DramStats) -> DramStats {
        assert_eq!(self.activates_per_bank.len(), prev.activates_per_bank.len());
        DramStats {
            activates: self.activates - prev.activates,
            reads: self.reads - prev.reads,
            writes: self.writes - prev.writes,
            precharges: self.precharges - prev.precharges,
            refreshes: self.refreshes - prev.refreshes,
            data_bus_busy: self.data_bus_busy - prev.data_bus_busy,
            activates_per_bank: self
                .activates_per_bank
                .iter()
                .zip(&prev.activates_per_bank)
                .map(|(a, b)| a - b)
                .collect(),
            accesses_per_bank: self
                .accesses_per_bank
                .iter()
                .zip(&prev.accesses_per_bank)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Column accesses per activate — the device-level row-buffer locality
    /// actually achieved (1.0 means every activate served exactly one
    /// access).
    pub fn accesses_per_activate(&self) -> f64 {
        if self.activates == 0 {
            return 0.0;
        }
        (self.reads + self.writes) as f64 / self.activates as f64
    }

    /// Fraction of `elapsed` bus cycles the data bus carried data.
    pub fn bus_utilisation(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.data_bus_busy as f64 / elapsed as f64
    }

    /// Coefficient of variation of per-bank accesses — 0 when perfectly
    /// balanced.
    pub fn bank_imbalance(&self) -> f64 {
        let n = self.accesses_per_bank.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.accesses_per_bank.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var =
            self.accesses_per_bank.iter().map(|&a| (a as f64 - mean).powi(2)).sum::<f64>() / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_per_activate_handles_zero() {
        let s = DramStats::new(4);
        assert_eq!(s.accesses_per_activate(), 0.0);
    }

    #[test]
    fn bus_utilisation_fraction() {
        let mut s = DramStats::new(4);
        s.record_read(0, 4);
        s.record_write(1, 4);
        assert!((s.bus_utilisation(16) - 0.5).abs() < 1e-12);
        assert_eq!(s.bus_utilisation(0), 0.0);
    }

    #[test]
    fn imbalance_zero_when_balanced() {
        let mut s = DramStats::new(2);
        s.record_read(0, 4);
        s.record_read(1, 4);
        assert_eq!(s.bank_imbalance(), 0.0);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let mut s = DramStats::new(2);
        for _ in 0..10 {
            s.record_read(0, 4);
        }
        assert!(s.bank_imbalance() > 0.9);
    }
}
