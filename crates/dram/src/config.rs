//! DRAM organisation (geometry) and device-level policy configuration.

use crate::timing::TimingParams;
use crate::MappingScheme;

/// Row-buffer management policy applied by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Leave rows open after a column access (exploits row-buffer locality).
    #[default]
    Open,
    /// Auto-precharge after every column access (no locality, no conflicts).
    Closed,
}

/// Geometry and policy of the modelled main memory.
///
/// The defaults describe the reproduction's Table 1 configuration:
/// DDR3-1333, 2 channels x 2 ranks x 8 banks, 8 KiB rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent memory channels, each with its own buses.
    pub channels: u32,
    /// Ranks per channel (share the channel buses).
    pub ranks_per_channel: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row-buffer size per bank, in bytes.
    pub row_bytes: u32,
    /// Data bus width in bytes (x64 = 8).
    pub bus_bytes: u32,
    /// Burst length in transfers (BL8).
    pub burst_length: u32,
    /// Timing constraints.
    pub timing: TimingParams,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Physical address layout.
    pub mapping: MappingScheme,
    /// Virtual-memory page size used for coloring, in bytes.
    pub page_bytes: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            rows_per_bank: 16384,
            row_bytes: 8192,
            bus_bytes: 8,
            burst_length: 8,
            timing: TimingParams::ddr3_1333(),
            row_policy: RowPolicy::Open,
            mapping: MappingScheme::PageColoring,
            page_bytes: 4096,
        }
    }
}

impl DramConfig {
    /// A minimal geometry with [`TimingParams::fast_test`] timing, for unit
    /// tests that count cycles by hand.
    pub fn fast_test() -> Self {
        DramConfig {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 4,
            rows_per_bank: 64,
            row_bytes: 8192,
            timing: TimingParams::fast_test(),
            ..Default::default()
        }
    }

    /// Bytes moved by one burst (one cache line with BL8 on a 64-bit bus).
    pub fn burst_bytes(&self) -> u32 {
        self.bus_bytes * self.burst_length
    }

    /// Columns per row, in burst-sized units.
    pub fn columns_per_row(&self) -> u32 {
        self.row_bytes / self.burst_bytes()
    }

    /// Total banks across the whole memory system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows_per_bank) * u64::from(self.row_bytes)
    }

    /// Number of physical page frames.
    pub fn total_frames(&self) -> u64 {
        self.capacity_bytes() / u64::from(self.page_bytes)
    }

    /// Pages that fit in one row buffer.
    pub fn pages_per_row(&self) -> u32 {
        self.row_bytes / self.page_bytes
    }

    /// Check that every field is a positive power of two where required and
    /// that the timing parameters are self-consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        fn pow2(name: &str, v: u32) -> Result<(), String> {
            if v == 0 || !v.is_power_of_two() {
                Err(format!("{name} must be a positive power of two, got {v}"))
            } else {
                Ok(())
            }
        }
        pow2("channels", self.channels)?;
        pow2("ranks_per_channel", self.ranks_per_channel)?;
        pow2("banks_per_rank", self.banks_per_rank)?;
        pow2("rows_per_bank", self.rows_per_bank)?;
        pow2("row_bytes", self.row_bytes)?;
        pow2("bus_bytes", self.bus_bytes)?;
        pow2("burst_length", self.burst_length)?;
        pow2("page_bytes", self.page_bytes)?;
        if self.row_bytes < self.page_bytes {
            return Err(format!(
                "row_bytes ({}) must be at least one page ({})",
                self.row_bytes, self.page_bytes
            ));
        }
        if self.burst_bytes() > self.page_bytes {
            return Err("a burst must not span pages".to_owned());
        }
        self.timing.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        DramConfig::default().validate().unwrap();
        DramConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn default_geometry() {
        let c = DramConfig::default();
        assert_eq!(c.total_banks(), 32);
        assert_eq!(c.burst_bytes(), 64);
        assert_eq!(c.columns_per_row(), 128);
        assert_eq!(c.pages_per_row(), 2);
        // 32 banks * 16384 rows * 8 KiB = 4 GiB
        assert_eq!(c.capacity_bytes(), 4 << 30);
        assert_eq!(c.total_frames(), (4u64 << 30) / 4096);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let c = DramConfig { banks_per_rank: 6, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_row_smaller_than_page() {
        let c = DramConfig { row_bytes: 2048, ..Default::default() };
        assert!(c.validate().is_err());
    }
}
