//! DRAM commands as issued by the memory controller.

/// Location of a bank within the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    pub channel: u32,
    pub rank: u32,
    pub bank: u32,
}

impl Loc {
    pub fn new(channel: u32, rank: u32, bank: u32) -> Self {
        Loc { channel, rank, bank }
    }
}

/// The kind of a [`Command`], without operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    Activate,
    Read,
    Write,
    Precharge,
    RefreshRank,
}

/// One DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Open `row` in the addressed bank.
    Activate { loc: Loc, row: u32 },
    /// Column read from the open row. `auto_pre` closes the row afterwards.
    Read { loc: Loc, column: u32, auto_pre: bool },
    /// Column write to the open row. `auto_pre` closes the row afterwards.
    Write { loc: Loc, column: u32, auto_pre: bool },
    /// Close the open row.
    Precharge { loc: Loc },
    /// Refresh every bank of one rank (requires all its banks precharged).
    RefreshRank { channel: u32, rank: u32 },
}

impl Command {
    /// Convenience constructor for [`Command::Activate`].
    pub fn activate(channel: u32, rank: u32, bank: u32, row: u32) -> Self {
        Command::Activate { loc: Loc::new(channel, rank, bank), row }
    }

    /// Convenience constructor for [`Command::Read`].
    ///
    /// The `row` argument is accepted for call-site readability but only
    /// checked by the device (the read targets whatever row is open).
    pub fn read(
        channel: u32,
        rank: u32,
        bank: u32,
        _row: u32,
        column: u32,
        auto_pre: bool,
    ) -> Self {
        Command::Read { loc: Loc::new(channel, rank, bank), column, auto_pre }
    }

    /// Convenience constructor for [`Command::Write`].
    pub fn write(channel: u32, rank: u32, bank: u32, column: u32, auto_pre: bool) -> Self {
        Command::Write { loc: Loc::new(channel, rank, bank), column, auto_pre }
    }

    /// Convenience constructor for [`Command::Precharge`].
    pub fn precharge(channel: u32, rank: u32, bank: u32) -> Self {
        Command::Precharge { loc: Loc::new(channel, rank, bank) }
    }

    /// The command's bank location (`None` for rank-wide refresh).
    pub fn loc(&self) -> Option<Loc> {
        match self {
            Command::Activate { loc, .. }
            | Command::Read { loc, .. }
            | Command::Write { loc, .. }
            | Command::Precharge { loc } => Some(*loc),
            Command::RefreshRank { .. } => None,
        }
    }

    /// The command's channel.
    pub fn channel(&self) -> u32 {
        match self {
            Command::Activate { loc, .. }
            | Command::Read { loc, .. }
            | Command::Write { loc, .. }
            | Command::Precharge { loc } => loc.channel,
            Command::RefreshRank { channel, .. } => *channel,
        }
    }

    /// The command's kind.
    pub fn kind(&self) -> CommandKind {
        match self {
            Command::Activate { .. } => CommandKind::Activate,
            Command::Read { .. } => CommandKind::Read,
            Command::Write { .. } => CommandKind::Write,
            Command::Precharge { .. } => CommandKind::Precharge,
            Command::RefreshRank { .. } => CommandKind::RefreshRank,
        }
    }

    /// Whether this is a column (data-moving) command.
    pub fn is_column(&self) -> bool {
        matches!(self, Command::Read { .. } | Command::Write { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_location() {
        let c = Command::activate(1, 0, 3, 99);
        assert_eq!(c.channel(), 1);
        assert_eq!(c.kind(), CommandKind::Activate);
        match c {
            Command::Activate { loc, row } => {
                assert_eq!(loc, Loc::new(1, 0, 3));
                assert_eq!(row, 99);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn column_classification() {
        assert!(Command::read(0, 0, 0, 0, 0, false).is_column());
        assert!(Command::write(0, 0, 0, 0, false).is_column());
        assert!(!Command::precharge(0, 0, 0).is_column());
        assert!(!Command::RefreshRank { channel: 0, rank: 0 }.is_column());
    }
}
