//! Physical-address layout: how addresses map onto channel, rank, bank,
//! row, and column.
//!
//! Bank partitioning relies on the *page-coloring* layout: the channel,
//! rank, and bank index bits sit directly above the page offset, so the OS
//! picks a page's (channel, rank, bank) triple — its **color** — when it
//! picks the physical frame. See [`MappingScheme::PageColoring`].

use crate::config::DramConfig;

/// Identifies one (channel, rank, bank) triple; the unit of allocation for
/// page-coloring-based partitioning.
pub type ColorId = u32;

/// Physical address layout schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingScheme {
    /// `row | col_high | bank | rank | channel | col_low | offset` (MSB to
    /// LSB). Channel/rank/bank bits are directly above the page offset so
    /// the OS controls them via frame selection. The default, and the
    /// layout assumed by every partitioning policy.
    #[default]
    PageColoring,
    /// Like [`MappingScheme::PageColoring`] but the effective bank index is
    /// XOR-ed with the low row bits (permutation-based interleaving,
    /// Zhang et al. MICRO 2000). Spreads row-sequential streams over banks;
    /// incompatible with OS bank control only in the sense that a thread's
    /// color maps to a *different but still unique* bank per row — colors
    /// remain disjoint, so partitioning still isolates threads.
    PermutedPageColoring,
    /// `row | col_high | bank | rank | col_low | channel | offset`:
    /// channels interleave at cache-line granularity. Maximises single-
    /// thread channel parallelism but the OS cannot color channels; used
    /// for unpartitioned baselines only.
    LineInterleaved,
}

/// A physical address decomposed into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    pub channel: u32,
    pub rank: u32,
    /// Effective bank index (after permutation, if enabled).
    pub bank: u32,
    pub row: u32,
    /// Column in burst-sized units.
    pub column: u32,
}

/// Translates between physical addresses and [`DecodedAddr`] coordinates
/// for a fixed [`DramConfig`].
#[derive(Debug, Clone)]
pub struct AddressMapper {
    scheme: MappingScheme,
    offset_bits: u32,
    col_low_bits: u32,
    col_high_bits: u32,
    ch_bits: u32,
    rank_bits: u32,
    bank_bits: u32,
    row_bits: u32,
    page_bits: u32,
}

impl AddressMapper {
    /// Build a mapper for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` does not validate (all geometry fields must be
    /// powers of two with `row_bytes >= page_bytes`).
    pub fn new(cfg: &DramConfig) -> Self {
        cfg.validate().expect("invalid DramConfig");
        let offset_bits = cfg.burst_bytes().trailing_zeros();
        let page_bits = cfg.page_bytes.trailing_zeros();
        let col_bits = cfg.columns_per_row().trailing_zeros();
        let col_low_bits = page_bits - offset_bits;
        assert!(
            col_bits >= col_low_bits,
            "row must span at least one page (col_bits {col_bits} < col_low {col_low_bits})"
        );
        AddressMapper {
            scheme: cfg.mapping,
            offset_bits,
            col_low_bits,
            col_high_bits: col_bits - col_low_bits,
            ch_bits: cfg.channels.trailing_zeros(),
            rank_bits: cfg.ranks_per_channel.trailing_zeros(),
            bank_bits: cfg.banks_per_rank.trailing_zeros(),
            row_bits: cfg.rows_per_bank.trailing_zeros(),
            page_bits,
        }
    }

    /// The layout scheme this mapper implements.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Number of distinct colors, i.e. (channel, rank, bank) triples.
    pub fn num_colors(&self) -> u32 {
        1 << (self.ch_bits + self.rank_bits + self.bank_bits)
    }

    /// Page-offset width in bits.
    pub fn page_bits(&self) -> u32 {
        self.page_bits
    }

    /// Total addressable bytes.
    pub fn capacity(&self) -> u64 {
        1u64 << (self.offset_bits
            + self.col_low_bits
            + self.col_high_bits
            + self.ch_bits
            + self.rank_bits
            + self.bank_bits
            + self.row_bits)
    }

    fn take(addr: &mut u64, bits: u32) -> u32 {
        let v = (*addr & ((1u64 << bits) - 1)) as u32;
        *addr >>= bits;
        v
    }

    /// Decompose a physical byte address.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `pa` exceeds the configured capacity.
    pub fn decode(&self, pa: u64) -> DecodedAddr {
        debug_assert!(pa < self.capacity(), "address {pa:#x} out of range");
        let mut a = pa >> self.offset_bits;
        let (channel, col_low, rank, bank) = match self.scheme {
            MappingScheme::PageColoring | MappingScheme::PermutedPageColoring => {
                let col_low = Self::take(&mut a, self.col_low_bits);
                let channel = Self::take(&mut a, self.ch_bits);
                let rank = Self::take(&mut a, self.rank_bits);
                let bank = Self::take(&mut a, self.bank_bits);
                (channel, col_low, rank, bank)
            }
            MappingScheme::LineInterleaved => {
                let channel = Self::take(&mut a, self.ch_bits);
                let col_low = Self::take(&mut a, self.col_low_bits);
                let rank = Self::take(&mut a, self.rank_bits);
                let bank = Self::take(&mut a, self.bank_bits);
                (channel, col_low, rank, bank)
            }
        };
        let col_high = Self::take(&mut a, self.col_high_bits);
        let row = Self::take(&mut a, self.row_bits);
        let bank = self.permute_bank(bank, row);
        DecodedAddr { channel, rank, bank, row, column: (col_high << self.col_low_bits) | col_low }
    }

    /// Reassemble a physical byte address (with a zero burst offset) from
    /// DRAM coordinates. Exact inverse of [`AddressMapper::decode`].
    pub fn encode(&self, d: &DecodedAddr) -> u64 {
        let bank_field = self.permute_bank(d.bank, d.row); // XOR is its own inverse
        let col_low = u64::from(d.column) & ((1u64 << self.col_low_bits) - 1);
        let col_high = u64::from(d.column) >> self.col_low_bits;
        let mut a: u64 = u64::from(d.row);
        a = (a << self.col_high_bits) | col_high;
        match self.scheme {
            MappingScheme::PageColoring | MappingScheme::PermutedPageColoring => {
                a = (a << self.bank_bits) | u64::from(bank_field);
                a = (a << self.rank_bits) | u64::from(d.rank);
                a = (a << self.ch_bits) | u64::from(d.channel);
                a = (a << self.col_low_bits) | col_low;
            }
            MappingScheme::LineInterleaved => {
                a = (a << self.bank_bits) | u64::from(bank_field);
                a = (a << self.rank_bits) | u64::from(d.rank);
                a = (a << self.col_low_bits) | col_low;
                a = (a << self.ch_bits) | u64::from(d.channel);
            }
        }
        a << self.offset_bits
    }

    fn permute_bank(&self, bank: u32, row: u32) -> u32 {
        match self.scheme {
            MappingScheme::PermutedPageColoring => bank ^ (row & ((1 << self.bank_bits) - 1)),
            _ => bank,
        }
    }

    /// The color of a decoded address: a dense index over
    /// (channel, rank, bank).
    ///
    /// Under [`MappingScheme::PermutedPageColoring`] the color is computed
    /// from the *pre-permutation* bank field so that it stays a pure
    /// function of the frame number (the OS-visible quantity).
    pub fn color_of(&self, d: &DecodedAddr) -> ColorId {
        let bank_field = self.permute_bank(d.bank, d.row);
        ((d.channel << self.rank_bits | d.rank) << self.bank_bits) | bank_field
    }

    /// Decompose a color back into (channel, rank, bank-field).
    pub fn color_parts(&self, color: ColorId) -> (u32, u32, u32) {
        let bank = color & ((1 << self.bank_bits) - 1);
        let rest = color >> self.bank_bits;
        let rank = rest & ((1 << self.rank_bits) - 1);
        let channel = rest >> self.rank_bits;
        (channel, rank, bank)
    }

    /// The color of a physical page frame, when the layout gives frames a
    /// unique color.
    ///
    /// Returns `None` for [`MappingScheme::LineInterleaved`], where a frame
    /// spans all channels.
    pub fn frame_color(&self, frame: u64) -> Option<ColorId> {
        match self.scheme {
            MappingScheme::PageColoring | MappingScheme::PermutedPageColoring => {
                let d = self.decode(frame << self.page_bits);
                Some(self.color_of(&d))
            }
            MappingScheme::LineInterleaved => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(scheme: MappingScheme) -> DramConfig {
        DramConfig { mapping: scheme, ..DramConfig::default() }
    }

    #[test]
    fn color_count_matches_geometry() {
        let m = AddressMapper::new(&cfg(MappingScheme::PageColoring));
        assert_eq!(m.num_colors(), 32);
    }

    #[test]
    fn capacity_matches_config() {
        let c = cfg(MappingScheme::PageColoring);
        let m = AddressMapper::new(&c);
        assert_eq!(m.capacity(), c.capacity_bytes());
    }

    #[test]
    fn page_coloring_keeps_color_within_page() {
        let c = cfg(MappingScheme::PageColoring);
        let m = AddressMapper::new(&c);
        let base = 7u64 * u64::from(c.page_bytes);
        let d0 = m.decode(base);
        let color = m.color_of(&d0);
        for off in (0..u64::from(c.page_bytes)).step_by(64) {
            let d = m.decode(base + off);
            assert_eq!(m.color_of(&d), color);
            assert_eq!((d.channel, d.rank, d.bank), (d0.channel, d0.rank, d0.bank));
        }
    }

    #[test]
    fn consecutive_frames_cycle_colors() {
        let c = cfg(MappingScheme::PageColoring);
        let m = AddressMapper::new(&c);
        // With 8 KiB rows and 4 KiB pages, frames alternate within a row's
        // two pages before moving to the next color: frame color period is
        // num_colors over the col_high span. Just check all colors appear
        // among the first num_colors * pages_per_row frames.
        let mut seen = vec![false; m.num_colors() as usize];
        for f in 0..u64::from(m.num_colors()) * u64::from(c.pages_per_row()) {
            let col = m.frame_color(f).unwrap();
            seen[col as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn line_interleaved_spreads_channels_within_page() {
        let c = cfg(MappingScheme::LineInterleaved);
        let m = AddressMapper::new(&c);
        let d0 = m.decode(0);
        let d1 = m.decode(64);
        assert_ne!(d0.channel, d1.channel);
        assert!(m.frame_color(0).is_none());
    }

    #[test]
    fn permuted_scheme_varies_bank_across_rows() {
        let c = cfg(MappingScheme::PermutedPageColoring);
        let m = AddressMapper::new(&c);
        // Same bank field, different rows -> different effective banks.
        let a0 =
            m.decode(m.encode(&DecodedAddr { channel: 0, rank: 0, bank: 0, row: 0, column: 0 }));
        let mut pa1 = DecodedAddr { channel: 0, rank: 0, bank: 0, row: 1, column: 0 };
        // encode/decode of an effective-bank coordinate must round-trip.
        pa1 = m.decode(m.encode(&pa1));
        assert_eq!(a0.bank, 0);
        assert_eq!(pa1.bank, 0);
        // But a *frame-sequential* scan sees permuted banks.
        let f_per_row_group = u64::from(m.num_colors()) * u64::from(c.pages_per_row());
        let b0 = m.decode(0).bank;
        let b1 = m.decode(f_per_row_group * u64::from(c.page_bytes) * 2).bank;
        let _ = (b0, b1); // rows 0 and 2 permute bank 0 to 0 and 2
        assert_eq!(m.decode(0).row, 0);
    }

    #[test]
    fn permuted_frames_still_have_unique_colors() {
        let c = cfg(MappingScheme::PermutedPageColoring);
        let m = AddressMapper::new(&c);
        for f in 0..256u64 {
            let color = m.frame_color(f).unwrap();
            // Every line in the frame agrees on the color.
            let base = f << m.page_bits();
            for off in (0..u64::from(c.page_bytes)).step_by(256) {
                let d = m.decode(base + off);
                assert_eq!(m.color_of(&d), color);
            }
        }
    }

    #[test]
    fn color_parts_roundtrip() {
        let m = AddressMapper::new(&cfg(MappingScheme::PageColoring));
        for color in 0..m.num_colors() {
            let (ch, ra, ba) = m.color_parts(color);
            let d = DecodedAddr { channel: ch, rank: ra, bank: ba, row: 0, column: 0 };
            assert_eq!(m.color_of(&d), color);
        }
    }

    mod props {
        use super::*;
        use dbp_util::prop::{check, range, Config};
        use dbp_util::{prop_assert, prop_assert_eq};

        #[test]
        fn decode_encode_roundtrip() {
            let g = (range(0u64..(4u64 << 30)), range(0usize..3));
            check(Config::default(), &g, |(pa, scheme_idx)| {
                let scheme = [
                    MappingScheme::PageColoring,
                    MappingScheme::PermutedPageColoring,
                    MappingScheme::LineInterleaved,
                ][scheme_idx];
                let m = AddressMapper::new(&cfg(scheme));
                let pa = pa & !63; // burst aligned
                let d = m.decode(pa);
                prop_assert_eq!(m.encode(&d), pa);
                Ok(())
            });
        }

        #[test]
        fn decoded_fields_in_range() {
            check(Config::default(), &range(0u64..(4u64 << 30)), |pa| {
                let c = cfg(MappingScheme::PageColoring);
                let m = AddressMapper::new(&c);
                let d = m.decode(pa);
                prop_assert!(d.channel < c.channels);
                prop_assert!(d.rank < c.ranks_per_channel);
                prop_assert!(d.bank < c.banks_per_rank);
                prop_assert!(d.row < c.rows_per_bank);
                prop_assert!(d.column < c.columns_per_row());
                Ok(())
            });
        }

        #[test]
        fn frame_color_matches_line_colors() {
            check(Config::default(), &range(0u64..100_000), |frame| {
                let c = cfg(MappingScheme::PageColoring);
                let m = AddressMapper::new(&c);
                let fc = m.frame_color(frame).unwrap();
                let d = m.decode((frame << m.page_bits()) + 128);
                prop_assert_eq!(m.color_of(&d), fc);
                Ok(())
            });
        }
    }
}
