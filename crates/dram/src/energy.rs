//! A coarse DDR3 energy model.
//!
//! Follows the standard decomposition used by DRAM power calculators:
//! a fixed energy per ACT/PRE pair, per column access, and per refresh,
//! plus a background power term. The defaults approximate a 2 Gb DDR3-1333
//! x8 device scaled to a rank; this is for *relative* comparisons between
//! policies (e.g. a policy that halves activates saves activate energy),
//! not absolute watts.

use crate::stats::DramStats;
use crate::Cycle;

/// Per-operation energies (picojoules) and background power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one ACT + PRE pair, pJ.
    pub act_pre_pj: f64,
    /// Energy of one READ burst, pJ.
    pub read_pj: f64,
    /// Energy of one WRITE burst, pJ.
    pub write_pj: f64,
    /// Energy of one rank refresh, pJ.
    pub refresh_pj: f64,
    /// Background power, mW (applied over elapsed time).
    pub background_mw: f64,
    /// Bus clock period in picoseconds.
    pub clock_ps: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            act_pre_pj: 1600.0,
            read_pj: 1100.0,
            write_pj: 1200.0,
            refresh_pj: 24000.0,
            background_mw: 350.0,
            clock_ps: 1500.0,
        }
    }
}

impl EnergyModel {
    /// Total energy in nanojoules over `elapsed` bus cycles of activity
    /// described by `stats`.
    pub fn total_nj(&self, stats: &DramStats, elapsed: Cycle) -> f64 {
        let dynamic_pj = stats.activates as f64 * self.act_pre_pj
            + stats.reads as f64 * self.read_pj
            + stats.writes as f64 * self.write_pj
            + stats.refreshes as f64 * self.refresh_pj;
        // mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-3 pJ
        let background_pj = self.background_mw * self.clock_ps * elapsed as f64 * 1e-3;
        (dynamic_pj + background_pj) / 1000.0
    }

    /// Energy per transferred byte, nJ/B.
    pub fn energy_per_byte_nj(&self, stats: &DramStats, elapsed: Cycle, burst_bytes: u32) -> f64 {
        let bytes = (stats.reads + stats.writes) * u64::from(burst_bytes);
        if bytes == 0 {
            return 0.0;
        }
        self.total_nj(stats, elapsed) / bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_activates_cost_more() {
        let m = EnergyModel::default();
        let mut few = DramStats::new(1);
        let mut many = DramStats::new(1);
        few.record_activate(0);
        for _ in 0..10 {
            many.record_activate(0);
        }
        assert!(m.total_nj(&many, 100) > m.total_nj(&few, 100));
    }

    #[test]
    fn background_grows_with_time() {
        let m = EnergyModel::default();
        let s = DramStats::new(1);
        assert!(m.total_nj(&s, 2000) > m.total_nj(&s, 1000));
    }

    #[test]
    fn energy_per_byte_zero_without_traffic() {
        let m = EnergyModel::default();
        let s = DramStats::new(1);
        assert_eq!(m.energy_per_byte_nj(&s, 100, 64), 0.0);
    }
}
