//! JEDEC DDR3 timing parameters, expressed in DRAM bus clock cycles.
//!
//! A "bus clock cycle" is one period of the DDR command clock (e.g. 1.5 ns
//! for DDR3-1333). Data is transferred on both edges, so a burst of 8
//! transfers occupies `BL/2 = 4` bus cycles.

/// The full set of timing constraints the device model enforces.
///
/// All values are in bus clock cycles. The presets
/// ([`TimingParams::ddr3_1333`], [`TimingParams::ddr3_1600`]) follow the
/// common speed-bin datasheet values for 2 Gb parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// CAS latency: READ command to first data.
    pub cl: u32,
    /// CAS write latency: WRITE command to first data.
    pub cwl: u32,
    /// ACT to internal READ/WRITE (RAS-to-CAS delay).
    pub t_rcd: u32,
    /// PRE to ACT on the same bank (row precharge).
    pub t_rp: u32,
    /// ACT to PRE on the same bank (row active time).
    pub t_ras: u32,
    /// ACT to ACT on the same bank (`t_ras + t_rp`).
    pub t_rc: u32,
    /// ACT to ACT on different banks of the same rank.
    pub t_rrd: u32,
    /// Four-activate window per rank.
    pub t_faw: u32,
    /// End of write data to READ command, same rank.
    pub t_wtr: u32,
    /// End of write data to PRE on the written bank (write recovery).
    pub t_wr: u32,
    /// READ to PRE on the same bank.
    pub t_rtp: u32,
    /// Column-to-column delay (also the burst duration for BL8).
    pub t_ccd: u32,
    /// Data bus occupancy of one burst (`BL/2` for DDR).
    pub t_burst: u32,
    /// Rank-to-rank data bus switch penalty.
    pub t_rtrs: u32,
    /// Refresh cycle time (one REF command per rank).
    pub t_rfc: u32,
    /// Average refresh interval (one REF due per rank every `t_refi`).
    pub t_refi: u32,
    /// Bus clock period in picoseconds (for reporting only).
    pub clock_ps: u32,
}

impl TimingParams {
    /// DDR3-1333H (666.7 MHz bus clock, 9-9-9), 2 Gb parts.
    ///
    /// This is the speed bin used by the paper-era evaluation setups.
    pub fn ddr3_1333() -> Self {
        TimingParams {
            cl: 9,
            cwl: 7,
            t_rcd: 9,
            t_rp: 9,
            t_ras: 24,
            t_rc: 33,
            t_rrd: 4,
            t_faw: 20,
            t_wtr: 5,
            t_wr: 10,
            t_rtp: 5,
            t_ccd: 4,
            t_burst: 4,
            t_rtrs: 2,
            t_rfc: 107,
            t_refi: 5200,
            clock_ps: 1500,
        }
    }

    /// DDR3-1600K (800 MHz bus clock, 11-11-11), 2 Gb parts.
    pub fn ddr3_1600() -> Self {
        TimingParams {
            cl: 11,
            cwl: 8,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_rrd: 5,
            t_faw: 24,
            t_wtr: 6,
            t_wr: 12,
            t_rtp: 6,
            t_ccd: 4,
            t_burst: 4,
            t_rtrs: 2,
            t_rfc: 128,
            t_refi: 6240,
            clock_ps: 1250,
        }
    }

    /// Tiny constants for fast, readable unit tests.
    ///
    /// Not a real device; every constraint is still structurally enforced,
    /// just with small numbers so tests can count cycles by hand.
    pub fn fast_test() -> Self {
        TimingParams {
            cl: 2,
            cwl: 1,
            t_rcd: 2,
            t_rp: 2,
            t_ras: 5,
            t_rc: 7,
            t_rrd: 2,
            t_faw: 8,
            t_wtr: 2,
            t_wr: 3,
            t_rtp: 2,
            t_ccd: 2,
            t_burst: 2,
            t_rtrs: 1,
            t_rfc: 20,
            t_refi: 200,
            clock_ps: 1000,
        }
    }

    /// READ command to WRITE command minimum gap on the same channel,
    /// derived from the bus turnaround: `CL - CWL + tBURST + 2`.
    pub fn read_to_write(&self) -> u32 {
        self.cl.saturating_sub(self.cwl) + self.t_burst + 2
    }

    /// Sanity-check internal consistency (e.g. `t_rc >= t_ras + t_rp` holds
    /// approximately, burst lengths are positive).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// relationship.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_burst == 0 {
            return Err("t_burst must be positive".to_owned());
        }
        if self.t_ccd < self.t_burst {
            return Err(format!("t_ccd ({}) must cover the burst ({})", self.t_ccd, self.t_burst));
        }
        if self.t_rc < self.t_ras {
            return Err(format!("t_rc ({}) must be at least t_ras ({})", self.t_rc, self.t_ras));
        }
        if self.t_faw < self.t_rrd {
            return Err(format!("t_faw ({}) must be at least t_rrd ({})", self.t_faw, self.t_rrd));
        }
        if self.t_refi <= self.t_rfc {
            return Err(format!("t_refi ({}) must exceed t_rfc ({})", self.t_refi, self.t_rfc));
        }
        Ok(())
    }

    /// Idealised peak bandwidth in bytes per bus cycle for an 8-byte bus.
    pub fn peak_bytes_per_cycle(&self, bus_bytes: u32) -> f64 {
        // Double data rate: two transfers per bus cycle.
        2.0 * bus_bytes as f64
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr3_1333()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TimingParams::ddr3_1333().validate().unwrap();
        TimingParams::ddr3_1600().validate().unwrap();
        TimingParams::fast_test().validate().unwrap();
    }

    #[test]
    fn ddr3_1333_is_9_9_9() {
        let t = TimingParams::ddr3_1333();
        assert_eq!((t.cl, t.t_rcd, t.t_rp), (9, 9, 9));
        assert_eq!(t.t_rc, t.t_ras + t.t_rp);
    }

    #[test]
    fn read_to_write_gap_covers_burst() {
        let t = TimingParams::ddr3_1333();
        assert!(t.read_to_write() >= t.t_burst);
    }

    #[test]
    fn validate_rejects_zero_burst() {
        let mut t = TimingParams::ddr3_1333();
        t.t_burst = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_refi_below_rfc() {
        let mut t = TimingParams::ddr3_1333();
        t.t_refi = t.t_rfc;
        assert!(t.validate().is_err());
    }

    #[test]
    fn faster_bin_has_shorter_clock() {
        assert!(TimingParams::ddr3_1600().clock_ps < TimingParams::ddr3_1333().clock_ps);
    }
}
