//! The DRAM device: accepts commands, enforces every timing constraint,
//! and reports data-return times.

use crate::address::AddressMapper;
use crate::command::{Command, Loc};
use crate::config::DramConfig;
use crate::state::{BankState, ChannelState, RankState};
use crate::stats::DramStats;
use crate::Cycle;

/// Outcome of a successfully issued command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueResult {
    /// For column commands, the cycle the data burst completes (read data
    /// available / write data absorbed). `None` for other commands.
    pub data_ready_at: Option<Cycle>,
}

/// The resource class gating a row-hit read, as reported by
/// [`Dram::column_gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnGate {
    /// Every timing constraint except command-bus arbitration holds.
    Ready,
    /// The bank is not ready: tRCD after its activate, or rank refresh.
    Bank,
    /// Only bus-level spacing blocks it: tCCD, write-to-read turnaround,
    /// data-bus occupancy, or the rank-switch penalty.
    Bus,
}

/// A multi-channel DDR3 device.
///
/// The device is passive: the memory controller polls [`Dram::can_issue`]
/// (or [`Dram::earliest_issue`]) and calls [`Dram::issue`]. All times are
/// DRAM bus cycles. Issuing a command that violates a constraint is a
/// programming error and panics in debug builds.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    mapper: AddressMapper,
    channels: Vec<ChannelState>,
    ranks: Vec<RankState>,   // [channel * ranks + rank]
    banks: Vec<BankState>,   // [(channel * ranks + rank) * banks + bank]
    refresh_due: Vec<Cycle>, // per rank, absolute deadline of next REF
    stats: DramStats,
    /// Host-profiling work counter: timing-oracle queries
    /// ([`Dram::earliest_issue`] / [`Dram::can_issue`] /
    /// [`Dram::timing_ready`]). Disabled by default (one branch);
    /// clones share the same cell.
    timing_queries: dbp_obs::prof::Counter,
}

impl Dram {
    /// Build a device for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig) -> Self {
        cfg.validate().expect("invalid DramConfig");
        let mapper = AddressMapper::new(&cfg);
        let nch = cfg.channels as usize;
        let nra = nch * cfg.ranks_per_channel as usize;
        let nba = nra * cfg.banks_per_rank as usize;
        let t_refi = Cycle::from(cfg.timing.t_refi);
        Dram {
            channels: vec![ChannelState::default(); nch],
            ranks: vec![RankState::default(); nra],
            banks: vec![BankState::default(); nba],
            refresh_due: vec![t_refi; nra],
            stats: DramStats::new(nba),
            mapper,
            cfg,
            timing_queries: dbp_obs::prof::Counter::default(),
        }
    }

    /// Register this device's work counters with a host self-profiler.
    /// The `dram/timing_queries` counter measures how often the
    /// controller polls the timing oracle — the per-cycle scan cost the
    /// event-driven core (ROADMAP item 1) is meant to eliminate.
    pub fn attach_profiler(&mut self, prof: &dbp_obs::Prof) {
        self.timing_queries = prof.counter("dram/timing_queries");
    }

    /// The device configuration.
    pub fn cfg(&self) -> &DramConfig {
        &self.cfg
    }

    /// The address mapper for this device's layout.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn rank_idx(&self, channel: u32, rank: u32) -> usize {
        (channel * self.cfg.ranks_per_channel + rank) as usize
    }

    fn bank_idx(&self, loc: Loc) -> usize {
        self.rank_idx(loc.channel, loc.rank) * self.cfg.banks_per_rank as usize + loc.bank as usize
    }

    /// The row currently open in the addressed bank, if any.
    pub fn open_row(&self, loc: Loc) -> Option<u32> {
        self.banks[self.bank_idx(loc)].open_row
    }

    /// Whether the command bus of `channel` can accept a command at `now`.
    pub fn cmd_bus_free(&self, channel: u32, now: Cycle) -> bool {
        self.channels[channel as usize].cmd_free(now)
    }

    /// Earliest cycle `>= now` at which `cmd` satisfies every timing
    /// constraint, including the one-command-per-cycle command bus.
    ///
    /// Returns `None` when the command is structurally impossible right now
    /// (activating an already-open bank, reading a closed or mismatched
    /// bank, refreshing a rank with open rows).
    pub fn earliest_issue(&self, cmd: &Command, now: Cycle) -> Option<Cycle> {
        let mut at = self.earliest_issue_inner(cmd, now)?;
        if self.channels[cmd.channel() as usize].last_cmd_at == Some(at) {
            at += 1;
        }
        Some(at)
    }

    fn earliest_issue_inner(&self, cmd: &Command, now: Cycle) -> Option<Cycle> {
        self.timing_queries.incr();
        let t = &self.cfg.timing;
        match *cmd {
            Command::Activate { loc, .. } => {
                let b = &self.banks[self.bank_idx(loc)];
                if b.open_row.is_some() {
                    return None;
                }
                let r = &self.ranks[self.rank_idx(loc.channel, loc.rank)];
                let mut at = now.max(b.next_act).max(r.next_act).max(r.refresh_done);
                if r.act_window.len() >= 4 {
                    at = at.max(r.act_window[r.act_window.len() - 4] + Cycle::from(t.t_faw));
                }
                Some(at)
            }
            Command::Read { loc, .. } => {
                let b = &self.banks[self.bank_idx(loc)];
                b.open_row?;
                let r = &self.ranks[self.rank_idx(loc.channel, loc.rank)];
                let ch = &self.channels[loc.channel as usize];
                let mut at =
                    now.max(b.next_read).max(r.next_read).max(ch.next_read).max(r.refresh_done);
                // Data must start when the bus is free.
                let data_earliest = ch.data_start(loc.rank, t.t_rtrs);
                at = at.max(data_earliest.saturating_sub(Cycle::from(t.cl)));
                Some(at)
            }
            Command::Write { loc, .. } => {
                let b = &self.banks[self.bank_idx(loc)];
                b.open_row?;
                let r = &self.ranks[self.rank_idx(loc.channel, loc.rank)];
                let ch = &self.channels[loc.channel as usize];
                let mut at = now.max(b.next_write).max(ch.next_write).max(r.refresh_done);
                let data_earliest = ch.data_start(loc.rank, t.t_rtrs);
                at = at.max(data_earliest.saturating_sub(Cycle::from(t.cwl)));
                Some(at)
            }
            Command::Precharge { loc } => {
                let b = &self.banks[self.bank_idx(loc)];
                b.open_row?;
                let r = &self.ranks[self.rank_idx(loc.channel, loc.rank)];
                Some(now.max(b.next_pre).max(r.refresh_done))
            }
            Command::RefreshRank { channel, rank } => {
                let ri = self.rank_idx(channel, rank);
                let base = ri * self.cfg.banks_per_rank as usize;
                let mut at = now.max(self.ranks[ri].refresh_done);
                for b in &self.banks[base..base + self.cfg.banks_per_rank as usize] {
                    if b.open_row.is_some() {
                        return None;
                    }
                    at = at.max(b.next_act);
                }
                Some(at)
            }
        }
    }

    /// Whether `cmd` may issue exactly at `now` (including the command bus).
    pub fn can_issue(&self, cmd: &Command, now: Cycle) -> bool {
        if !self.cmd_bus_free(cmd.channel(), now) {
            return false;
        }
        matches!(self.earliest_issue(cmd, now), Some(at) if at == now)
    }

    /// Whether `cmd` satisfies every bank/rank/data-bus timing constraint
    /// at `now`, ignoring command-bus arbitration. Diagnostic query used
    /// by the latency-anatomy classifier to separate "the device is not
    /// ready" from "another command won the slot".
    pub fn timing_ready(&self, cmd: &Command, now: Cycle) -> bool {
        matches!(self.earliest_issue_inner(cmd, now), Some(at) if at == now)
    }

    /// Which resource class is gating a row-hit `Read` at `now`:
    /// [`ColumnGate::Bank`] when the bank itself is not ready (tRCD after
    /// ACT, rank refresh), [`ColumnGate::Bus`] when only data/command-bus
    /// spacing blocks it (tCCD, write-to-read turnaround, burst
    /// occupancy, rank-switch penalty), [`ColumnGate::Ready`] when every
    /// constraint except command-bus arbitration is satisfied. `None`
    /// when the bank has no open row or `cmd` is not a `Read`.
    pub fn column_gate(&self, cmd: &Command, now: Cycle) -> Option<ColumnGate> {
        let Command::Read { loc, .. } = *cmd else { return None };
        let b = &self.banks[self.bank_idx(loc)];
        b.open_row?;
        let t = &self.cfg.timing;
        let r = &self.ranks[self.rank_idx(loc.channel, loc.rank)];
        if b.next_read.max(r.refresh_done) > now {
            return Some(ColumnGate::Bank);
        }
        let ch = &self.channels[loc.channel as usize];
        let data_gate = ch.data_start(loc.rank, t.t_rtrs).saturating_sub(Cycle::from(t.cl));
        if r.next_read.max(ch.next_read).max(data_gate) > now {
            return Some(ColumnGate::Bus);
        }
        Some(ColumnGate::Ready)
    }

    /// The cycle at which the bank-side gate on a row-hit read clears
    /// ([`Dram::column_gate`] stops reporting [`ColumnGate::Bank`]): the
    /// max of the bank's column-read timing and the rank's refresh
    /// recovery. `None` when the bank has no open row. Lets a
    /// time-skipping caller compute, in one query, where the gate class
    /// transitions inside a window in which no command issues.
    pub fn read_bank_ready(&self, loc: Loc) -> Option<Cycle> {
        let b = &self.banks[self.bank_idx(loc)];
        b.open_row?;
        let r = &self.ranks[self.rank_idx(loc.channel, loc.rank)];
        Some(b.next_read.max(r.refresh_done))
    }

    /// Issue `cmd` at `now`, updating all timing state.
    ///
    /// Returns the data completion time for column commands.
    ///
    /// # Panics
    ///
    /// Panics (in all builds) if the command violates a timing or state
    /// constraint — the controller must check [`Dram::can_issue`] first.
    pub fn issue(&mut self, cmd: &Command, now: Cycle) -> IssueResult {
        assert!(self.can_issue(cmd, now), "illegal command {cmd:?} at cycle {now}");
        let t = self.cfg.timing;
        self.channels[cmd.channel() as usize].last_cmd_at = Some(now);
        match *cmd {
            Command::Activate { loc, row } => {
                let ri = self.rank_idx(loc.channel, loc.rank);
                let bi = self.bank_idx(loc);
                let b = &mut self.banks[bi];
                b.open_row = Some(row);
                b.next_read = now + Cycle::from(t.t_rcd);
                b.next_write = now + Cycle::from(t.t_rcd);
                b.next_pre = now + Cycle::from(t.t_ras);
                b.next_act = now + Cycle::from(t.t_rc);
                let r = &mut self.ranks[ri];
                r.next_act = now + Cycle::from(t.t_rrd);
                r.record_act(now, t.t_faw);
                self.stats.record_activate(bi);
                IssueResult { data_ready_at: None }
            }
            Command::Read { loc, auto_pre, .. } => {
                let bi = self.bank_idx(loc);
                let ri = self.rank_idx(loc.channel, loc.rank);
                let data_start = now + Cycle::from(t.cl);
                let data_end = data_start + Cycle::from(t.t_burst);
                let ch = &mut self.channels[loc.channel as usize];
                debug_assert!(data_start >= ch.data_start(loc.rank, t.t_rtrs));
                ch.data_free_at = data_end;
                ch.last_data_rank = Some(loc.rank);
                // Read-to-write turnaround on the channel.
                ch.next_write = ch.next_write.max(now + Cycle::from(t.read_to_write()));
                // Back-to-back column spacing.
                ch.next_read = ch.next_read.max(now + Cycle::from(t.t_ccd));
                let b = &mut self.banks[bi];
                b.next_pre = b.next_pre.max(now + Cycle::from(t.t_rtp));
                if auto_pre {
                    let pre_at = b.next_pre;
                    b.open_row = None;
                    b.next_act = b.next_act.max(pre_at + Cycle::from(t.t_rp));
                    self.stats.record_precharge(bi);
                }
                let _ = ri;
                self.stats.record_read(bi, t.t_burst);
                IssueResult { data_ready_at: Some(data_end) }
            }
            Command::Write { loc, auto_pre, .. } => {
                let bi = self.bank_idx(loc);
                let ri = self.rank_idx(loc.channel, loc.rank);
                let data_start = now + Cycle::from(t.cwl);
                let data_end = data_start + Cycle::from(t.t_burst);
                let ch = &mut self.channels[loc.channel as usize];
                debug_assert!(data_start >= ch.data_start(loc.rank, t.t_rtrs));
                ch.data_free_at = data_end;
                ch.last_data_rank = Some(loc.rank);
                ch.next_write = ch.next_write.max(now + Cycle::from(t.t_ccd));
                // Write-to-read turnaround within the rank.
                let r = &mut self.ranks[ri];
                r.next_read = r.next_read.max(data_end + Cycle::from(t.t_wtr));
                let b = &mut self.banks[bi];
                b.next_pre = b.next_pre.max(data_end + Cycle::from(t.t_wr));
                if auto_pre {
                    let pre_at = b.next_pre;
                    b.open_row = None;
                    b.next_act = b.next_act.max(pre_at + Cycle::from(t.t_rp));
                    self.stats.record_precharge(bi);
                }
                self.stats.record_write(bi, t.t_burst);
                IssueResult { data_ready_at: Some(data_end) }
            }
            Command::Precharge { loc } => {
                let bi = self.bank_idx(loc);
                let b = &mut self.banks[bi];
                b.open_row = None;
                b.next_act = b.next_act.max(now + Cycle::from(t.t_rp));
                self.stats.record_precharge(bi);
                IssueResult { data_ready_at: None }
            }
            Command::RefreshRank { channel, rank } => {
                let ri = self.rank_idx(channel, rank);
                let base = ri * self.cfg.banks_per_rank as usize;
                for b in &mut self.banks[base..base + self.cfg.banks_per_rank as usize] {
                    b.next_act = b.next_act.max(now + Cycle::from(t.t_rfc));
                }
                let r = &mut self.ranks[ri];
                r.refresh_done = now + Cycle::from(t.t_rfc);
                self.refresh_due[ri] += Cycle::from(t.t_refi);
                self.stats.record_refresh();
                IssueResult { data_ready_at: None }
            }
        }
    }

    /// Absolute deadline by which the next REF of (channel, rank) should
    /// issue.
    pub fn refresh_deadline(&self, channel: u32, rank: u32) -> Cycle {
        self.refresh_due[self.rank_idx(channel, rank)]
    }

    /// Whether the rank's refresh is due at or before `now`.
    pub fn refresh_urgent(&self, channel: u32, rank: u32, now: Cycle) -> bool {
        now >= self.refresh_deadline(channel, rank)
    }

    /// Banks of (channel, rank) that currently hold an open row — these
    /// must be precharged before a refresh.
    pub fn open_banks(&self, channel: u32, rank: u32) -> Vec<u32> {
        let ri = self.rank_idx(channel, rank);
        let base = ri * self.cfg.banks_per_rank as usize;
        (0..self.cfg.banks_per_rank)
            .filter(|&b| self.banks[base + b as usize].open_row.is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn dev() -> Dram {
        Dram::new(DramConfig::fast_test())
    }

    fn t() -> TimingParams {
        TimingParams::fast_test()
    }

    #[test]
    fn activate_then_read_obeys_trcd() {
        let mut d = dev();
        let act = Command::activate(0, 0, 0, 5);
        assert!(d.can_issue(&act, 0));
        d.issue(&act, 0);
        let rd = Command::read(0, 0, 0, 5, 0, false);
        // tRCD = 2: read legal at cycle 2, not before.
        assert!(!d.can_issue(&rd, 1));
        assert_eq!(d.earliest_issue(&rd, 0), Some(Cycle::from(t().t_rcd)));
        let r = d.issue(&rd, 2);
        assert_eq!(r.data_ready_at, Some(2 + Cycle::from(t().cl + t().t_burst)));
    }

    #[test]
    fn read_requires_open_row() {
        let d = dev();
        let rd = Command::read(0, 0, 0, 5, 0, false);
        assert_eq!(d.earliest_issue(&rd, 0), None);
    }

    #[test]
    fn activate_blocked_while_row_open() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 5), 0);
        assert_eq!(d.earliest_issue(&Command::activate(0, 0, 0, 6), 10), None);
    }

    #[test]
    fn precharge_respects_tras_then_act_tr() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 5), 0);
        let pre = Command::precharge(0, 0, 0);
        // tRAS = 5.
        assert_eq!(d.earliest_issue(&pre, 0), Some(5));
        d.issue(&pre, 5);
        let act = Command::activate(0, 0, 0, 6);
        // After PRE at 5, ACT at 5 + tRP = 7; also tRC = 7 from cycle 0.
        assert_eq!(d.earliest_issue(&act, 0), Some(7));
    }

    #[test]
    fn same_rank_activates_spaced_by_trrd() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 1), 0);
        let act2 = Command::activate(0, 0, 1, 1);
        assert_eq!(d.earliest_issue(&act2, 0), Some(Cycle::from(t().t_rrd)));
    }

    #[test]
    fn faw_limits_burst_of_activates() {
        let mut d = dev();
        let mut now = 0;
        for b in 0..4 {
            let act = Command::activate(0, 0, b, 1);
            now = d.earliest_issue(&act, now).unwrap();
            d.issue(&act, now);
        }
        // 4 activates at 0,2,4,6 (tRRD=2). A 5th (re-activate bank 0 after
        // closing it) must wait for tFAW = 8 from the first.
        let pre = Command::precharge(0, 0, 0);
        let pre_at = d.earliest_issue(&pre, now).unwrap();
        d.issue(&pre, pre_at);
        let act5 = Command::activate(0, 0, 0, 2);
        let at = d.earliest_issue(&act5, pre_at).unwrap();
        assert!(at >= Cycle::from(t().t_faw));
    }

    #[test]
    fn data_bus_serialises_reads() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 1), 0);
        let act2 = Command::activate(0, 0, 1, 1);
        let a2 = d.earliest_issue(&act2, 0).unwrap();
        d.issue(&act2, a2);
        let rd0 = Command::read(0, 0, 0, 1, 0, false);
        let t0 = d.earliest_issue(&rd0, 0).unwrap();
        let r0 = d.issue(&rd0, t0);
        let rd1 = Command::read(0, 0, 1, 1, 0, false);
        let t1 = d.earliest_issue(&rd1, t0).unwrap();
        let r1 = d.issue(&rd1, t1);
        // Bursts must not overlap.
        assert!(r1.data_ready_at.unwrap() >= r0.data_ready_at.unwrap() + Cycle::from(t().t_burst));
    }

    #[test]
    fn write_to_read_turnaround() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 1), 0);
        let wr = Command::write(0, 0, 0, 0, false);
        let tw = d.earliest_issue(&wr, 0).unwrap();
        let res = d.issue(&wr, tw);
        let data_end = res.data_ready_at.unwrap();
        let rd = Command::read(0, 0, 0, 1, 1, false);
        let tr = d.earliest_issue(&rd, tw).unwrap();
        assert!(tr >= data_end + Cycle::from(t().t_wtr));
    }

    #[test]
    fn auto_precharge_closes_row() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 1), 0);
        let rd = Command::read(0, 0, 0, 1, 0, true);
        let tr = d.earliest_issue(&rd, 0).unwrap();
        d.issue(&rd, tr);
        assert_eq!(d.open_row(Loc::new(0, 0, 0)), None);
        // Row can be re-activated, but only after tRTP + tRP from the read.
        let act = Command::activate(0, 0, 0, 2);
        let ta = d.earliest_issue(&act, tr).unwrap();
        assert!(ta >= tr + Cycle::from(t().t_rtp + t().t_rp));
    }

    #[test]
    fn refresh_requires_all_banks_closed() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 2, 1), 0);
        let rf = Command::RefreshRank { channel: 0, rank: 0 };
        assert_eq!(d.earliest_issue(&rf, 0), None);
        assert_eq!(d.open_banks(0, 0), vec![2]);
        let pre = Command::precharge(0, 0, 2);
        let tp = d.earliest_issue(&pre, 0).unwrap();
        d.issue(&pre, tp);
        let tr = d.earliest_issue(&rf, tp).unwrap();
        d.issue(&rf, tr);
        // All banks blocked for tRFC.
        let act = Command::activate(0, 0, 0, 1);
        assert_eq!(d.earliest_issue(&act, tr), Some(tr + Cycle::from(t().t_rfc)));
        // Deadline advanced by tREFI.
        assert_eq!(d.refresh_deadline(0, 0), Cycle::from(t().t_refi) * 2);
    }

    #[test]
    fn command_bus_one_per_cycle() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 1), 0);
        // Another command on the same channel in the same cycle is illegal
        // even if its bank-level timing allows it.
        let act2 = Command::activate(0, 0, 1, 1);
        assert!(!d.can_issue(&act2, 0));
    }

    #[test]
    #[should_panic(expected = "illegal command")]
    fn issuing_illegal_command_panics() {
        let mut d = dev();
        d.issue(&Command::read(0, 0, 0, 0, 0, false), 0);
    }

    #[test]
    fn column_gate_tracks_bank_then_bus_then_ready() {
        let mut d = dev();
        let rd = Command::read(0, 0, 0, 5, 0, false);
        // Closed bank: no gate at all.
        assert_eq!(d.column_gate(&rd, 0), None);
        d.issue(&Command::activate(0, 0, 0, 5), 0);
        // During tRCD the bank itself is not ready.
        assert_eq!(d.column_gate(&rd, 1), Some(ColumnGate::Bank));
        let ready_at = Cycle::from(t().t_rcd);
        assert_eq!(d.column_gate(&rd, ready_at), Some(ColumnGate::Ready));
        d.issue(&rd, ready_at);
        // Immediately after a read, only column/bus spacing (tCCD, data
        // burst) blocks the next read on the same open row.
        assert_eq!(d.column_gate(&rd, ready_at + 1), Some(ColumnGate::Bus));
        // Non-read commands report no gate.
        assert_eq!(d.column_gate(&Command::precharge(0, 0, 0), ready_at), None);
    }

    #[test]
    fn read_bank_ready_matches_column_gate_transition() {
        let mut d = dev();
        let loc = Loc::new(0, 0, 0);
        let rd = Command::read(0, 0, 0, 5, 0, false);
        assert_eq!(d.read_bank_ready(loc), None, "closed bank has no gate");
        d.issue(&Command::activate(0, 0, 0, 5), 0);
        let b = d.read_bank_ready(loc).unwrap();
        assert_eq!(b, Cycle::from(t().t_rcd));
        assert_eq!(d.column_gate(&rd, b - 1), Some(ColumnGate::Bank));
        assert_ne!(d.column_gate(&rd, b), Some(ColumnGate::Bank));
    }

    #[test]
    fn column_gate_reports_bank_during_refresh() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 1, 5), 0);
        let pre = Command::precharge(0, 0, 1);
        let tp = d.earliest_issue(&pre, 0).unwrap();
        d.issue(&pre, tp);
        let rf = Command::RefreshRank { channel: 0, rank: 0 };
        let tr = d.earliest_issue(&rf, tp).unwrap();
        d.issue(&rf, tr);
        // Open a row elsewhere is impossible during tRFC, so emulate a
        // pre-refresh open row by checking timing_ready on an ACT.
        let act = Command::activate(0, 0, 0, 3);
        assert!(!d.timing_ready(&act, tr + 1));
        assert!(d.timing_ready(&act, tr + Cycle::from(t().t_rfc)));
    }

    #[test]
    fn timing_ready_ignores_command_bus() {
        let mut d = dev();
        d.issue(&Command::activate(0, 0, 0, 5), 0);
        // Same cycle: the command bus is taken, but bank timing for an
        // ACT on another bank is satisfied.
        let act2 = Command::activate(0, 0, 2, 1);
        assert!(!d.can_issue(&act2, 0), "command bus busy");
        // tRRD pushes the other bank's ACT out; at tRRD it is timing-ready.
        assert!(!d.timing_ready(&act2, 0));
        let at = Cycle::from(t().t_rrd);
        assert!(d.timing_ready(&act2, at));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::config::DramConfig;
    use dbp_util::prop::{any_bool, check, one_of, range, vec_of, BoxedGen, Config, Gen};
    use dbp_util::prop_assert;

    #[derive(Debug, Clone)]
    enum Op {
        Touch { bank: u32, row: u32, column: u32, write: bool },
        Close { bank: u32 },
    }

    fn arb_op() -> impl Gen<Value = Op> {
        one_of::<Op>(vec![
            (range(0u32..4), range(0u32..64), range(0u32..32), any_bool())
                .map(|(bank, row, column, write)| Op::Touch { bank, row, column, write })
                .boxed() as BoxedGen<Op>,
            range(0u32..4).map(|bank| Op::Close { bank }).boxed(),
        ])
    }

    /// Drive a random but legal command stream and check global
    /// invariants: data bursts never overlap on the channel bus and
    /// reads always return data after their issue time.
    #[test]
    fn random_legal_streams_keep_bus_exclusive() {
        check(Config::cases(48), &vec_of(arb_op(), 1..60), |ops| {
            let mut d = Dram::new(DramConfig::fast_test());
            let mut now: Cycle = 0;
            let mut bursts: Vec<(Cycle, Cycle)> = Vec::new();
            let t_burst = Cycle::from(d.cfg().timing.t_burst);
            for op in ops {
                match op {
                    Op::Touch { bank, row, column, write } => {
                        let loc = Loc::new(0, 0, bank);
                        if let Some(open) = d.open_row(loc) {
                            if open != row {
                                let pre = Command::precharge(0, 0, bank);
                                now = d.earliest_issue(&pre, now).unwrap();
                                d.issue(&pre, now);
                            }
                        }
                        if d.open_row(loc).is_none() {
                            let act = Command::Activate { loc, row };
                            now = d.earliest_issue(&act, now).unwrap();
                            d.issue(&act, now);
                        }
                        let col = if write {
                            Command::Write { loc, column, auto_pre: false }
                        } else {
                            Command::Read { loc, column, auto_pre: false }
                        };
                        let at = d.earliest_issue(&col, now).unwrap();
                        let res = d.issue(&col, at);
                        let end = res.data_ready_at.unwrap();
                        prop_assert!(end > at, "data must follow the command");
                        bursts.push((end - t_burst, end));
                        now = at;
                    }
                    Op::Close { bank } => {
                        let pre = Command::precharge(0, 0, bank);
                        if let Some(at) = d.earliest_issue(&pre, now) {
                            d.issue(&pre, at);
                            now = at;
                        }
                    }
                }
            }
            bursts.sort_unstable();
            for w in bursts.windows(2) {
                prop_assert!(w[1].0 >= w[0].1, "data bursts overlap: {:?} then {:?}", w[0], w[1]);
            }
            Ok(())
        });
    }

    /// Whatever earliest_issue returns must actually be issuable at
    /// that cycle (issue() asserts legality internally).
    #[test]
    fn earliest_issue_is_self_consistent() {
        check(Config::cases(48), &vec_of(range(0u32..64), 1..20), |seed_rows| {
            let mut d = Dram::new(DramConfig::fast_test());
            let mut now = 0;
            for (i, row) in seed_rows.iter().enumerate() {
                let bank = (i as u32) % 4;
                let loc = Loc::new(0, 0, bank);
                if d.open_row(loc).is_some() {
                    let pre = Command::precharge(0, 0, bank);
                    now = d.earliest_issue(&pre, now).unwrap();
                    d.issue(&pre, now);
                }
                let act = Command::Activate { loc, row: *row };
                now = d.earliest_issue(&act, now).unwrap();
                d.issue(&act, now);
                let rd = Command::Read { loc, column: 0, auto_pre: false };
                now = d.earliest_issue(&rd, now).unwrap();
                d.issue(&rd, now);
            }
            Ok(())
        });
    }
}
