//! The recorder handle threaded through the simulator.
//!
//! A [`Recorder`] is a cheap-clone handle (the simulator is
//! single-threaded, so it is an `Option<Rc<..>>`) that every layer —
//! sim loop, memory controller, OS memory manager, policies — can hold
//! a copy of. When built with [`Recorder::disabled`] every call is a
//! branch on a `None` and returns immediately, which keeps the
//! instrumented hot paths free of observable work; the determinism
//! suite asserts the simulation is byte-identical either way.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::audit::AuditReport;
use crate::event::{EventKind, TraceEvent};
use crate::latency::LatencyReport;

/// Default ring-buffer capacity: plenty for epoch-level events over long
/// runs while bounding memory when per-page events fire in bursts.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Construction-time knobs for an enabled recorder.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Maximum retained events; the oldest are dropped (and counted) on
    /// overflow.
    pub event_capacity: usize,
    /// Pretty-print epoch-level events to stderr as they arrive
    /// (back-compat behaviour of the `DBP_TRACE_PLAN` env var).
    pub stderr_echo: bool,
    /// Ask the simulator to run the decision audit layer (shadow
    /// policies + estimator accuracy + convergence) and publish its
    /// report via [`Recorder::set_audit`].
    pub audit: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig { event_capacity: DEFAULT_EVENT_CAPACITY, stderr_echo: false, audit: false }
    }
}

/// One per-thread sample inside an [`EpochSample`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSample {
    pub mpki: f64,
    pub rbl: f64,
    pub blp: f64,
    /// Reads serviced for this thread during the epoch.
    pub reads: u64,
    pub avg_read_latency: f64,
}

/// The per-epoch time-series sample taken when a profiling epoch closes.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSample {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// CPU cycle at which the epoch closed.
    pub cycle: u64,
    /// Requests in flight across all controllers at the epoch boundary.
    pub queue_depth: u64,
    /// Row-hit rate over the epoch's DRAM accesses (0.0 if none).
    pub row_hit_rate: f64,
    /// Fraction of the epoch's DRAM cycles the data bus was busy.
    pub bus_utilisation: f64,
    /// One entry per hardware thread, index = thread id.
    pub threads: Vec<ThreadSample>,
}

/// Everything an enabled recorder captured, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    pub events: Vec<TraceEvent>,
    /// Events discarded because the ring buffer was full.
    pub dropped_events: u64,
    pub series: Vec<EpochSample>,
    /// The memory controller's end-of-run latency anatomy, if one was
    /// published via [`Recorder::set_latency`].
    pub latency: Option<LatencyReport>,
    /// The run's decision audit, if one was requested
    /// ([`RecorderConfig::audit`]) and published via
    /// [`Recorder::set_audit`].
    pub audit: Option<AuditReport>,
}

#[derive(Debug)]
struct Inner {
    cycle: Cell<u64>,
    events: RefCell<VecDeque<TraceEvent>>,
    dropped: Cell<u64>,
    series: RefCell<Vec<EpochSample>>,
    latency: RefCell<Option<LatencyReport>>,
    audit: RefCell<Option<AuditReport>>,
    audit_requested: bool,
    capacity: usize,
    stderr_echo: bool,
}

/// Handle into the telemetry subsystem. Clones share the same buffers.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<Inner>>,
}

impl Recorder {
    /// A recorder that drops everything; every method is a near-no-op.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder with the given configuration.
    pub fn new(cfg: RecorderConfig) -> Self {
        Recorder {
            inner: Some(Rc::new(Inner {
                cycle: Cell::new(0),
                events: RefCell::new(VecDeque::new()),
                dropped: Cell::new(0),
                series: RefCell::new(Vec::new()),
                latency: RefCell::new(None),
                audit: RefCell::new(None),
                audit_requested: cfg.audit,
                capacity: cfg.event_capacity.max(1),
                stderr_echo: cfg.stderr_echo,
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advance the recorder's notion of "now". Called once per simulated
    /// CPU cycle batch by the sim loop; emitters don't pass timestamps.
    #[inline]
    pub fn set_cycle(&self, cycle: u64) {
        if let Some(inner) = &self.inner {
            inner.cycle.set(cycle);
        }
    }

    /// Current cycle as last told via [`set_cycle`](Self::set_cycle).
    pub fn cycle(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.cycle.get())
    }

    /// Record an event at the current cycle.
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        let cycle = inner.cycle.get();
        if inner.stderr_echo && kind.is_epoch_level() {
            eprintln!("{}", kind.pretty(cycle));
        }
        let mut events = inner.events.borrow_mut();
        if events.len() == inner.capacity {
            events.pop_front();
            inner.dropped.set(inner.dropped.get() + 1);
        }
        events.push_back(TraceEvent { cycle, kind });
    }

    /// Record an epoch's time-series sample. The series is unbounded:
    /// epochs are rare (one per ~1M cycles) so growth is negligible.
    pub fn sample(&self, sample: EpochSample) {
        if let Some(inner) = &self.inner {
            inner.series.borrow_mut().push(sample);
        }
    }

    /// Publish the run's latency anatomy (replaces any earlier report).
    pub fn set_latency(&self, report: LatencyReport) {
        if let Some(inner) = &self.inner {
            *inner.latency.borrow_mut() = Some(report);
        }
    }

    /// Did construction ask for the decision audit layer? The simulator
    /// only builds its shadow rack when this is set.
    pub fn audit_requested(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.audit_requested)
    }

    /// Publish the run's decision audit (replaces any earlier report).
    pub fn set_audit(&self, report: AuditReport) {
        if let Some(inner) = &self.inner {
            *inner.audit.borrow_mut() = Some(report);
        }
    }

    /// Copy out everything captured so far. Empty for a disabled recorder.
    pub fn snapshot(&self) -> Telemetry {
        match &self.inner {
            None => Telemetry::default(),
            Some(inner) => Telemetry {
                events: inner.events.borrow().iter().cloned().collect(),
                dropped_events: inner.dropped.get(),
                series: inner.series.borrow().clone(),
                latency: inner.latency.borrow().clone(),
                audit: inner.audit.borrow().clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_captures_nothing() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.set_cycle(100);
        r.emit(EventKind::EpochStart { epoch: 0 });
        r.sample(EpochSample {
            epoch: 0,
            cycle: 100,
            queue_depth: 0,
            row_hit_rate: 0.0,
            bus_utilisation: 0.0,
            threads: vec![],
        });
        r.set_latency(LatencyReport::new(2, 4));
        let t = r.snapshot();
        assert!(t.events.is_empty());
        assert!(t.series.is_empty());
        assert_eq!(t.dropped_events, 0);
        assert_eq!(t.latency, None);
        assert_eq!(r.cycle(), 0);
    }

    #[test]
    fn latency_report_is_shared_between_clones() {
        let r = Recorder::new(RecorderConfig::default());
        assert_eq!(r.snapshot().latency, None);
        let mut report = LatencyReport::new(1, 2);
        report.record_read(0, 1, 50, [0, 0, 10, 0, 40]);
        r.clone().set_latency(report.clone());
        assert_eq!(r.snapshot().latency, Some(report));
    }

    #[test]
    fn audit_request_flag_and_report_round_trip() {
        let r = Recorder::new(RecorderConfig::default());
        assert!(!r.audit_requested(), "audit is opt-in");
        assert_eq!(r.snapshot().audit, None);
        let r = Recorder::new(RecorderConfig { audit: true, ..Default::default() });
        assert!(r.audit_requested());
        let report = AuditReport { threads: 2, max_units: 4, ..Default::default() };
        r.clone().set_audit(report.clone());
        assert_eq!(r.snapshot().audit, Some(report));
        assert!(!Recorder::disabled().audit_requested());
    }

    #[test]
    fn events_are_stamped_with_current_cycle() {
        let r = Recorder::new(RecorderConfig::default());
        assert!(r.is_enabled());
        r.set_cycle(42);
        r.emit(EventKind::EpochStart { epoch: 1 });
        r.set_cycle(99);
        r.emit(EventKind::MigrationFailed { thread: 2 });
        let t = r.snapshot();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].cycle, 42);
        assert_eq!(t.events[1].cycle, 99);
        assert_eq!(t.events[1].kind, EventKind::MigrationFailed { thread: 2 });
    }

    #[test]
    fn clones_share_buffers() {
        let r = Recorder::new(RecorderConfig::default());
        let r2 = r.clone();
        r.set_cycle(7);
        r2.emit(EventKind::EpochStart { epoch: 0 });
        let t = r.snapshot();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].cycle, 7);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let r = Recorder::new(RecorderConfig { event_capacity: 3, ..Default::default() });
        for e in 0..5u64 {
            r.set_cycle(e);
            r.emit(EventKind::EpochStart { epoch: e });
        }
        let t = r.snapshot();
        assert_eq!(t.dropped_events, 2);
        let epochs: Vec<u64> = t
            .events
            .iter()
            .map(|ev| match ev.kind {
                EventKind::EpochStart { epoch } => epoch,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(epochs, vec![2, 3, 4]);
    }

    #[test]
    fn series_accumulates_in_order() {
        let r = Recorder::new(RecorderConfig::default());
        for epoch in 0..3 {
            r.sample(EpochSample {
                epoch,
                cycle: epoch * 1000,
                queue_depth: epoch,
                row_hit_rate: 0.5,
                bus_utilisation: 0.25,
                threads: vec![ThreadSample {
                    mpki: 1.0,
                    rbl: 0.5,
                    blp: 2.0,
                    reads: 10,
                    avg_read_latency: 100.0,
                }],
            });
        }
        let t = r.snapshot();
        assert_eq!(t.series.len(), 3);
        assert_eq!(t.series[2].epoch, 2);
        assert_eq!(t.series[2].cycle, 2000);
        assert_eq!(t.series[0].threads.len(), 1);
    }
}
