//! Render simulator self-profiles (`--profile-out` exports).
//!
//! `dbpprof` reads `profile_document` JSON — produced by
//! `dbpsim --profile-out` and `bench_all --profile-out` — validates the
//! schema version and the exact-sum span invariant, and renders:
//!
//! * the work counters (requests enqueued, commands issued, idle polls);
//! * the span tree with count / total / self / max wall time;
//! * the hottest paths by self time.
//!
//! Modes:
//!
//! * `dbpprof [--md] [--top N] <file>...` — aligned tables (markdown
//!   with `--md`); no files reads stdin.
//! * `dbpprof --folded <file>` — flamegraph-ready folded stacks on
//!   stdout (`path;to;leaf self_ns`), pipe into `flamegraph.pl`.
//! * `dbpprof --chrome <out.json> <file>` — convert to a Chrome
//!   `trace_event` document (synthetic timeline, real durations) for
//!   `chrome://tracing` / Perfetto.

use std::io::Read as _;
use std::process::ExitCode;

use dbp_obs::export;
use dbp_obs::json::{self, Json};
use dbp_obs::prof::{counter_table, span_table, top_self_table, Profile};
use dbp_obs::table::{fmt_ns, Table};

enum Mode {
    Tables { md: bool, top: usize },
    Folded,
    Chrome { out: String },
}

fn push_table(out: &mut String, caption: &str, t: &Table, md: bool) {
    if md {
        out.push_str(&format!("\n**{caption}**\n\n"));
        out.push_str(&t.to_markdown());
    } else {
        out.push_str(&format!("\n{caption}:\n"));
        out.push_str(&t.render());
    }
}

fn summary_line(doc: &Json) -> String {
    let Some(Json::Obj(pairs)) = doc.get("summary") else { return String::new() };
    let mut parts = Vec::new();
    for (k, v) in pairs {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Num(n) => parts.push(format!("{k}={n}")),
            Json::Bool(b) => parts.push(format!("{k}={b}")),
            _ => {}
        }
    }
    if parts.is_empty() { String::new() } else { format!("summary: {}\n", parts.join("  ")) }
}

fn load(label: &str, text: &str) -> Result<(Json, Profile), String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    export::check_schema_version(&doc).map_err(|e| format!("{label}: {e}"))?;
    let profile = Profile::from_json(&doc).map_err(|e| format!("{label}: {e}"))?;
    Ok((doc, profile))
}

fn render_tables(label: &str, doc: &Json, p: &Profile, md: bool, top: usize) {
    println!("== {label} ==");
    let mut out = summary_line(doc);
    out.push_str(&format!("profiled wall time: {}\n", fmt_ns(u128::from(p.total_ns()))));
    if !p.counters.is_empty() {
        push_table(&mut out, "work counters", &counter_table(p), md);
    }
    push_table(&mut out, "span tree (wall clock, exact-sum)", &span_table(p), md);
    push_table(&mut out, &format!("top {top} by self time"), &top_self_table(p, top), md);
    println!("{out}");
}

fn run(mode: &Mode, files: &[String]) -> Result<(), String> {
    let mut inputs: Vec<(String, String)> = Vec::new();
    if files.is_empty() {
        let mut text = String::new();
        std::io::stdin().read_to_string(&mut text).map_err(|e| format!("<stdin>: {e}"))?;
        inputs.push(("<stdin>".to_string(), text));
    }
    for f in files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        inputs.push((f.clone(), text));
    }
    match mode {
        Mode::Tables { md, top } => {
            for (label, text) in &inputs {
                let (doc, p) = load(label, text)?;
                render_tables(label, &doc, &p, *md, *top);
            }
        }
        Mode::Folded => {
            for (label, text) in &inputs {
                let (_, p) = load(label, text)?;
                print!("{}", p.folded());
            }
        }
        Mode::Chrome { out } => {
            if inputs.len() != 1 {
                return Err("--chrome takes exactly one input profile".to_string());
            }
            let (label, text) = &inputs[0];
            let (_, p) = load(label, text)?;
            let trace = export::profile_chrome_trace(&p);
            std::fs::write(out, trace.to_json()).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("dbpprof: wrote Chrome trace to {out}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut md = false;
    let mut top = 10usize;
    let mut folded = false;
    let mut chrome: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--md" => md = true,
            "--folded" => folded = true,
            "--chrome" => match args.next() {
                Some(path) => chrome = Some(path),
                None => {
                    eprintln!("dbpprof: --chrome needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => {
                    eprintln!("dbpprof: --top needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("usage: dbpprof [--md] [--top N] [<file>...]   (no files: read stdin)");
                println!("       dbpprof --folded [<file>...]   flamegraph folded stacks");
                println!("       dbpprof --chrome <out.json> <file>   Chrome trace_event export");
                println!("renders dbpsim/bench_all --profile-out self-profiles");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a),
        }
    }
    let mode = match (folded, chrome) {
        (true, Some(_)) => {
            eprintln!("dbpprof: --folded and --chrome are mutually exclusive");
            return ExitCode::FAILURE;
        }
        (true, None) => Mode::Folded,
        (false, Some(out)) => Mode::Chrome { out },
        (false, None) => Mode::Tables { md, top },
    };
    match run(&mode, &files) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbpprof: {e}");
            ExitCode::FAILURE
        }
    }
}
