//! Render simulator self-profiles (`--profile-out` exports).
//!
//! `dbpprof` reads `profile_document` JSON — produced by
//! `dbpsim --profile-out` and `bench_all --profile-out` — validates the
//! schema version and the exact-sum span invariant, and renders:
//!
//! * the work counters (requests enqueued, commands issued, idle polls);
//! * the span tree with count / total / self / max wall time;
//! * the hottest paths by self time.
//!
//! Modes:
//!
//! * `dbpprof [--md] [--top N] <file>...` — aligned tables (markdown
//!   with `--md`); no files reads stdin.
//! * `dbpprof --folded <file>` — flamegraph-ready folded stacks on
//!   stdout (`path;to;leaf self_ns`), pipe into `flamegraph.pl`.
//! * `dbpprof --chrome <out.json> <file>` — convert to a Chrome
//!   `trace_event` document (synthetic timeline, real durations) for
//!   `chrome://tracing` / Perfetto.

use std::process::ExitCode;

use dbp_obs::cli::{read_inputs, Arg, CliSpec};
use dbp_obs::export;
use dbp_obs::json::{self, Json};
use dbp_obs::prof::{counter_table, span_table, top_self_table, Profile};
use dbp_obs::table::{fmt_ns, push_table, summary_line};

const SPEC: CliSpec = CliSpec {
    bin: "dbpprof",
    about: "render dbpsim/bench_all --profile-out self-profiles",
    positional: "[file ...]  profile documents to render (default: stdin)",
    args: &[
        Arg::flag("--md", "emit markdown tables instead of aligned plain text"),
        Arg::opt("--top", "n", "rows in the top-by-self-time table (default 10)"),
        Arg::flag("--folded", "emit flamegraph folded stacks instead of tables"),
        Arg::opt("--chrome", "out.json", "convert one profile to a Chrome trace_event file"),
    ],
};

enum Mode {
    Tables { md: bool, top: usize },
    Folded,
    Chrome { out: String },
}

fn load(label: &str, text: &str) -> Result<(Json, Profile), String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    export::check_schema_version(&doc).map_err(|e| format!("{label}: {e}"))?;
    let profile = Profile::from_json(&doc).map_err(|e| format!("{label}: {e}"))?;
    Ok((doc, profile))
}

fn render_tables(label: &str, doc: &Json, p: &Profile, md: bool, top: usize) {
    println!("== {label} ==");
    let mut out = summary_line(doc);
    out.push_str(&format!("profiled wall time: {}\n", fmt_ns(u128::from(p.total_ns()))));
    if !p.counters.is_empty() {
        push_table(&mut out, "work counters", &counter_table(p), md);
    }
    push_table(&mut out, "span tree (wall clock, exact-sum)", &span_table(p), md);
    push_table(&mut out, &format!("top {top} by self time"), &top_self_table(p, top), md);
    println!("{out}");
}

fn run(mode: &Mode, files: &[String]) -> Result<(), String> {
    let mut inputs: Vec<(String, String)> = Vec::new();
    for (label, input) in read_inputs(files) {
        // Unlike the linting bins, every input here feeds one coherent
        // rendering pass, so the first unreadable input aborts the run.
        inputs.push((label, input?));
    }
    match mode {
        Mode::Tables { md, top } => {
            for (label, text) in &inputs {
                let (doc, p) = load(label, text)?;
                render_tables(label, &doc, &p, *md, *top);
            }
        }
        Mode::Folded => {
            for (label, text) in &inputs {
                let (_, p) = load(label, text)?;
                print!("{}", p.folded());
            }
        }
        Mode::Chrome { out } => {
            if inputs.len() != 1 {
                return Err("--chrome takes exactly one input profile".to_string());
            }
            let (label, text) = &inputs[0];
            let (_, p) = load(label, text)?;
            let trace = export::profile_chrome_trace(&p);
            std::fs::write(out, trace.to_json()).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("dbpprof: wrote Chrome trace to {out}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let parsed = SPEC.parse_or_exit();
    let top = match parsed.option("--top") {
        None => 10usize,
        Some(v) => match v.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("dbpprof: --top needs a number, got `{v}`");
                return ExitCode::FAILURE;
            }
        },
    };
    let mode = match (parsed.flag("--folded"), parsed.option("--chrome")) {
        (true, Some(_)) => {
            eprintln!("dbpprof: --folded and --chrome are mutually exclusive");
            return ExitCode::FAILURE;
        }
        (true, None) => Mode::Folded,
        (false, Some(out)) => Mode::Chrome { out: out.to_string() },
        (false, None) => Mode::Tables { md: parsed.flag("--md"), top },
    };
    match run(&mode, &parsed.files) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbpprof: {e}");
            ExitCode::FAILURE
        }
    }
}
