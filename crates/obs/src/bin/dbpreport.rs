//! Render the simulator's JSON exports as human-readable tables.
//!
//! `dbpreport` recognises every document the workspace produces —
//! latency-anatomy exports (`dbpsim --latency-out`), metrics documents
//! (`--metrics-out`), suite-timing documents (`bench_all --json`), and
//! Chrome traces (`--trace-out`) — by their top-level keys, and renders
//! aligned ANSI tables (or markdown with `--md`): latency percentiles,
//! component breakdowns, interference heatmaps, and epoch time-series
//! with sparklines.
//!
//! Usage: `dbpreport [--md] <file>...` (no files: read stdin).

use std::process::ExitCode;

use dbp_obs::cli::{read_inputs, Arg, CliSpec};
use dbp_obs::export;
use dbp_obs::json::{self, Json};
use dbp_obs::latency::{
    bank_latency_table, breakdown_table, interference_table, read_latency_table,
    write_latency_table, LatencyReport,
};
use dbp_obs::table::{push_table, sparkline, summary_line, Table};

const SPEC: CliSpec = CliSpec {
    bin: "dbpreport",
    about: "render dbpsim/bench_all JSON exports as aligned tables",
    positional: "[file ...]  JSON exports to render (default: stdin)",
    args: &[Arg::flag("--md", "emit markdown tables instead of aligned plain text")],
};

fn render_latency(doc: &Json, md: bool) -> Result<String, String> {
    let report = LatencyReport::from_json(doc)?;
    let mut out = summary_line(doc);
    out.push_str(&format!("demand reads profiled: {}\n", report.total_reads()));
    push_table(&mut out, "read latency (DRAM cycles)", &read_latency_table(&report), md);
    push_table(&mut out, "read latency breakdown (% of total)", &breakdown_table(&report), md);
    push_table(&mut out, "writeback latency (DRAM cycles)", &write_latency_table(&report), md);
    push_table(
        &mut out,
        "bank interference (cycles core i blocked on a bank held by core j)",
        &interference_table(&report.bank_interference),
        md,
    );
    push_table(
        &mut out,
        "bus interference (cycles core i blocked on the bus held by core j)",
        &interference_table(&report.bus_interference),
        md,
    );
    push_table(&mut out, "per-bank read latency", &bank_latency_table(&report), md);
    Ok(out)
}

fn render_metrics(doc: &Json, md: bool) -> Result<String, String> {
    let epochs = doc.get("epochs").and_then(Json::as_arr).ok_or("missing epochs array")?;
    let mut out = summary_line(doc);
    let num = |e: &Json, k: &str| e.get(k).and_then(Json::as_num).unwrap_or(0.0);
    let mut t = Table::new(["epoch", "cycle", "queue", "row hit", "bus util"]);
    for e in epochs {
        t.row([
            format!("{}", num(e, "epoch")),
            format!("{}", num(e, "cycle")),
            format!("{}", num(e, "queue_depth")),
            format!("{:.3}", num(e, "row_hit_rate")),
            format!("{:.3}", num(e, "bus_utilisation")),
        ]);
    }
    push_table(&mut out, "epoch time-series", &t, md);
    for (key, label) in
        [("row_hit_rate", "row hit"), ("bus_utilisation", "bus util"), ("queue_depth", "queue")]
    {
        let series: Vec<f64> = epochs.iter().map(|e| num(e, key)).collect();
        out.push_str(&format!("{label:>8}  {}\n", sparkline(&series)));
    }
    let events = doc.get("events").and_then(Json::as_arr).map_or(0, <[Json]>::len);
    out.push_str(&format!("events captured: {events}\n"));
    Ok(out)
}

fn render_suite(doc: &Json, md: bool) -> Result<String, String> {
    let exps = doc.get("experiments").and_then(Json::as_arr).ok_or("missing experiments array")?;
    let mut out = String::new();
    let workers = doc.get("workers").and_then(Json::as_num).unwrap_or(0.0);
    let total = doc.get("total_wall_ns").and_then(Json::as_num).unwrap_or(0.0);
    out.push_str(&format!("workers: {workers}  total wall: {:.2}s\n", total / 1e9));
    let mut t = Table::new(["experiment", "wall (s)", "jobs", "cache hits"]);
    for e in exps {
        t.row([
            e.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
            format!("{:.2}", e.get("wall_ns").and_then(Json::as_num).unwrap_or(0.0) / 1e9),
            format!("{}", e.get("jobs").and_then(Json::as_num).unwrap_or(0.0)),
            format!("{}", e.get("solo_cache_hits").and_then(Json::as_num).unwrap_or(0.0)),
        ]);
    }
    push_table(&mut out, "experiments", &t, md);
    if let Some(Json::Obj(ann)) = doc.get("annotations") {
        if !ann.is_empty() {
            out.push_str("\nannotations:\n");
            for (k, v) in ann {
                out.push_str(&format!("  {k}: {}\n", v.to_json()));
            }
        }
    }
    Ok(out)
}

/// Self-profile documents get a summary here; `dbpprof` is the full
/// renderer (folded stacks, Chrome export, top-N).
fn render_profile(doc: &Json, md: bool) -> Result<String, String> {
    let profile = dbp_obs::prof::Profile::from_json(doc)?;
    let mut out = summary_line(doc);
    out.push_str(&format!(
        "self-profile: {} wall, {} counters (full rendering: dbpprof)\n",
        dbp_obs::table::fmt_ns(u128::from(profile.total_ns())),
        profile.counters.len()
    ));
    push_table(
        &mut out,
        "span tree (wall clock, exact-sum)",
        &dbp_obs::prof::span_table(&profile),
        md,
    );
    Ok(out)
}

fn render_trace(doc: &Json, _md: bool) -> Result<String, String> {
    let events = doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents")?;
    let (mut instants, mut counters, mut meta) = (0u64, 0u64, 0u64);
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("i") => instants += 1,
            Some("C") => counters += 1,
            Some("M") => meta += 1,
            _ => {}
        }
    }
    Ok(format!(
        "chrome trace: {} rows ({instants} instants, {counters} counter samples, {meta} metadata)\n",
        events.len()
    ))
}

/// Decision-audit documents get a one-paragraph summary here; `dbpaudit`
/// is the full renderer (policy/prediction/calibration tables).
fn render_audit(doc: &Json, md: bool) -> Result<String, String> {
    let report = dbp_obs::AuditReport::from_json(doc)?;
    let mut out = summary_line(doc);
    out.push_str(&format!(
        "decision audit: {} decision(s), {} shadow polic{} (full rendering: dbpaudit)\n",
        report.convergence.decisions,
        report.shadows.len(),
        if report.shadows.len() == 1 { "y" } else { "ies" }
    ));
    push_table(&mut out, "policy comparison", &dbp_obs::audit::policy_table(&report), md);
    Ok(out)
}

/// Route a parsed document to its renderer by its top-level keys.
fn render_doc(doc: &Json, md: bool) -> Result<String, String> {
    export::check_schema_version(doc)?;
    if doc.get("interference").is_some() {
        render_latency(doc, md)
    } else if doc.get("shadows").is_some() {
        render_audit(doc, md)
    } else if doc.get("epochs").is_some() {
        render_metrics(doc, md)
    } else if doc.get("experiments").is_some() {
        render_suite(doc, md)
    } else if doc.get("traceEvents").is_some() {
        render_trace(doc, md)
    } else if doc.get("spans").is_some() {
        render_profile(doc, md)
    } else {
        Err("unrecognised document (expected a latency, audit, metrics, suite-timing, trace, or profile export)"
            .to_string())
    }
}

fn process(label: &str, text: &str, md: bool) -> bool {
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dbpreport: {label}: {e}");
            return false;
        }
    };
    match render_doc(&doc, md) {
        Ok(body) => {
            println!("== {label} ==");
            println!("{body}");
            true
        }
        Err(e) => {
            eprintln!("dbpreport: {label}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let parsed = SPEC.parse_or_exit();
    let md = parsed.flag("--md");
    let mut ok = true;
    for (label, input) in read_inputs(&parsed.files) {
        match input {
            Ok(text) => ok &= process(&label, &text, md),
            Err(e) => {
                eprintln!("dbpreport: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
