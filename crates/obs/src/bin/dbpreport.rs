//! Render the simulator's JSON exports as human-readable tables.
//!
//! `dbpreport` recognises every document the workspace produces —
//! latency-anatomy exports (`dbpsim --latency-out`), metrics documents
//! (`--metrics-out`), suite-timing documents (`bench_all --json`), and
//! Chrome traces (`--trace-out`) — by their top-level keys, and renders
//! aligned ANSI tables (or markdown with `--md`): latency percentiles,
//! component breakdowns, interference heatmaps, and epoch time-series
//! with sparklines.
//!
//! Usage: `dbpreport [--md] <file>...` (no files: read stdin).

use std::io::Read as _;
use std::process::ExitCode;

use dbp_obs::export;
use dbp_obs::json::{self, Json};
use dbp_obs::latency::{
    bank_latency_table, breakdown_table, interference_table, read_latency_table,
    write_latency_table, LatencyReport,
};
use dbp_obs::table::{sparkline, Table};

/// Emit one table in the selected format, with a caption.
fn push_table(out: &mut String, caption: &str, t: &Table, md: bool) {
    if md {
        out.push_str(&format!("\n**{caption}**\n\n"));
        out.push_str(&t.to_markdown());
    } else {
        out.push_str(&format!("\n{caption}:\n"));
        out.push_str(&t.render());
    }
}

/// One line of run context pulled from a document's `summary`, if any.
fn summary_line(doc: &Json) -> String {
    let Some(Json::Obj(pairs)) = doc.get("summary") else { return String::new() };
    let mut parts = Vec::new();
    for (k, v) in pairs {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Num(n) => parts.push(format!("{k}={n}")),
            _ => {}
        }
    }
    if parts.is_empty() { String::new() } else { format!("summary: {}\n", parts.join("  ")) }
}

fn render_latency(doc: &Json, md: bool) -> Result<String, String> {
    let report = LatencyReport::from_json(doc)?;
    let mut out = summary_line(doc);
    out.push_str(&format!("demand reads profiled: {}\n", report.total_reads()));
    push_table(&mut out, "read latency (DRAM cycles)", &read_latency_table(&report), md);
    push_table(&mut out, "read latency breakdown (% of total)", &breakdown_table(&report), md);
    push_table(&mut out, "writeback latency (DRAM cycles)", &write_latency_table(&report), md);
    push_table(
        &mut out,
        "bank interference (cycles core i blocked on a bank held by core j)",
        &interference_table(&report.bank_interference),
        md,
    );
    push_table(
        &mut out,
        "bus interference (cycles core i blocked on the bus held by core j)",
        &interference_table(&report.bus_interference),
        md,
    );
    push_table(&mut out, "per-bank read latency", &bank_latency_table(&report), md);
    Ok(out)
}

fn render_metrics(doc: &Json, md: bool) -> Result<String, String> {
    let epochs = doc.get("epochs").and_then(Json::as_arr).ok_or("missing epochs array")?;
    let mut out = summary_line(doc);
    let num = |e: &Json, k: &str| e.get(k).and_then(Json::as_num).unwrap_or(0.0);
    let mut t = Table::new(["epoch", "cycle", "queue", "row hit", "bus util"]);
    for e in epochs {
        t.row([
            format!("{}", num(e, "epoch")),
            format!("{}", num(e, "cycle")),
            format!("{}", num(e, "queue_depth")),
            format!("{:.3}", num(e, "row_hit_rate")),
            format!("{:.3}", num(e, "bus_utilisation")),
        ]);
    }
    push_table(&mut out, "epoch time-series", &t, md);
    for (key, label) in
        [("row_hit_rate", "row hit"), ("bus_utilisation", "bus util"), ("queue_depth", "queue")]
    {
        let series: Vec<f64> = epochs.iter().map(|e| num(e, key)).collect();
        out.push_str(&format!("{label:>8}  {}\n", sparkline(&series)));
    }
    let events = doc.get("events").and_then(Json::as_arr).map_or(0, <[Json]>::len);
    out.push_str(&format!("events captured: {events}\n"));
    Ok(out)
}

fn render_suite(doc: &Json, md: bool) -> Result<String, String> {
    let exps = doc.get("experiments").and_then(Json::as_arr).ok_or("missing experiments array")?;
    let mut out = String::new();
    let workers = doc.get("workers").and_then(Json::as_num).unwrap_or(0.0);
    let total = doc.get("total_wall_ns").and_then(Json::as_num).unwrap_or(0.0);
    out.push_str(&format!("workers: {workers}  total wall: {:.2}s\n", total / 1e9));
    let mut t = Table::new(["experiment", "wall (s)", "jobs", "cache hits"]);
    for e in exps {
        t.row([
            e.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
            format!("{:.2}", e.get("wall_ns").and_then(Json::as_num).unwrap_or(0.0) / 1e9),
            format!("{}", e.get("jobs").and_then(Json::as_num).unwrap_or(0.0)),
            format!("{}", e.get("solo_cache_hits").and_then(Json::as_num).unwrap_or(0.0)),
        ]);
    }
    push_table(&mut out, "experiments", &t, md);
    if let Some(Json::Obj(ann)) = doc.get("annotations") {
        if !ann.is_empty() {
            out.push_str("\nannotations:\n");
            for (k, v) in ann {
                out.push_str(&format!("  {k}: {}\n", v.to_json()));
            }
        }
    }
    Ok(out)
}

/// Self-profile documents get a summary here; `dbpprof` is the full
/// renderer (folded stacks, Chrome export, top-N).
fn render_profile(doc: &Json, md: bool) -> Result<String, String> {
    let profile = dbp_obs::prof::Profile::from_json(doc)?;
    let mut out = summary_line(doc);
    out.push_str(&format!(
        "self-profile: {} wall, {} counters (full rendering: dbpprof)\n",
        dbp_obs::table::fmt_ns(u128::from(profile.total_ns())),
        profile.counters.len()
    ));
    push_table(&mut out, "span tree (wall clock, exact-sum)", &dbp_obs::prof::span_table(&profile), md);
    Ok(out)
}

fn render_trace(doc: &Json, _md: bool) -> Result<String, String> {
    let events = doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents")?;
    let (mut instants, mut counters, mut meta) = (0u64, 0u64, 0u64);
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("i") => instants += 1,
            Some("C") => counters += 1,
            Some("M") => meta += 1,
            _ => {}
        }
    }
    Ok(format!(
        "chrome trace: {} rows ({instants} instants, {counters} counter samples, {meta} metadata)\n",
        events.len()
    ))
}

/// Route a parsed document to its renderer by its top-level keys.
fn render_doc(doc: &Json, md: bool) -> Result<String, String> {
    export::check_schema_version(doc)?;
    if doc.get("interference").is_some() {
        render_latency(doc, md)
    } else if doc.get("epochs").is_some() {
        render_metrics(doc, md)
    } else if doc.get("experiments").is_some() {
        render_suite(doc, md)
    } else if doc.get("traceEvents").is_some() {
        render_trace(doc, md)
    } else if doc.get("spans").is_some() {
        render_profile(doc, md)
    } else {
        Err("unrecognised document (expected a latency, metrics, suite-timing, trace, or profile export)"
            .to_string())
    }
}

fn process(label: &str, text: &str, md: bool) -> bool {
    let doc = match json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dbpreport: {label}: {e}");
            return false;
        }
    };
    match render_doc(&doc, md) {
        Ok(body) => {
            println!("== {label} ==");
            println!("{body}");
            true
        }
        Err(e) => {
            eprintln!("dbpreport: {label}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let mut md = false;
    let mut files: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--md" => md = true,
            "-h" | "--help" => {
                println!("usage: dbpreport [--md] [<file>...]  (no files: read stdin)");
                println!("renders dbpsim/bench_all JSON exports as aligned tables");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a),
        }
    }
    let mut ok = true;
    if files.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("dbpreport: <stdin>: {e}");
            return ExitCode::FAILURE;
        }
        ok = process("<stdin>", &text, md);
    }
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(text) => ok &= process(file, &text, md),
            Err(e) => {
                eprintln!("dbpreport: {file}: {e}");
                ok = false;
            }
        }
    }
    if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
