//! Strict JSON validator over the in-tree parser, used by `ci.sh` to
//! check exported trace/metrics files without any external tooling.
//!
//! Usage: `jsonlint <file>...` — exits 0 if every file parses, 1
//! otherwise. `--require-key K` additionally demands a top-level object
//! key `K` in every file (e.g. `traceEvents` for Chrome traces).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut required_keys: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--require-key" => match args.next() {
                Some(k) => required_keys.push(k),
                None => {
                    eprintln!("jsonlint: --require-key needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("usage: jsonlint [--require-key K]... <file>...");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        eprintln!("usage: jsonlint [--require-key K]... <file>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("jsonlint: {file}: {e}");
                ok = false;
                continue;
            }
        };
        match dbp_obs::json::parse(&text) {
            Ok(doc) => {
                let mut missing = false;
                for k in &required_keys {
                    if doc.get(k).is_none() {
                        eprintln!("jsonlint: {file}: missing required key {k:?}");
                        missing = true;
                    }
                }
                if missing {
                    ok = false;
                } else {
                    println!("jsonlint: {file}: ok ({} bytes)", text.len());
                }
            }
            Err(e) => {
                eprintln!("jsonlint: {file}: {e}");
                ok = false;
            }
        }
    }
    if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
