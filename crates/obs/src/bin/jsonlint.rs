//! Strict JSON validator over the in-tree parser, used by `ci.sh` to
//! check exported trace/metrics files without any external tooling.
//!
//! Usage: `jsonlint [--require-key K]... <file>...` — exits 0 if every
//! file parses, 1 otherwise. With no file arguments the document is
//! read from stdin, so CI can pipe exports without temp files.
//! `--require-key K` additionally demands a top-level object key `K` in
//! every document (e.g. `traceEvents` for Chrome traces).

use std::process::ExitCode;

use dbp_obs::cli::{read_inputs, Arg, CliSpec};

const SPEC: CliSpec = CliSpec {
    bin: "jsonlint",
    about: "validate JSON documents against the in-tree RFC 8259 parser",
    positional: "[file ...]  documents to validate (default: stdin)",
    args: &[Arg::opt("--require-key", "key", "demand a top-level object key (repeatable)")],
};

/// Validate one document; returns whether it passed.
fn lint(label: &str, text: &str, required_keys: &[&str]) -> bool {
    match dbp_obs::json::parse(text) {
        Ok(doc) => {
            let mut missing = false;
            for k in required_keys {
                if doc.get(k).is_none() {
                    eprintln!("jsonlint: {label}: missing required key {k:?}");
                    missing = true;
                }
            }
            if !missing {
                println!("jsonlint: {label}: ok ({} bytes)", text.len());
            }
            !missing
        }
        Err(e) => {
            eprintln!("jsonlint: {label}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let parsed = SPEC.parse_or_exit();
    let required_keys = parsed.options("--require-key");
    let mut ok = true;
    for (label, input) in read_inputs(&parsed.files) {
        match input {
            Ok(text) => ok &= lint(&label, &text, &required_keys),
            Err(e) => {
                eprintln!("jsonlint: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
