//! Strict JSON validator over the in-tree parser, used by `ci.sh` to
//! check exported trace/metrics files without any external tooling.
//!
//! Usage: `jsonlint <file>...` — exits 0 if every file parses, 1
//! otherwise. With no file arguments the document is read from stdin,
//! so CI can pipe exports without temp files. `--require-key K`
//! additionally demands a top-level object key `K` in every document
//! (e.g. `traceEvents` for Chrome traces).

use std::io::Read as _;
use std::process::ExitCode;

/// Validate one document; returns whether it passed.
fn lint(label: &str, text: &str, required_keys: &[String]) -> bool {
    match dbp_obs::json::parse(text) {
        Ok(doc) => {
            let mut missing = false;
            for k in required_keys {
                if doc.get(k).is_none() {
                    eprintln!("jsonlint: {label}: missing required key {k:?}");
                    missing = true;
                }
            }
            if !missing {
                println!("jsonlint: {label}: ok ({} bytes)", text.len());
            }
            !missing
        }
        Err(e) => {
            eprintln!("jsonlint: {label}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let mut required_keys: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--require-key" => match args.next() {
                Some(k) => required_keys.push(k),
                None => {
                    eprintln!("jsonlint: --require-key needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("usage: jsonlint [--require-key K]... [<file>...]  (no files: read stdin)");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("jsonlint: <stdin>: {e}");
            return ExitCode::FAILURE;
        }
        return if lint("<stdin>", &text, &required_keys) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let mut ok = true;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("jsonlint: {file}: {e}");
                ok = false;
                continue;
            }
        };
        ok &= lint(file, &text, &required_keys);
    }
    if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
