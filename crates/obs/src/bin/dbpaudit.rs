//! Render decision-audit exports (`dbpsim --audit-out`).
//!
//! `dbpaudit` reads `audit_document` JSON, validates the schema version,
//! and renders the full decision audit:
//!
//! * the live-vs-shadow policy comparison (churn, flaps, allocation
//!   distance, hypothetical migration pressure);
//! * per-thread demand-prediction accuracy and the calibration table
//!   (predicted-demand bucket × achieved BLP);
//! * convergence telemetry (epochs-to-stable, flap rate, phase shifts);
//! * the per-decision time series with error/distance sparklines.
//!
//! Usage: `dbpaudit [--md] [--json] <file>...` — no files reads stdin.
//! `--json` re-emits the parsed report as canonical JSON instead of
//! tables (a cheap normalizer / validity filter for scripted consumers).

use std::process::ExitCode;

use dbp_obs::audit::{
    calibration_table, convergence_summary, phase_shift_table, policy_table, prediction_table,
};
use dbp_obs::cli::{read_inputs, Arg, CliSpec};
use dbp_obs::table::{push_table, sparkline, summary_line};
use dbp_obs::{export, json, AuditReport};

const SPEC: CliSpec = CliSpec {
    bin: "dbpaudit",
    about: "render dbpsim --audit-out decision audits",
    positional: "[file ...]  audit documents to render (default: stdin)",
    args: &[
        Arg::flag("--md", "emit markdown tables instead of aligned plain text"),
        Arg::flag("--json", "re-emit the parsed report as canonical JSON"),
    ],
};

fn render(label: &str, text: &str, md: bool, as_json: bool) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: {e}"))?;
    export::check_schema_version(&doc).map_err(|e| format!("{label}: {e}"))?;
    let report = AuditReport::from_json(&doc).map_err(|e| format!("{label}: {e}"))?;
    if as_json {
        println!("{}", report.to_json().to_json());
        return Ok(());
    }
    println!("== {label} ==");
    let mut out = summary_line(&doc);
    out.push_str(&format!(
        "decision audit: {} thread(s), {} bank unit(s), {} decision(s)\n",
        report.threads, report.max_units, report.convergence.decisions
    ));
    push_table(&mut out, "policy comparison (live vs shadows)", &policy_table(&report), md);
    push_table(&mut out, "demand-prediction accuracy (bank units)", &prediction_table(&report), md);
    push_table(
        &mut out,
        "calibration (predicted-demand bucket x achieved BLP)",
        &calibration_table(&report),
        md,
    );
    out.push('\n');
    out.push_str(&convergence_summary(&report));
    if !report.convergence.phase_shifts.is_empty() {
        push_table(&mut out, "profile phase shifts", &phase_shift_table(&report), md);
    }
    if report.epochs.len() > 1 {
        let errs: Vec<f64> = report.epochs.iter().filter_map(|e| e.mean_abs_pred_error).collect();
        if !errs.is_empty() {
            out.push_str(&format!("\n{:>18}  {}\n", "mean |pred err|", sparkline(&errs)));
        }
        for (s, shadow) in report.shadows.iter().enumerate() {
            let dist: Vec<f64> = report
                .epochs
                .iter()
                .filter_map(|e| e.shadow_distance.get(s).map(|&d| d as f64))
                .collect();
            out.push_str(&format!(
                "{:>18}  {}\n",
                format!("dist {}", shadow.name),
                sparkline(&dist)
            ));
        }
    }
    println!("{out}");
    Ok(())
}

fn main() -> ExitCode {
    let parsed = SPEC.parse_or_exit();
    let (md, as_json) = (parsed.flag("--md"), parsed.flag("--json"));
    let mut ok = true;
    for (label, input) in read_inputs(&parsed.files) {
        let result = input.and_then(|text| render(&label, &text, md, as_json));
        if let Err(e) = result {
            eprintln!("dbpaudit: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
