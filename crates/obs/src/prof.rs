//! Host-side self-profiling: wall-clock span trees and work counters.
//!
//! The simulator can explain every *simulated* cycle (the latency
//! anatomy), but ROADMAP item 1 — the event-driven core — needs to know
//! where the *host's* nanoseconds go and how much of the tick loop is
//! wasted polling. This module provides both instruments with the same
//! discipline the anatomy uses:
//!
//! * **Spans** — hierarchical wall-clock regions over a monotonic clock
//!   ([`std::time::Instant`]). Each thread keeps its own span stack and
//!   aggregates per *path* (parent chain + name) into
//!   count / total_ns / self_ns / max_ns. The exact-sum invariant holds
//!   by construction and is re-asserted on every snapshot and parse:
//!   for every node, `self_ns + Σ children.total_ns == total_ns`
//!   (`u64` equality, checked with `assert!` in all build profiles).
//! * **Counters** — named monotonic `u64`s (requests enqueued, commands
//!   issued, ticks polled-but-idle) shared across threads via relaxed
//!   atomics. Pre-resolve a [`Counter`] handle once; each `add` is one
//!   branch plus one relaxed fetch-add.
//!
//! The handle follows the [`crate::recorder::Recorder`] shape: [`Prof`]
//! is cheap to clone and a *disabled* handle reduces every call to a
//! single `Option` check, so instrumentation can stay in the hot path
//! permanently. Unlike `Recorder` it is `Send + Sync` (`Arc` inside):
//! the bench `Engine` profiles jobs running on pool worker threads.
//!
//! Threading model: span data lives in thread-local trees and is folded
//! into the shared profile by [`Prof::flush_thread`]. Worker threads
//! must flush explicitly before they finish (the bench engine does this
//! at the end of every job); thread-local destructors also flush as a
//! backstop, but scoped-thread teardown order makes that a best-effort
//! path, not the contract. [`Prof::snapshot`] flushes the calling
//! thread, so single-threaded users never think about it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use crate::json::Json;
use crate::table::{fmt_ns, Table};

/// Sentinel parent index for root spans inside a [`SpanTree`].
const ROOT: usize = usize::MAX;

/// One aggregated node of a thread-local span tree.
#[derive(Debug)]
struct NodeAgg {
    name: &'static str,
    parent: usize,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_ns: u64,
}

/// An open span on the thread's stack.
#[derive(Debug)]
struct Frame {
    node: usize,
    start: Instant,
    /// Total nanoseconds of already-closed direct children.
    child_ns: u64,
}

/// Per-thread span aggregation: a flat arena of path-keyed nodes plus
/// the stack of currently open spans.
#[derive(Debug, Default)]
struct SpanTree {
    nodes: Vec<NodeAgg>,
    index: HashMap<(usize, &'static str), usize>,
    stack: Vec<Frame>,
}

impl SpanTree {
    fn open(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().map_or(ROOT, |f| f.node);
        let node = match self.index.get(&(parent, name)) {
            Some(&i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(NodeAgg {
                    name,
                    parent,
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                    max_ns: 0,
                });
                self.index.insert((parent, name), i);
                i
            }
        };
        // Start the clock last so arena bookkeeping is charged to the
        // parent's self time, not to this span.
        self.stack.push(Frame { node, start: Instant::now(), child_ns: 0 });
        node
    }

    fn close(&mut self, node: usize) {
        let end = Instant::now();
        let frame = self.stack.pop().expect("span guard dropped with an empty stack");
        assert!(frame.node == node, "span guards must drop in LIFO order");
        let elapsed = u64::try_from(end.duration_since(frame.start).as_nanos()).unwrap_or(u64::MAX);
        // Children ran strictly inside [start, end] of this span on this
        // thread, so their elapsed sum cannot exceed ours: self time is
        // exact by construction.
        let self_ns = elapsed
            .checked_sub(frame.child_ns)
            .expect("monotonic clock: children cannot outlast their parent span");
        let n = &mut self.nodes[node];
        n.count += 1;
        n.total_ns += elapsed;
        n.self_ns += self_ns;
        n.max_ns = n.max_ns.max(elapsed);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    }

    /// Drain the aggregated tree into a nested [`Profile`] (children
    /// sorted by name for deterministic output), leaving it empty.
    fn take_profile(&mut self) -> Profile {
        assert!(self.stack.is_empty(), "cannot flush a span tree with an open span");
        let mut kids: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.parent == ROOT {
                roots.push(i);
            } else {
                kids[n.parent].push(i);
            }
        }
        fn build(nodes: &[NodeAgg], kids: &[Vec<usize>], i: usize) -> ProfSpan {
            let mut children: Vec<ProfSpan> =
                kids[i].iter().map(|&c| build(nodes, kids, c)).collect();
            children.sort_by(|a, b| a.name.cmp(&b.name));
            let n = &nodes[i];
            ProfSpan {
                name: n.name.to_string(),
                count: n.count,
                total_ns: n.total_ns,
                self_ns: n.self_ns,
                max_ns: n.max_ns,
                children,
            }
        }
        let mut spans: Vec<ProfSpan> =
            roots.iter().map(|&r| build(&self.nodes, &kids, r)).collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        self.nodes.clear();
        self.index.clear();
        Profile { spans, counters: Vec::new() }
    }
}

/// The trees this thread holds, one per live profiler it has recorded
/// into. Dropping the set (thread exit) flushes what it can.
#[derive(Default)]
struct ThreadTreeSet {
    entries: Vec<ThreadEntry>,
}

struct ThreadEntry {
    owner: Weak<Inner>,
    tree: SpanTree,
}

impl ThreadTreeSet {
    fn find(&mut self, inner: &Arc<Inner>) -> Option<&mut ThreadEntry> {
        let ptr = Arc::as_ptr(inner);
        // `strong_count > 0` guards against an old profiler's allocation
        // being reused for a new one (the dangling Weak keeps the stale
        // pointer but reports zero strong refs).
        self.entries
            .iter_mut()
            .find(|e| Weak::as_ptr(&e.owner) == ptr && e.owner.strong_count() > 0)
    }

    fn tree_for(&mut self, inner: &Arc<Inner>) -> &mut SpanTree {
        if self.find(inner).is_none() {
            self.entries.retain(|e| e.owner.strong_count() > 0);
            self.entries
                .push(ThreadEntry { owner: Arc::downgrade(inner), tree: SpanTree::default() });
        }
        &mut self.find(inner).expect("just inserted").tree
    }
}

impl Drop for ThreadTreeSet {
    fn drop(&mut self) {
        for e in &mut self.entries {
            if let Some(inner) = e.owner.upgrade() {
                if e.tree.stack.is_empty() && !e.tree.nodes.is_empty() {
                    inner.absorb(e.tree.take_profile());
                }
            }
        }
    }
}

thread_local! {
    static TREES: RefCell<ThreadTreeSet> = RefCell::new(ThreadTreeSet::default());
}

/// Shared state behind an enabled [`Prof`].
#[derive(Default)]
struct Inner {
    merged: Mutex<Profile>,
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
}

impl Inner {
    fn absorb(&self, p: Profile) {
        self.merged.lock().expect("prof merge lock").merge(&p);
    }
}

/// Cheap-clone handle to the self-profiler. Disabled (the default) every
/// operation is a single branch; enabled, spans cost two `Instant::now`
/// calls plus a hash lookup and counters one relaxed atomic add.
#[derive(Clone, Default)]
pub struct Prof {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Prof {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prof").field("enabled", &self.is_enabled()).finish()
    }
}

impl Prof {
    /// A no-op handle: every span/counter call is one branch.
    pub fn disabled() -> Self {
        Prof { inner: None }
    }

    /// A live profiler. Clones share the same profile.
    pub fn enabled() -> Self {
        Prof { inner: Some(Arc::new(Inner::default())) }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span named `name` under the innermost open span on this
    /// thread. The span measures until the returned guard drops; guards
    /// must drop in LIFO order (scope them naturally).
    // `inline` so the disabled path collapses to a branch at call sites
    // in other crates (there is no LTO to do it for us).
    #[inline]
    #[must_use = "a span measures until its guard drops; binding to _ closes it immediately"]
    pub fn span(&self, name: &'static str) -> Span {
        let node = match &self.inner {
            None => 0,
            Some(inner) => TREES.with(|t| t.borrow_mut().tree_for(inner).open(name)),
        };
        Span { owner: self.inner.clone(), node, _not_send: PhantomData }
    }

    /// Resolve (creating if needed) the monotonic counter named `name`.
    /// Resolve once, then `add` from the hot path.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else { return Counter::default() };
        let mut reg = inner.counters.lock().expect("prof counter lock");
        if let Some((_, cell)) = reg.iter().find(|(n, _)| n == name) {
            return Counter { cell: Some(Arc::clone(cell)) };
        }
        let cell = Arc::new(AtomicU64::new(0));
        reg.push((name.to_string(), Arc::clone(&cell)));
        Counter { cell: Some(cell) }
    }

    /// Fold this thread's span tree into the shared profile. Call at the
    /// end of every pool job; a no-op when disabled or nothing recorded.
    ///
    /// # Panics
    ///
    /// Panics if called while a span is still open on this thread — that
    /// would orphan the open frame and break the exact-sum invariant.
    pub fn flush_thread(&self) {
        let Some(inner) = &self.inner else { return };
        TREES.with(|t| {
            let mut set = t.borrow_mut();
            if let Some(entry) = set.find(inner) {
                assert!(entry.tree.stack.is_empty(), "flush_thread/snapshot inside an open span");
                if !entry.tree.nodes.is_empty() {
                    let p = entry.tree.take_profile();
                    inner.absorb(p);
                }
            }
        });
    }

    /// Flush this thread, then return a copy of the merged profile with
    /// current counter values attached. Asserts the exact-sum invariant.
    ///
    /// Worker threads that recorded spans must have called
    /// [`Prof::flush_thread`] (or exited) first, or their data is not in
    /// this snapshot yet.
    pub fn snapshot(&self) -> Profile {
        let Some(inner) = &self.inner else { return Profile::default() };
        self.flush_thread();
        let mut p = inner.merged.lock().expect("prof merge lock").clone();
        for (name, cell) in inner.counters.lock().expect("prof counter lock").iter() {
            p.counters.push((name.clone(), cell.load(Ordering::Relaxed)));
        }
        p.counters.sort_by(|a, b| a.0.cmp(&b.0));
        p.assert_exact_sum();
        p
    }
}

/// RAII guard for one open span. `!Send`: a span belongs to the stack of
/// the thread that opened it.
#[must_use = "a span measures until its guard drops; binding to _ closes it immediately"]
pub struct Span {
    owner: Option<Arc<Inner>>,
    node: usize,
    _not_send: PhantomData<*const ()>,
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let Some(inner) = self.owner.take() else { return };
        // During a panic unwind the measurement is garbage and the span
        // stack may be inconsistent; recording would risk a second
        // panic inside a destructor (= abort). Abandon the profile.
        if std::thread::panicking() {
            return;
        }
        // try_with: if the thread is already tearing down its TLS the
        // tree is gone and there is nothing left to record into.
        let _ = TREES.try_with(|t| {
            let mut set = t.borrow_mut();
            if let Some(entry) = set.find(&inner) {
                entry.tree.close(self.node);
            }
        });
    }
}

/// Pre-resolved handle to one monotonic work counter. Cloneable, shared
/// across threads; `add` on a disabled handle is one branch.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Whether increments are recorded anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Add `n` to the counter (relaxed; counters are monotonic totals).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// One aggregated span path in a [`Profile`]: occurrence count, total
/// wall time, self time (total minus direct children), and the single
/// longest occurrence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfSpan {
    /// Span name (the leaf segment; the path is the ancestor chain).
    pub name: String,
    /// How many times this path was entered.
    pub count: u64,
    /// Wall-clock nanoseconds spent inside, children included.
    pub total_ns: u64,
    /// Nanoseconds not accounted to any child: `total_ns - Σ children.total_ns`.
    pub self_ns: u64,
    /// The longest single occurrence, nanoseconds.
    pub max_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<ProfSpan>,
}

impl ProfSpan {
    /// Mean nanoseconds per occurrence (0 when never entered).
    pub fn avg_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A merged self-profile: root spans (sorted by name) plus the work
/// counters (sorted by name). Obtained from [`Prof::snapshot`] or parsed
/// back from a `profile_document` with [`Profile::from_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Root spans, sorted by name.
    pub spans: Vec<ProfSpan>,
    /// `(name, value)` work counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

fn merge_spans(into: &mut Vec<ProfSpan>, from: &[ProfSpan]) {
    for s in from {
        if let Some(t) = into.iter_mut().find(|t| t.name == s.name) {
            t.count += s.count;
            t.total_ns += s.total_ns;
            t.self_ns += s.self_ns;
            t.max_ns = t.max_ns.max(s.max_ns);
            merge_spans(&mut t.children, &s.children);
        } else {
            into.push(s.clone());
        }
    }
    into.sort_by(|a, b| a.name.cmp(&b.name));
}

fn check_span_sum(s: &ProfSpan, path: &str) -> Result<(), String> {
    let kids: u64 = s.children.iter().map(|c| c.total_ns).sum();
    if s.self_ns + kids != s.total_ns {
        return Err(format!(
            "span {path:?}: self {} + children {} != total {}",
            s.self_ns, kids, s.total_ns
        ));
    }
    for c in &s.children {
        check_span_sum(c, &format!("{path};{}", c.name))?;
    }
    Ok(())
}

impl Profile {
    /// Whether the profile holds no spans and no counters.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Total wall time across all root spans, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.total_ns).sum()
    }

    /// Fold `other` into `self`: matching paths sum their aggregates
    /// (max takes the max), counters sum by name. Keeps sort order.
    pub fn merge(&mut self, other: &Profile) {
        merge_spans(&mut self.spans, &other.spans);
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, cur)) => *cur += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Verify `self_ns + Σ children.total_ns == total_ns` (u64 equality)
    /// on every span.
    ///
    /// # Errors
    ///
    /// Returns the first violating path.
    pub fn checked_exact_sum(&self) -> Result<(), String> {
        for s in &self.spans {
            check_span_sum(s, &s.name)?;
        }
        Ok(())
    }

    /// Assert the exact-sum invariant — a plain `assert!`, active in
    /// every build profile, matching the latency-anatomy discipline.
    pub fn assert_exact_sum(&self) {
        if let Err(e) = self.checked_exact_sum() {
            panic!("profile exact-sum violated: {e}");
        }
    }

    /// Flamegraph-ready folded stacks: one `path;to;leaf self_ns` line
    /// per span, depth-first, children in name order.
    pub fn folded(&self) -> String {
        fn walk(s: &ProfSpan, prefix: &str, out: &mut String) {
            let path =
                if prefix.is_empty() { s.name.clone() } else { format!("{prefix};{}", s.name) };
            out.push_str(&path);
            out.push(' ');
            out.push_str(&s.self_ns.to_string());
            out.push('\n');
            for c in &s.children {
                walk(c, &path, out);
            }
        }
        let mut out = String::new();
        for s in &self.spans {
            walk(s, "", &mut out);
        }
        out
    }

    /// The span/counter body as JSON (embedded by
    /// [`crate::export::profile_document`]).
    pub fn to_json(&self) -> Json {
        fn span_json(s: &ProfSpan) -> Json {
            Json::obj([
                ("name", Json::str(&s.name)),
                ("count", Json::uint(s.count)),
                ("total_ns", Json::uint(s.total_ns)),
                ("self_ns", Json::uint(s.self_ns)),
                ("max_ns", Json::uint(s.max_ns)),
                ("children", Json::arr(s.children.iter().map(span_json))),
            ])
        }
        Json::obj([
            ("spans", Json::arr(self.spans.iter().map(span_json))),
            (
                "counters",
                Json::Obj(self.counters.iter().map(|(n, v)| (n.clone(), Json::uint(*v))).collect()),
            ),
        ])
    }

    /// Reconstruct a profile from a parsed `profile_document` (or any
    /// object carrying `spans` + `counters`). Validates the exact-sum
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns a message on missing/mistyped fields or an exact-sum
    /// violation.
    pub fn from_json(doc: &Json) -> Result<Profile, String> {
        fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
            let v = j
                .get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("span missing numeric {key:?}"))?;
            if v < 0.0 {
                return Err(format!("span {key:?} is negative"));
            }
            Ok(v as u64)
        }
        fn span_from(j: &Json) -> Result<ProfSpan, String> {
            let name = j
                .get("name")
                .and_then(Json::as_str)
                .ok_or("span missing string \"name\"")?
                .to_string();
            let children = match j.get("children") {
                None => Vec::new(),
                Some(c) => c
                    .as_arr()
                    .ok_or("span \"children\" must be an array")?
                    .iter()
                    .map(span_from)
                    .collect::<Result<_, _>>()?,
            };
            Ok(ProfSpan {
                name,
                count: get_u64(j, "count")?,
                total_ns: get_u64(j, "total_ns")?,
                self_ns: get_u64(j, "self_ns")?,
                max_ns: get_u64(j, "max_ns")?,
                children,
            })
        }
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("profile document missing \"spans\" array")?
            .iter()
            .map(span_from)
            .collect::<Result<Vec<_>, _>>()?;
        let mut counters: Vec<(String, u64)> = Vec::new();
        if let Some(Json::Obj(pairs)) = doc.get("counters") {
            for (name, v) in pairs {
                let v = v.as_num().ok_or_else(|| format!("counter {name:?} must be a number"))?;
                counters.push((name.clone(), v as u64));
            }
        }
        let p = Profile { spans, counters };
        p.checked_exact_sum().map_err(|e| format!("exact-sum violated: {e}"))?;
        Ok(p)
    }
}

/// Render the span tree as an aligned table: indented span names, count,
/// total / self / max wall time, and share of the grand total.
pub fn span_table(p: &Profile) -> Table {
    let mut t = Table::new(["span", "count", "total", "self", "max", "% total"]);
    t.align_left(0);
    let grand = p.total_ns().max(1);
    fn walk(t: &mut Table, s: &ProfSpan, depth: usize, grand: u64) {
        t.row([
            format!("{}{}", "  ".repeat(depth), s.name),
            s.count.to_string(),
            fmt_ns(u128::from(s.total_ns)),
            fmt_ns(u128::from(s.self_ns)),
            fmt_ns(u128::from(s.max_ns)),
            format!("{:.1}", 100.0 * s.total_ns as f64 / grand as f64),
        ]);
        for c in &s.children {
            walk(t, c, depth + 1, grand);
        }
    }
    for s in &p.spans {
        walk(&mut t, s, 0, grand);
    }
    t
}

/// Render the work counters as a two-column table.
pub fn counter_table(p: &Profile) -> Table {
    let mut t = Table::new(["counter", "value"]);
    t.align_left(0);
    for (name, v) in &p.counters {
        t.row([name.clone(), v.to_string()]);
    }
    t
}

/// The `n` span paths with the largest self time, flattened
/// (`a;b;leaf`), hottest first.
pub fn top_self_table(p: &Profile, n: usize) -> Table {
    fn flatten(s: &ProfSpan, prefix: &str, out: &mut Vec<(String, u64, u64)>) {
        let path = if prefix.is_empty() { s.name.clone() } else { format!("{prefix};{}", s.name) };
        out.push((path.clone(), s.self_ns, s.count));
        for c in &s.children {
            flatten(c, &path, out);
        }
    }
    let mut flat: Vec<(String, u64, u64)> = Vec::new();
    for s in &p.spans {
        flatten(s, "", &mut flat);
    }
    flat.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let grand = p.total_ns().max(1);
    let mut t = Table::new(["path", "self", "count", "% total"]);
    t.align_left(0);
    for (path, self_ns, count) in flat.into_iter().take(n) {
        t.row([
            path,
            fmt_ns(u128::from(self_ns)),
            count.to_string(),
            format!("{:.1}", 100.0 * self_ns as f64 / grand as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin() -> u64 {
        let mut acc = 0u64;
        for i in 0..500u64 {
            acc = acc.wrapping_add(std::hint::black_box(i * i));
        }
        acc
    }

    #[test]
    fn disabled_prof_is_inert() {
        let p = Prof::disabled();
        assert!(!p.is_enabled());
        {
            let _outer = p.span("a");
            let _inner = p.span("b");
        }
        let c = p.counter("x");
        assert!(!c.is_enabled());
        c.add(5);
        assert_eq!(c.get(), 0);
        p.flush_thread();
        let snap = p.snapshot();
        assert!(snap.is_empty());
        assert_eq!(format!("{p:?}"), "Prof { enabled: false }");
    }

    #[test]
    fn exact_sum_holds_for_nested_spans() {
        let p = Prof::enabled();
        for _ in 0..3 {
            let _outer = p.span("outer");
            {
                let _a = p.span("a");
                std::hint::black_box(spin());
            }
            {
                let _b = p.span("b");
                let _ba = p.span("a"); // same leaf name, different path
                std::hint::black_box(spin());
            }
        }
        let snap = p.snapshot(); // asserts exact sum internally
        assert_eq!(snap.spans.len(), 1);
        let outer = &snap.spans[0];
        assert_eq!((outer.name.as_str(), outer.count), ("outer", 3));
        assert_eq!(outer.children.len(), 2);
        let (a, b) = (&outer.children[0], &outer.children[1]);
        assert_eq!((a.name.as_str(), a.count), ("a", 3));
        assert_eq!((b.name.as_str(), b.count), ("b", 3));
        assert_eq!(b.children.len(), 1, "a under b is its own path");
        // u64-exact: no residue, no slack.
        assert_eq!(outer.self_ns + a.total_ns + b.total_ns, outer.total_ns);
        assert_eq!(b.self_ns + b.children[0].total_ns, b.total_ns);
        assert!(outer.max_ns >= outer.avg_ns());
    }

    #[test]
    fn exact_sum_holds_across_worker_threads() {
        let p = Prof::enabled();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let p = p.clone();
                s.spawn(move || {
                    {
                        let _j = p.span("job");
                        let _w = p.span("work");
                        std::hint::black_box(spin());
                    }
                    p.flush_thread();
                });
            }
        });
        let snap = p.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let job = &snap.spans[0];
        assert_eq!(job.count, 2, "both worker trees merged");
        assert_eq!(job.children[0].count, 2);
        assert_eq!(job.self_ns + job.children[0].total_ns, job.total_ns);
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let p = Prof::enabled();
        let b = p.counter("b_counter");
        let a = p.counter("a_counter");
        b.add(2);
        a.incr();
        p.counter("b_counter").add(3); // same cell, re-resolved
        assert_eq!(b.get(), 5);
        let snap = p.snapshot();
        assert_eq!(snap.counters, vec![("a_counter".to_string(), 1), ("b_counter".to_string(), 5)]);
    }

    #[test]
    #[should_panic(expected = "open span")]
    fn flush_inside_open_span_panics() {
        let p = Prof::enabled();
        let _s = p.span("open");
        p.flush_thread();
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_guard_drop_panics() {
        let p = Prof::enabled();
        let a = p.span("a");
        let _b = p.span("b");
        drop(a);
    }

    #[test]
    fn merge_sums_matching_paths_and_unions_the_rest() {
        let mk = |n: &str, total: u64, self_ns: u64, kids: Vec<ProfSpan>| ProfSpan {
            name: n.to_string(),
            count: 1,
            total_ns: total,
            self_ns,
            max_ns: total,
            children: kids,
        };
        let mut x = Profile {
            spans: vec![mk("run", 10, 4, vec![mk("tick", 6, 6, vec![])])],
            counters: vec![("c".to_string(), 2)],
        };
        let y = Profile {
            spans: vec![
                mk("init", 3, 3, vec![]),
                mk("run", 20, 8, vec![mk("tick", 12, 12, vec![])]),
            ],
            counters: vec![("c".to_string(), 5), ("d".to_string(), 1)],
        };
        x.merge(&y);
        x.assert_exact_sum();
        assert_eq!(x.spans.len(), 2);
        assert_eq!(x.spans[0].name, "init", "sorted by name");
        let run = &x.spans[1];
        assert_eq!((run.count, run.total_ns, run.self_ns, run.max_ns), (2, 30, 12, 20));
        assert_eq!(run.children[0].total_ns, 18);
        assert_eq!(x.counters, vec![("c".to_string(), 7), ("d".to_string(), 1)]);
    }

    #[test]
    fn folded_stacks_emit_self_times_per_path() {
        let p = Prof::enabled();
        {
            let _a = p.span("root");
            let _b = p.span("leaf");
        }
        let folded = p.snapshot().folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("root "), "{folded}");
        assert!(lines[1].starts_with("root;leaf "), "{folded}");
    }

    #[test]
    fn repeated_profilers_on_one_thread_do_not_cross_talk() {
        for _ in 0..3 {
            let p = Prof::enabled();
            {
                let _s = p.span("once");
            }
            let snap = p.snapshot();
            assert_eq!(snap.spans.len(), 1);
            assert_eq!(snap.spans[0].count, 1, "no leakage from prior profilers");
        }
    }

    #[test]
    fn json_body_round_trips_and_rejects_broken_sums() {
        let p = Prof::enabled();
        {
            let _a = p.span("root");
            let _b = p.span("leaf");
        }
        p.counter("widgets").add(7);
        let snap = p.snapshot();
        let text = snap.to_json().to_json();
        let back = crate::json::parse(&text).expect("profile body must be valid JSON");
        let round = Profile::from_json(&back).expect("body must reconstruct");
        assert_eq!(round, snap);

        let bad = crate::json::parse(
            r#"{"spans":[{"name":"r","count":1,"total_ns":10,"self_ns":3,"max_ns":10,
                 "children":[{"name":"k","count":1,"total_ns":5,"self_ns":5,"max_ns":5,"children":[]}]}],
                "counters":{}}"#,
        )
        .unwrap();
        let err = Profile::from_json(&bad).unwrap_err();
        assert!(err.contains("exact-sum"), "{err}");
    }

    #[test]
    fn tables_render_tree_counters_and_top_self() {
        let p = Prof::enabled();
        {
            let _a = p.span("root");
            let _b = p.span("leaf");
        }
        p.counter("n_jobs").add(3);
        let snap = p.snapshot();
        let tree = span_table(&snap).render();
        assert!(tree.contains("root"), "{tree}");
        assert!(tree.contains("  leaf"), "children indent: {tree}");
        let counters = counter_table(&snap).render();
        assert!(counters.contains("n_jobs"));
        let top = top_self_table(&snap, 1).render();
        assert_eq!(top.lines().count(), 3, "header + rule + 1 row: {top}");
        assert!(top.contains(';') || top.contains("root"), "{top}");
    }
}
