//! A log-bucketed (HDR-style) latency histogram.
//!
//! Values 0..15 get exact linear buckets; from 16 up, every power-of-two
//! octave is split into 16 sub-buckets, so any recorded value is off by
//! at most 1/16 of itself when read back — plenty for p50/p90/p99 of
//! DRAM latencies while keeping the table a fixed 976 `u64` slots.
//!
//! Everything is integer arithmetic: recording, merging, and quantile
//! extraction are deterministic, so histograms built on different worker
//! threads and merged in a fixed order serialise byte-identically.

use crate::json::Json;

/// Sub-buckets per power-of-two octave (and the size of the linear
/// region at the bottom).
const SUBBUCKETS: u64 = 16;

/// Highest possible bucket index (`value_to_index(u64::MAX)`).
const MAX_INDEX: usize = (16 * 63 - 48 + 15) as usize; // 975

/// A fixed-shape log-bucketed histogram over `u64` values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, grown lazily up to the highest index touched.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index of `v`: exact below 16, then 16 sub-buckets per octave.
fn value_to_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let m = 63 - v.leading_zeros() as u64; // floor(log2 v), >= 4
    (16 * m - 48 + ((v >> (m - 4)) & 15)) as usize
}

/// Inclusive `(low, high)` value range of bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUBBUCKETS as usize {
        return (idx as u64, idx as u64);
    }
    let m = (idx as u64 + 48) / 16;
    let sub = idx as u64 - (16 * m - 48);
    let low = (SUBBUCKETS + sub) << (m - 4);
    let width = 1u64 << (m - 4);
    // `low + (width - 1)`: subtracting first keeps the top bucket's
    // upper bound (u64::MAX) from overflowing.
    (low, low + (width - 1))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = value_to_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += v.saturating_mul(n);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest sample, clamped
    /// to the recorded `[min, max]` range. Pure integer cumulation, so
    /// deterministic across platforms.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let (_, high) = bucket_bounds(idx);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other` into `self`. Merging is element-wise addition, so it
    /// is associative and order-independent — merged histograms are
    /// byte-identical however the shards were produced.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// JSON form: summary fields plus the non-empty buckets as sparse
    /// `[index, count]` pairs.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::uint(self.count)),
            ("sum", Json::uint(self.sum)),
            ("min", Json::uint(self.min())),
            ("max", Json::uint(self.max())),
            ("mean", Json::num(self.mean())),
            ("p50", Json::uint(self.value_at_quantile(0.50))),
            ("p90", Json::uint(self.value_at_quantile(0.90))),
            ("p99", Json::uint(self.value_at_quantile(0.99))),
            (
                "buckets",
                Json::arr(
                    self.counts
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(i, c)| Json::arr([Json::uint(i as u64), Json::uint(*c)])),
                ),
            ),
        ])
    }

    /// Rebuild a histogram from its [`Histogram::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is missing, malformed, or the
    /// bucket counts disagree with the recorded total.
    pub fn from_json(v: &Json) -> Result<Histogram, String> {
        let field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("histogram missing numeric field {k:?}"))
        };
        let mut h = Histogram {
            counts: Vec::new(),
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
        };
        let buckets =
            v.get("buckets").and_then(Json::as_arr).ok_or("histogram missing buckets array")?;
        let mut total = 0u64;
        for b in buckets {
            let pair =
                b.as_arr().filter(|p| p.len() == 2).ok_or("bucket must be [index, count]")?;
            let idx = pair[0].as_num().ok_or("bucket index must be a number")? as usize;
            let c = pair[1].as_num().ok_or("bucket count must be a number")? as u64;
            if idx > MAX_INDEX {
                return Err(format!("bucket index {idx} out of range"));
            }
            if idx >= h.counts.len() {
                h.counts.resize(idx + 1, 0);
            }
            h.counts[idx] += c;
            total += c;
        }
        if total != h.count {
            return Err(format!("bucket counts sum to {total}, header says {}", h.count));
        }
        Ok(h)
    }

    /// Per-bucket `(low, high, count)` triples for the non-empty buckets
    /// (ascending), for downstream renderers.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, *c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn indexing_is_monotone_and_continuous() {
        // Every value maps into a bucket whose bounds contain it, and
        // indices never decrease as values grow.
        let mut last = 0usize;
        for v in (0u64..2048).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 2, u64::MAX]) {
            let idx = value_to_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} bounds=({lo},{hi})");
            assert!(idx >= last || v < 2048, "index must not decrease");
            if v < 2048 {
                assert!(idx >= last);
                last = idx;
            }
        }
        assert_eq!(value_to_index(u64::MAX), MAX_INDEX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q in [0.01, 0.25, 0.5, 0.75, 1.0] {
            let got = h.value_at_quantile(q);
            let want = ((q * 16.0).ceil() as u64).clamp(1, 16) - 1;
            assert_eq!(got, want, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), 120);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
            h.record(v);
        }
        let p50 = h.value_at_quantile(0.5);
        // 5th smallest is 500; bucket resolution is 1/16.
        assert!((468..=532).contains(&p50), "p50={p50}");
        assert_eq!(h.value_at_quantile(1.0), 1000, "max is exact");
        assert!(h.value_at_quantile(0.0) >= 100);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            both.record(x);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
        // And merge order does not matter.
        let mut rev = b.clone();
        rev.merge(&a);
        assert_eq!(rev, both);
        // Merging an empty histogram is a no-op.
        merged.merge(&Histogram::new());
        assert_eq!(merged, both);
    }

    #[test]
    fn merging_two_empty_histograms_stays_empty() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert_eq!(a, Histogram::new());
        assert!(a.is_empty());
        assert_eq!((a.count(), a.sum(), a.min(), a.max()), (0, 0, 0, 0));
        // ... and still behaves as a fresh histogram afterwards: the
        // first real sample must seed min/max, not min() against a stale
        // zero.
        a.record(42);
        assert_eq!((a.min(), a.max()), (42, 42));
        // Empty ⊕ non-empty adopts the other side's min/max wholesale.
        let mut b = Histogram::new();
        b.merge(&a);
        assert_eq!(b, a);
    }

    #[test]
    fn merge_saturates_sum_instead_of_wrapping() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX);
        assert_eq!(a.sum(), u64::MAX, "single-shard recording already saturates");
        a.merge(&b);
        assert_eq!(a.sum(), u64::MAX, "merged sum must clamp, not wrap");
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.value_at_quantile(1.0), u64::MAX, "quantile clamps to recorded max");
        assert!(a.mean() > 0.0);
    }

    #[test]
    fn cross_octave_merge_round_trips_and_resizes_either_way() {
        // One shard only touches the exact linear region, the other only
        // a high octave, so the two `counts` tables have very different
        // lengths and merging must grow whichever side is shorter.
        let mut low = Histogram::new();
        for v in 0..16u64 {
            low.record(v);
        }
        let mut high = Histogram::new();
        high.record_n(1 << 40, 3);
        high.record((1 << 40) + 12_345);

        let mut a = low.clone();
        a.merge(&high); // short grows to fit long
        let mut b = high.clone();
        b.merge(&low); // long absorbs short
        assert_eq!(a, b, "merge must be symmetric across octaves");
        assert_eq!(a.count(), 20);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), (1 << 40) + 12_345);
        // Low quantiles come from the linear shard, high from the octave
        // shard — the merge kept both populations.
        assert!(a.value_at_quantile(0.5) < 16);
        assert!(a.value_at_quantile(0.99) >= 1 << 40);
        // And the merged histogram survives a JSON round-trip exactly.
        let back = Histogram::from_json(&json::parse(&a.to_json().to_json()).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn json_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 255, 4096, 1 << 30] {
            h.record_n(v, v % 5 + 1);
        }
        let text = h.to_json().to_json();
        let back = Histogram::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.value_at_quantile(0.9), h.value_at_quantile(0.9));
    }

    #[test]
    fn from_json_rejects_inconsistent_documents() {
        let bad = json::parse(r#"{"count":5,"sum":10,"min":1,"max":4,"buckets":[[1,2]]}"#).unwrap();
        assert!(Histogram::from_json(&bad).unwrap_err().contains("sum to 2"));
        let bad = json::parse(r#"{"count":0,"sum":0,"min":0,"max":0}"#).unwrap();
        assert!(Histogram::from_json(&bad).unwrap_err().contains("buckets"));
        let bad = json::parse(r#"{"sum":0,"min":0,"max":0,"buckets":[]}"#).unwrap();
        assert!(Histogram::from_json(&bad).unwrap_err().contains("count"));
    }

    #[test]
    fn nonzero_buckets_report_bounds() {
        let mut h = Histogram::new();
        h.record(3);
        h.record_n(100, 4);
        let b = h.nonzero_buckets();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], (3, 3, 1));
        assert!(b[1].0 <= 100 && 100 <= b[1].1);
        assert_eq!(b[1].2, 4);
    }
}
