//! The typed event taxonomy of the simulator.
//!
//! Every dynamic decision the reproduced mechanisms make — DBP
//! repartitions, page migrations, TCM re-clustering and shuffling, MCP
//! group moves — is recorded as one of these variants, stamped with the
//! CPU cycle it happened at. The taxonomy is deliberately flat and
//! primitive-typed so `dbp-obs` depends on no other workspace crate and
//! every layer of the stack can emit into it.

use crate::json::Json;

/// Why a page moved between frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCause {
    /// Moved at `set_partition` time (eager migration mode).
    Eager,
    /// Moved on the owning thread's next touch (lazy migration mode).
    Lazy,
    /// Moved to spread a grown partition's pages across its banks.
    Rebalance,
    /// Moved by the end-of-warmup instant conformance pass.
    Conform,
}

impl MigrationCause {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            MigrationCause::Eager => "eager",
            MigrationCause::Lazy => "lazy",
            MigrationCause::Rebalance => "rebalance",
            MigrationCause::Conform => "conform",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// CPU cycle the event occurred at.
    pub cycle: u64,
    pub kind: EventKind,
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A profiling epoch closed in the simulator's cycle loop (the
    /// repartition path runs right after).
    EpochStart { epoch: u64 },
    /// The per-thread profile snapshot handed to the partitioning policy.
    ThreadProfile { thread: usize, mpki: f64, rbl: f64, blp: f64 },
    /// The plan the policy returned: one rendered color set per thread,
    /// plus which threads' sets changed (and will migrate pages).
    RepartitionPlan { epoch: u64, plan: Vec<String>, changed_threads: Vec<usize> },
    /// DBP's smoothed bank-unit demand estimate for an intensive thread.
    BankDemand { thread: usize, units: u32 },
    /// MCP's interference-group assignment (0 = intensive low-RBL,
    /// 1 = intensive high-RBL, 2 = non-intensive).
    ChannelGroup { thread: usize, group: u8 },
    /// A page was copied between frames (and hence bank groups).
    PageMigration { thread: usize, vpn: u64, old_frame: u64, new_frame: u64, cause: MigrationCause },
    /// A migration found no free frame in the target partition.
    MigrationFailed { thread: usize },
    /// A migration was pushed to a later epoch by the per-epoch budget.
    MigrationDeferred { thread: usize },
    /// An allocation spilled outside the thread's exhausted partition.
    FallbackAlloc { thread: usize, vpn: u64 },
    /// TCM re-clustered threads at a quantum boundary.
    TcmCluster { latency: Vec<usize>, bandwidth: Vec<usize> },
    /// TCM rotated the bandwidth cluster's priority order (front = best).
    TcmShuffle { order: Vec<usize> },
}

impl EventKind {
    /// Stable snake_case event name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::EpochStart { .. } => "epoch_start",
            EventKind::ThreadProfile { .. } => "thread_profile",
            EventKind::RepartitionPlan { .. } => "repartition_plan",
            EventKind::BankDemand { .. } => "bank_demand",
            EventKind::ChannelGroup { .. } => "channel_group",
            EventKind::PageMigration { .. } => "page_migration",
            EventKind::MigrationFailed { .. } => "migration_failed",
            EventKind::MigrationDeferred { .. } => "migration_deferred",
            EventKind::FallbackAlloc { .. } => "fallback_alloc",
            EventKind::TcmCluster { .. } => "tcm_cluster",
            EventKind::TcmShuffle { .. } => "tcm_shuffle",
        }
    }

    /// The thread the event belongs to, when it is thread-scoped.
    pub fn thread(&self) -> Option<usize> {
        match self {
            EventKind::ThreadProfile { thread, .. }
            | EventKind::BankDemand { thread, .. }
            | EventKind::ChannelGroup { thread, .. }
            | EventKind::PageMigration { thread, .. }
            | EventKind::MigrationFailed { thread }
            | EventKind::MigrationDeferred { thread }
            | EventKind::FallbackAlloc { thread, .. } => Some(*thread),
            _ => None,
        }
    }

    /// Whether this event fires at most a few times per epoch (the stderr
    /// echo sink prints only these; per-page events would flood it).
    pub fn is_epoch_level(&self) -> bool {
        !matches!(
            self,
            EventKind::PageMigration { .. }
                | EventKind::MigrationFailed { .. }
                | EventKind::MigrationDeferred { .. }
                | EventKind::FallbackAlloc { .. }
        )
    }

    /// The event payload as a JSON object (without name/cycle/thread).
    pub fn args_json(&self) -> Json {
        let usizes = |v: &[usize]| Json::arr(v.iter().map(|&t| Json::uint(t as u64)));
        match self {
            EventKind::EpochStart { epoch } => Json::obj([("epoch", Json::uint(*epoch))]),
            EventKind::ThreadProfile { mpki, rbl, blp, .. } => Json::obj([
                ("mpki", Json::num(*mpki)),
                ("rbl", Json::num(*rbl)),
                ("blp", Json::num(*blp)),
            ]),
            EventKind::RepartitionPlan { epoch, plan, changed_threads } => Json::obj([
                ("epoch", Json::uint(*epoch)),
                ("plan", Json::arr(plan.iter().map(Json::str))),
                ("changed_threads", usizes(changed_threads)),
            ]),
            EventKind::BankDemand { units, .. } => {
                Json::obj([("units", Json::uint(u64::from(*units)))])
            }
            EventKind::ChannelGroup { group, .. } => {
                Json::obj([("group", Json::uint(u64::from(*group)))])
            }
            EventKind::PageMigration { vpn, old_frame, new_frame, cause, .. } => Json::obj([
                ("vpn", Json::uint(*vpn)),
                ("old_frame", Json::uint(*old_frame)),
                ("new_frame", Json::uint(*new_frame)),
                ("cause", Json::str(cause.label())),
            ]),
            EventKind::MigrationFailed { .. } | EventKind::MigrationDeferred { .. } => {
                Json::Obj(Vec::new())
            }
            EventKind::FallbackAlloc { vpn, .. } => Json::obj([("vpn", Json::uint(*vpn))]),
            EventKind::TcmCluster { latency, bandwidth } => {
                Json::obj([("latency", usizes(latency)), ("bandwidth", usizes(bandwidth))])
            }
            EventKind::TcmShuffle { order } => Json::obj([("order", usizes(order))]),
        }
    }

    /// Human-readable one-liner for the stderr echo sink. Matches the
    /// spirit of the old `DBP_TRACE_PLAN` dump.
    pub fn pretty(&self, cycle: u64) -> String {
        match self {
            EventKind::EpochStart { epoch } => format!("[epoch @{cycle}] epoch {epoch} closed"),
            EventKind::ThreadProfile { thread, mpki, rbl, blp } => {
                format!("[epoch @{cycle}] t{thread}: mpki={mpki:.1} rbl={rbl:.2} blp={blp:.2}")
            }
            EventKind::RepartitionPlan { plan, changed_threads, .. } => format!(
                "[epoch @{cycle}] plan: {} (changed: {changed_threads:?})",
                plan.join(" | ")
            ),
            EventKind::BankDemand { thread, units } => {
                format!("[epoch @{cycle}] t{thread}: demand {units} bank units")
            }
            EventKind::ChannelGroup { thread, group } => {
                format!("[epoch @{cycle}] t{thread}: MCP group {group}")
            }
            EventKind::TcmCluster { latency, bandwidth } => {
                format!("[tcm @{cycle}] cluster latency={latency:?} bandwidth={bandwidth:?}")
            }
            EventKind::TcmShuffle { order } => format!("[tcm @{cycle}] shuffle -> {order:?}"),
            other => format!("[obs @{cycle}] {}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let all = [
            EventKind::EpochStart { epoch: 0 },
            EventKind::ThreadProfile { thread: 0, mpki: 0.0, rbl: 0.0, blp: 0.0 },
            EventKind::RepartitionPlan { epoch: 0, plan: vec![], changed_threads: vec![] },
            EventKind::BankDemand { thread: 0, units: 1 },
            EventKind::ChannelGroup { thread: 0, group: 2 },
            EventKind::PageMigration {
                thread: 0,
                vpn: 1,
                old_frame: 2,
                new_frame: 3,
                cause: MigrationCause::Lazy,
            },
            EventKind::MigrationFailed { thread: 0 },
            EventKind::MigrationDeferred { thread: 0 },
            EventKind::FallbackAlloc { thread: 0, vpn: 9 },
            EventKind::TcmCluster { latency: vec![0], bandwidth: vec![1] },
            EventKind::TcmShuffle { order: vec![1, 0] },
        ];
        let mut names: Vec<&str> = all.iter().map(EventKind::name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "event names must be unique");
        for k in &all {
            assert!(!k.pretty(7).is_empty());
            // args_json must serialise without panicking.
            assert!(!k.args_json().to_json().is_empty());
        }
    }

    #[test]
    fn thread_scoping() {
        assert_eq!(EventKind::EpochStart { epoch: 1 }.thread(), None);
        assert_eq!(EventKind::FallbackAlloc { thread: 3, vpn: 0 }.thread(), Some(3));
        assert_eq!(
            EventKind::PageMigration {
                thread: 2,
                vpn: 0,
                old_frame: 0,
                new_frame: 1,
                cause: MigrationCause::Eager
            }
            .thread(),
            Some(2)
        );
    }

    #[test]
    fn per_page_events_are_not_epoch_level() {
        assert!(EventKind::EpochStart { epoch: 0 }.is_epoch_level());
        assert!(EventKind::TcmShuffle { order: vec![] }.is_epoch_level());
        assert!(!EventKind::FallbackAlloc { thread: 0, vpn: 0 }.is_epoch_level());
        assert!(!EventKind::MigrationDeferred { thread: 0 }.is_epoch_level());
    }

    #[test]
    fn migration_cause_labels() {
        for (c, l) in [
            (MigrationCause::Eager, "eager"),
            (MigrationCause::Lazy, "lazy"),
            (MigrationCause::Rebalance, "rebalance"),
            (MigrationCause::Conform, "conform"),
        ] {
            assert_eq!(c.label(), l);
        }
    }
}
