//! A fast, deterministic hasher for simulator-internal maps.
//!
//! The simulator's hot paths key maps by small integers — physical line
//! addresses, request ids, virtual page numbers. `std`'s default SipHash
//! is DoS-resistant but costs ~10x more per lookup than these keys need,
//! and its per-process random seed makes iteration order vary between
//! runs. This module provides the well-known Fx multiply-rotate hash
//! (as used by rustc's internal tables): a few arithmetic instructions
//! per word, with a fixed seed so any order-dependent behaviour stays
//! reproducible run to run.
//!
//! Not collision-resistant against adversarial keys — never use it for
//! externally controlled input. Simulation state only.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Multiply-rotate hasher over native words. See the module docs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / phi, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let h = |x: u64| {
            let mut f = FxHasher::default();
            f.write_u64(x);
            f.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_round_trip_and_stable_order() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
        // Fixed seed: two identically built maps iterate identically.
        let mut m2: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m2.insert(i * 64, i as u32);
        }
        let a: Vec<_> = m.iter().collect();
        let b: Vec<_> = m2.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn byte_writes_cover_unaligned_tails() {
        let mut f = FxHasher::default();
        f.write(b"0123456789abcdef");
        let full = f.finish();
        let mut g = FxHasher::default();
        g.write(b"0123456789abcde");
        assert_ne!(full, g.finish());
    }
}
