//! Plain-text table rendering shared by the simulator report layer, the
//! bench harness, and the `dbpreport` bin.
//!
//! Lived in `dbp-sim` originally; moved down here so `dbpreport` (which
//! must not depend on the simulator) renders with the same code that
//! produced every committed `results/*.txt` table.

/// Human-readable wall time: picks ns/us/ms/s to keep 3-4 significant
/// digits. Shared by the micro-bench report, the experiment-suite
/// timing summary, and the self-profiler tables. (Lives here rather
/// than `dbp-util` because util depends on this crate, not the other
/// way round; `dbp_util::bench::fmt_ns` re-exports it.)
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A simple fixed-width table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Per-column alignment; `true` = left. Defaults to right (numeric).
    left: Vec<bool>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let left = vec![false; headers.len()];
        Table { headers, rows: Vec::new(), left }
    }

    /// Left-align column `col` (name-like columns; numeric columns keep
    /// the right-aligned default).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align_left(&mut self, col: usize) -> &mut Self {
        self.left[col] = true;
        self
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let line = cells
                .iter()
                .zip(widths)
                .zip(&self.left)
                .map(
                    |((cell, w), &l)| {
                        if l {
                            format!("{cell:<w$}")
                        } else {
                            format!("{cell:>w$}")
                        }
                    },
                )
                .collect::<Vec<_>>()
                .join("  ");
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (columns follow the
    /// same alignment [`Table::render`] uses: right by default, left
    /// where [`Table::align_left`] was called).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for &l in &self.left {
            out.push_str(if l { " :--- |" } else { " ---: |" });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Render as CSV (headers first; cells containing commas or quotes
    /// are quoted per RFC 4180).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Emit one captioned table in either plain (`render`) or markdown
/// format — the shape every renderer bin (`dbpreport`, `dbpprof`,
/// `dbpaudit`) emits.
pub fn push_table(out: &mut String, caption: &str, t: &Table, md: bool) {
    if md {
        out.push_str(&format!("\n**{caption}**\n\n"));
        out.push_str(&t.to_markdown());
    } else {
        out.push_str(&format!("\n{caption}:\n"));
        out.push_str(&t.render());
    }
}

/// One line of run context pulled from a document's `summary` object,
/// if any (string and numeric entries only).
pub fn summary_line(doc: &crate::json::Json) -> String {
    use crate::json::Json;
    let Some(Json::Obj(pairs)) = doc.get("summary") else { return String::new() };
    let mut parts = Vec::new();
    for (k, v) in pairs {
        match v {
            Json::Str(s) => parts.push(format!("{k}={s}")),
            Json::Num(n) => parts.push(format!("{k}={n}")),
            Json::Bool(b) => parts.push(format!("{k}={b}")),
            _ => {}
        }
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("summary: {}\n", parts.join("  "))
    }
}

/// A unicode block-character sparkline of `values` scaled to their own
/// min..max range (empty input renders as an empty string).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (lo, hi) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '·';
            }
            if hi <= lo {
                return BARS[0];
            }
            let t = (v - lo) / (hi - lo);
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["mix", "WS"]);
        t.row(["mix100-1", "2.531"]);
        t.row(["gmean", "2.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("mix"));
        assert!(lines[2].contains("mix100-1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "say \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn markdown_has_alignment_row() {
        let mut t = Table::new(["core", "p99"]);
        t.row(["0", "412"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| core | p99 |");
        assert_eq!(lines[1], "| ---: | ---: |");
        assert_eq!(lines[2], "| 0 | 412 |");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn left_aligned_columns_pad_on_the_right() {
        let mut t = Table::new(["span", "ns"]);
        t.align_left(0);
        t.row(["tick", "12"]);
        t.row(["a-longer-name", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("tick "), "{s}");
        assert!(!lines[2].ends_with(' '), "no trailing pad: {s:?}");
        let md = t.to_markdown();
        assert!(md.lines().nth(1).unwrap().contains(":---"), "{md}");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210 s");
    }

    #[test]
    fn sparkline_scales_to_range() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0]), "▁▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        assert_eq!(sparkline(&[f64::NAN, 2.0]), "·▁");
    }
}
