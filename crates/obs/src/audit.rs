//! Policy decision audit: shadow-policy comparison, demand-estimation
//! accuracy, and convergence telemetry.
//!
//! The simulator decides a bank partition every epoch. This module
//! answers three questions about those decisions, purely from data the
//! epoch loop already produces:
//!
//! 1. **Shadow policies** — what would rival policies (equal split, MCP,
//!    DBP with different estimator knobs) have allocated on the *same*
//!    profile stream? Each epoch the live plan is compared against every
//!    shadow's hypothetical plan: the *allocation distance* (symmetric
//!    difference of per-thread bank-unit sets, summed over threads), the
//!    pages resident outside the shadow's proposed partition (the
//!    migration backlog adopting that plan would create), and per-policy
//!    churn/flap counters.
//! 2. **Estimation accuracy** — the estimator's predicted bank demand
//!    for the *next* epoch is paired with what the thread actually
//!    achieved in that epoch (BLP, row-hit rate, IPC), yielding a
//!    per-thread prediction-error series and a calibration table
//!    (predicted-demand bucket × achieved BLP).
//! 3. **Convergence** — epochs until the live allocation stabilises
//!    after warmup and after each detected profile-phase shift, plus a
//!    flap-rate metric.
//!
//! The module is pure data: the `sim` crate feeds an [`AuditBuilder`]
//! one [`EpochObservation`] per repartition decision and snapshots an
//! [`AuditReport`] at the end of the run. Everything here is
//! observation-only by construction — nothing reaches back into the
//! simulation, and the byte-identity property tests in `dbp-sim` hold
//! the whole audit path to that contract.
//!
//! ## Metric definitions
//!
//! * **change** — a decision whose plan differs from the same policy's
//!   previous plan for at least one thread (`thread_changes` counts the
//!   threads individually).
//! * **flap** — a thread whose allocation returns to its value of two
//!   decisions ago after changing in between (an A→B→A toggle),
//!   counted per (thread, decision).
//! * **flap rate** — flaps / (threads × decisions).
//! * **stable** — [`STABLE_WINDOW`] consecutive decisions without a
//!   change. *Epochs-to-stable* is the number of decisions from a
//!   reference point (measurement start, or a phase shift) to the first
//!   decision of the first stable window; `None` if the run ends first.
//! * **phase shift** — a decision where a thread's profile moved sharply
//!   against the previous epoch (MPKI by > max(2.0, 30 %) or BLP
//!   by > 1.0).

use crate::json::Json;
use crate::table::Table;

/// Consecutive unchanged decisions required before the allocation counts
/// as stable.
pub const STABLE_WINDOW: u64 = 3;

/// What one thread actually achieved during one epoch (fed alongside the
/// profile the policies decided on).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileSample {
    /// Memory intensity (misses per kilo-instruction) over the epoch.
    pub mpki: f64,
    /// Achieved row-buffer hit fraction over the epoch.
    pub rbl: f64,
    /// Achieved bank-level parallelism over the epoch.
    pub blp: f64,
    /// Instructions per CPU cycle over the epoch.
    pub ipc: f64,
}

/// One shadow policy's hypothetical decision for one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowEpoch {
    /// Per-thread allocated bank units (sorted unit ids).
    pub units: Vec<Vec<u32>>,
    /// Resident pages that violate the proposed partition — the
    /// migration backlog this plan would create if adopted now.
    pub would_migrate_pages: u64,
}

/// Everything the audit layer observes about one repartition decision.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochObservation {
    /// Zero-based decision (epoch) index.
    pub epoch: u64,
    /// The live policy's plan: per-thread bank units (sorted unit ids).
    pub live_units: Vec<Vec<u32>>,
    /// Per-thread achieved behaviour during the epoch that just closed.
    pub achieved: Vec<ProfileSample>,
    /// The estimator's raw bank-unit demand prediction per thread,
    /// computed from this epoch's profile (a forecast for the next).
    pub predicted_units: Vec<u32>,
    /// One entry per shadow policy, in rack order.
    pub shadows: Vec<ShadowEpoch>,
}

/// Decision-churn counters for one policy (live or shadow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Repartition decisions observed.
    pub decisions: u64,
    /// Decisions that changed at least one thread's allocation.
    pub changes: u64,
    /// Sum over decisions of threads whose allocation changed.
    pub thread_changes: u64,
    /// A→B→A toggles (see the module docs).
    pub flaps: u64,
}

impl ChurnStats {
    /// Flaps per (thread × decision); 0 when nothing was decided.
    pub fn flap_rate(&self, threads: usize) -> f64 {
        let cells = self.decisions.saturating_mul(threads as u64);
        if cells == 0 {
            0.0
        } else {
            self.flaps as f64 / cells as f64
        }
    }
}

/// Aggregate audit of one policy across the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyAudit {
    /// Display label (e.g. `DBP`, `equal-BP`, `DBP(alpha=4)`).
    pub name: String,
    pub churn: ChurnStats,
    /// Mean per-decision allocation distance to the live plan (always 0
    /// for the live policy itself).
    pub mean_distance: f64,
    /// Largest single-decision distance to the live plan.
    pub max_distance: u64,
    /// Decisions whose plan matched the live plan exactly.
    pub agreement_epochs: u64,
    /// Total pages that violated this policy's proposed partitions.
    pub would_migrate_pages: u64,
}

/// Prediction-accuracy aggregates for one thread.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadPrediction {
    pub thread: usize,
    /// Paired (prediction, next-epoch outcome) samples.
    pub samples: u64,
    /// Mean signed error, units (predicted − realised demand).
    pub mean_err: f64,
    /// Mean absolute error, units.
    pub mean_abs_err: f64,
    /// Largest absolute error, units.
    pub max_abs_err: u64,
    /// Mean predicted demand, units.
    pub mean_predicted: f64,
    /// Mean BLP the thread actually achieved in the predicted epochs.
    pub mean_achieved_blp: f64,
    /// Mean row-hit fraction achieved in the predicted epochs.
    pub mean_achieved_rbl: f64,
    /// Mean IPC achieved in the predicted epochs.
    pub mean_achieved_ipc: f64,
}

/// One cell of the per-thread calibration table: all epochs in which
/// `predicted_units` was forecast for `thread`, against what it then
/// achieved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationRow {
    pub thread: usize,
    pub predicted_units: u32,
    pub samples: u64,
    pub mean_blp: f64,
    pub min_blp: f64,
    pub max_blp: f64,
}

/// A detected profile-phase shift and how long the live allocation took
/// to restabilise afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShift {
    /// Decision index at which the shift was detected.
    pub epoch: u64,
    pub thread: usize,
    /// Which profile dimension moved (`mpki` or `blp`).
    pub metric: String,
    /// Decisions until the first [`STABLE_WINDOW`]-long run of unchanged
    /// live decisions starting at or after the shift; `None` if the run
    /// ended first.
    pub epochs_to_restabilize: Option<u64>,
}

/// Convergence telemetry for the live policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Convergence {
    /// Total decisions observed.
    pub decisions: u64,
    /// Decision index at which measurement began (end of warmup), if the
    /// run had a measured phase.
    pub measurement_start: Option<u64>,
    /// Decisions from measurement start to the first stable window.
    pub epochs_to_stable: Option<u64>,
    /// The window length the stability metrics use.
    pub stable_window: u64,
    /// Live-policy flap rate (see [`ChurnStats::flap_rate`]).
    pub flap_rate: f64,
    pub phase_shifts: Vec<PhaseShift>,
}

/// Per-decision audit row (the exported time series).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditEpochRow {
    pub epoch: u64,
    /// Threads whose live allocation changed this decision.
    pub live_changed: Vec<usize>,
    /// Mean absolute prediction error across threads, units; `None` for
    /// the first decision (nothing to pair against yet).
    pub mean_abs_pred_error: Option<f64>,
    /// Per shadow: allocation distance to the live plan.
    pub shadow_distance: Vec<u64>,
    /// Per shadow: pages violating the shadow's proposed partition.
    pub shadow_would_migrate: Vec<u64>,
}

/// The complete audit of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    pub threads: usize,
    /// Bank units available to a single thread's allocation.
    pub max_units: u32,
    pub live: PolicyAudit,
    pub shadows: Vec<PolicyAudit>,
    pub prediction: Vec<ThreadPrediction>,
    pub calibration: Vec<CalibrationRow>,
    pub convergence: Convergence,
    pub epochs: Vec<AuditEpochRow>,
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct PredAccum {
    samples: u64,
    err_sum: f64,
    abs_err_sum: f64,
    max_abs_err: u64,
    pred_sum: f64,
    blp_sum: f64,
    rbl_sum: f64,
    ipc_sum: f64,
}

#[derive(Debug, Clone, Default)]
struct CalibAccum {
    samples: u64,
    blp_sum: f64,
    min_blp: f64,
    max_blp: f64,
}

/// Accumulates one [`EpochObservation`] per repartition decision and
/// snapshots an [`AuditReport`] on demand.
#[derive(Debug, Clone)]
pub struct AuditBuilder {
    live_name: String,
    shadow_names: Vec<String>,
    threads: usize,
    max_units: u32,
    /// Plan history per policy (index 0 = live, then shadows): the plan
    /// one and two decisions ago, seeded with the cold-start plans.
    prev: Vec<Vec<Vec<u32>>>,
    prev2: Vec<Option<Vec<Vec<u32>>>>,
    churn: Vec<ChurnStats>,
    distance_sum: Vec<u64>,
    max_distance: Vec<u64>,
    agreement: Vec<u64>,
    would_migrate: Vec<u64>,
    /// Previous decision's predictions, waiting to be paired with the
    /// next epoch's achieved profile.
    pending_pred: Option<Vec<u32>>,
    pred: Vec<PredAccum>,
    /// Calibration accumulators indexed `[thread][predicted_units]`.
    calib: Vec<Vec<CalibAccum>>,
    live_changed: Vec<bool>,
    shifts: Vec<(u64, usize, &'static str, u64)>,
    prev_achieved: Option<Vec<ProfileSample>>,
    measurement_start: Option<u64>,
    epochs: Vec<AuditEpochRow>,
    decisions: u64,
}

impl AuditBuilder {
    /// Start an audit. `cold_plans` seeds every policy's plan history
    /// (index 0 = live, then one per shadow, matching `shadow_names`) so
    /// the first real decision's change detection compares against the
    /// cold-start allocation, exactly like the simulator's own
    /// `changed_threads` accounting.
    ///
    /// # Panics
    ///
    /// Panics if `cold_plans.len() != shadow_names.len() + 1` or
    /// `max_units == 0`.
    pub fn new(
        live_name: &str,
        shadow_names: Vec<String>,
        threads: usize,
        max_units: u32,
        cold_plans: Vec<Vec<Vec<u32>>>,
    ) -> AuditBuilder {
        assert_eq!(cold_plans.len(), shadow_names.len() + 1, "one cold plan per policy");
        assert!(max_units > 0, "audit needs at least one bank unit");
        let n_policies = cold_plans.len();
        AuditBuilder {
            live_name: live_name.to_string(),
            shadow_names,
            threads,
            max_units,
            prev: cold_plans,
            prev2: vec![None; n_policies],
            churn: vec![ChurnStats::default(); n_policies],
            distance_sum: vec![0; n_policies],
            max_distance: vec![0; n_policies],
            agreement: vec![0; n_policies],
            would_migrate: vec![0; n_policies],
            pending_pred: None,
            pred: vec![PredAccum::default(); threads],
            calib: vec![vec![CalibAccum::default(); max_units as usize + 1]; threads],
            live_changed: Vec::new(),
            shifts: Vec::new(),
            prev_achieved: None,
            measurement_start: None,
            epochs: Vec::new(),
            decisions: 0,
        }
    }

    /// Record that warmup ended and `decisions` decisions had already
    /// been made when measurement began.
    pub fn note_measurement_start(&mut self, decisions: u64) {
        self.measurement_start = Some(decisions);
    }

    /// Feed one repartition decision.
    ///
    /// # Panics
    ///
    /// Panics if the observation's vectors disagree with the thread or
    /// shadow count declared at construction.
    pub fn observe(&mut self, obs: &EpochObservation) {
        let n = self.threads;
        assert_eq!(obs.live_units.len(), n, "live plan thread count");
        assert_eq!(obs.achieved.len(), n, "achieved sample thread count");
        assert_eq!(obs.predicted_units.len(), n, "prediction thread count");
        assert_eq!(obs.shadows.len(), self.shadow_names.len(), "shadow count");

        // Prediction pairing: last decision's forecast vs this epoch's
        // outcome. The realised demand is what the estimator would have
        // needed to predict to match the achieved parallelism.
        let mean_abs = self.pending_pred.take().map(|preds| {
            let mut abs_sum = 0.0;
            for (t, &pred) in preds.iter().enumerate() {
                let a = &obs.achieved[t];
                let realised = realised_units(a.blp, self.max_units);
                let err = f64::from(pred) - f64::from(realised);
                let acc = &mut self.pred[t];
                acc.samples += 1;
                acc.err_sum += err;
                acc.abs_err_sum += err.abs();
                acc.max_abs_err = acc.max_abs_err.max(err.abs().round() as u64);
                acc.pred_sum += f64::from(pred);
                acc.blp_sum += a.blp;
                acc.rbl_sum += a.rbl;
                acc.ipc_sum += a.ipc;
                abs_sum += err.abs();
                let cell = &mut self.calib[t][pred.min(self.max_units) as usize];
                if cell.samples == 0 {
                    cell.min_blp = a.blp;
                    cell.max_blp = a.blp;
                } else {
                    cell.min_blp = cell.min_blp.min(a.blp);
                    cell.max_blp = cell.max_blp.max(a.blp);
                }
                cell.samples += 1;
                cell.blp_sum += a.blp;
            }
            abs_sum / n as f64
        });
        self.pending_pred = Some(obs.predicted_units.clone());

        // Phase-shift detection against the previous epoch's profile.
        if let Some(prev) = &self.prev_achieved {
            for (t, (p, c)) in prev.iter().zip(&obs.achieved).enumerate() {
                let d_mpki = (c.mpki - p.mpki).abs();
                if d_mpki > (0.3 * p.mpki).max(2.0) {
                    self.shifts.push((obs.epoch, t, "mpki", self.decisions));
                } else if (c.blp - p.blp).abs() > 1.0 {
                    self.shifts.push((obs.epoch, t, "blp", self.decisions));
                }
            }
        }
        self.prev_achieved = Some(obs.achieved.clone());

        // Churn and flap accounting for the live policy and every shadow.
        let mut live_changed = Vec::new();
        let mut shadow_distance = Vec::new();
        let mut shadow_would_migrate = Vec::new();
        for p in 0..self.prev.len() {
            let plan: &Vec<Vec<u32>> =
                if p == 0 { &obs.live_units } else { &obs.shadows[p - 1].units };
            let churn = &mut self.churn[p];
            churn.decisions += 1;
            let mut changed_threads = 0u64;
            for t in 0..n {
                let changed = self.prev[p][t] != plan[t];
                if changed {
                    changed_threads += 1;
                    if p == 0 {
                        live_changed.push(t);
                    }
                }
                if let Some(prev2) = &self.prev2[p] {
                    if changed && prev2[t] == plan[t] {
                        churn.flaps += 1;
                    }
                }
            }
            if changed_threads > 0 {
                churn.changes += 1;
            }
            churn.thread_changes += changed_threads;
            if p > 0 {
                let s = &obs.shadows[p - 1];
                let dist: u64 =
                    (0..n).map(|t| symmetric_distance(&obs.live_units[t], &s.units[t])).sum();
                self.distance_sum[p] += dist;
                self.max_distance[p] = self.max_distance[p].max(dist);
                if dist == 0 {
                    self.agreement[p] += 1;
                }
                self.would_migrate[p] += s.would_migrate_pages;
                shadow_distance.push(dist);
                shadow_would_migrate.push(s.would_migrate_pages);
            }
            self.prev2[p] = Some(std::mem::replace(&mut self.prev[p], plan.clone()));
        }
        self.live_changed.push(!live_changed.is_empty());
        self.epochs.push(AuditEpochRow {
            epoch: obs.epoch,
            live_changed,
            mean_abs_pred_error: mean_abs,
            shadow_distance,
            shadow_would_migrate,
        });
        self.decisions += 1;
    }

    /// Decisions from `from` (a decision index) until the start of the
    /// first [`STABLE_WINDOW`]-long run of unchanged live decisions.
    fn stable_after(&self, from: u64) -> Option<u64> {
        let w = STABLE_WINDOW as usize;
        let changed = &self.live_changed;
        let start = from as usize;
        if start > changed.len() {
            return None;
        }
        changed[start..].windows(w).position(|win| win.iter().all(|&c| !c)).map(|pos| pos as u64)
    }

    /// Snapshot the report accumulated so far.
    pub fn report(&self) -> AuditReport {
        let policy_audit = |p: usize| {
            let decided = self.churn[p].decisions.max(1);
            PolicyAudit {
                name: if p == 0 {
                    self.live_name.clone()
                } else {
                    self.shadow_names[p - 1].clone()
                },
                churn: self.churn[p],
                mean_distance: self.distance_sum[p] as f64 / decided as f64,
                max_distance: self.max_distance[p],
                agreement_epochs: self.agreement[p],
                would_migrate_pages: self.would_migrate[p],
            }
        };
        let prediction = (0..self.threads)
            .map(|t| {
                let a = &self.pred[t];
                let n = a.samples.max(1) as f64;
                ThreadPrediction {
                    thread: t,
                    samples: a.samples,
                    mean_err: a.err_sum / n,
                    mean_abs_err: a.abs_err_sum / n,
                    max_abs_err: a.max_abs_err,
                    mean_predicted: a.pred_sum / n,
                    mean_achieved_blp: a.blp_sum / n,
                    mean_achieved_rbl: a.rbl_sum / n,
                    mean_achieved_ipc: a.ipc_sum / n,
                }
            })
            .collect();
        let mut calibration = Vec::new();
        for t in 0..self.threads {
            for u in 0..=self.max_units {
                let c = &self.calib[t][u as usize];
                if c.samples > 0 {
                    calibration.push(CalibrationRow {
                        thread: t,
                        predicted_units: u,
                        samples: c.samples,
                        mean_blp: c.blp_sum / c.samples as f64,
                        min_blp: c.min_blp,
                        max_blp: c.max_blp,
                    });
                }
            }
        }
        let convergence = Convergence {
            decisions: self.decisions,
            measurement_start: self.measurement_start,
            epochs_to_stable: self.measurement_start.and_then(|s| self.stable_after(s)),
            stable_window: STABLE_WINDOW,
            flap_rate: self.churn[0].flap_rate(self.threads),
            phase_shifts: self
                .shifts
                .iter()
                .map(|&(epoch, thread, metric, decision)| PhaseShift {
                    epoch,
                    thread,
                    metric: metric.to_string(),
                    epochs_to_restabilize: self.stable_after(decision),
                })
                .collect(),
        };
        AuditReport {
            threads: self.threads,
            max_units: self.max_units,
            live: policy_audit(0),
            shadows: (1..self.prev.len()).map(policy_audit).collect(),
            prediction,
            calibration,
            convergence,
            epochs: self.epochs.clone(),
        }
    }
}

/// The bank-unit demand the achieved BLP retrospectively justified: the
/// estimator's own `ceil(alpha × blp)` rule with its default gain,
/// clamped to the machine. Pairing predictions against this puts the
/// error in the same unit the policy allocates in.
fn realised_units(blp: f64, max_units: u32) -> u32 {
    (2.0 * blp.max(1.0)).ceil().min(f64::from(max_units)).max(1.0) as u32
}

/// Cardinality of the symmetric difference of two sorted unit lists.
fn symmetric_distance(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut d) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                d += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                d += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    d + (a.len() - i) as u64 + (b.len() - j) as u64
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

fn churn_json(c: &ChurnStats) -> Json {
    Json::obj([
        ("decisions", Json::uint(c.decisions)),
        ("changes", Json::uint(c.changes)),
        ("thread_changes", Json::uint(c.thread_changes)),
        ("flaps", Json::uint(c.flaps)),
    ])
}

fn policy_json(p: &PolicyAudit) -> Json {
    Json::obj([
        ("name", Json::str(&p.name)),
        ("churn", churn_json(&p.churn)),
        ("mean_distance", Json::num(p.mean_distance)),
        ("max_distance", Json::uint(p.max_distance)),
        ("agreement_epochs", Json::uint(p.agreement_epochs)),
        ("would_migrate_pages", Json::uint(p.would_migrate_pages)),
    ])
}

impl AuditReport {
    /// Render as an order-preserving JSON object (the body of
    /// `export::audit_document`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::uint(self.threads as u64)),
            ("max_units", Json::uint(u64::from(self.max_units))),
            ("live", policy_json(&self.live)),
            ("shadows", Json::arr(self.shadows.iter().map(policy_json))),
            (
                "prediction",
                Json::arr(self.prediction.iter().map(|p| {
                    Json::obj([
                        ("thread", Json::uint(p.thread as u64)),
                        ("samples", Json::uint(p.samples)),
                        ("mean_err", Json::num(p.mean_err)),
                        ("mean_abs_err", Json::num(p.mean_abs_err)),
                        ("max_abs_err", Json::uint(p.max_abs_err)),
                        ("mean_predicted", Json::num(p.mean_predicted)),
                        ("mean_achieved_blp", Json::num(p.mean_achieved_blp)),
                        ("mean_achieved_rbl", Json::num(p.mean_achieved_rbl)),
                        ("mean_achieved_ipc", Json::num(p.mean_achieved_ipc)),
                    ])
                })),
            ),
            (
                "calibration",
                Json::arr(self.calibration.iter().map(|c| {
                    Json::obj([
                        ("thread", Json::uint(c.thread as u64)),
                        ("predicted_units", Json::uint(u64::from(c.predicted_units))),
                        ("samples", Json::uint(c.samples)),
                        ("mean_blp", Json::num(c.mean_blp)),
                        ("min_blp", Json::num(c.min_blp)),
                        ("max_blp", Json::num(c.max_blp)),
                    ])
                })),
            ),
            (
                "convergence",
                Json::obj([
                    ("decisions", Json::uint(self.convergence.decisions)),
                    (
                        "measurement_start",
                        self.convergence.measurement_start.map_or(Json::Null, Json::uint),
                    ),
                    (
                        "epochs_to_stable",
                        self.convergence.epochs_to_stable.map_or(Json::Null, Json::uint),
                    ),
                    ("stable_window", Json::uint(self.convergence.stable_window)),
                    ("flap_rate", Json::num(self.convergence.flap_rate)),
                    (
                        "phase_shifts",
                        Json::arr(self.convergence.phase_shifts.iter().map(|s| {
                            Json::obj([
                                ("epoch", Json::uint(s.epoch)),
                                ("thread", Json::uint(s.thread as u64)),
                                ("metric", Json::str(&s.metric)),
                                (
                                    "epochs_to_restabilize",
                                    s.epochs_to_restabilize.map_or(Json::Null, Json::uint),
                                ),
                            ])
                        })),
                    ),
                ]),
            ),
            (
                "epoch_rows",
                Json::arr(self.epochs.iter().map(|e| {
                    Json::obj([
                        ("epoch", Json::uint(e.epoch)),
                        (
                            "live_changed",
                            Json::arr(e.live_changed.iter().map(|&t| Json::uint(t as u64))),
                        ),
                        (
                            "mean_abs_pred_error",
                            e.mean_abs_pred_error.map_or(Json::Null, Json::num),
                        ),
                        (
                            "shadow_distance",
                            Json::arr(e.shadow_distance.iter().map(|&d| Json::uint(d))),
                        ),
                        (
                            "shadow_would_migrate",
                            Json::arr(e.shadow_would_migrate.iter().map(|&d| Json::uint(d))),
                        ),
                    ])
                })),
            ),
        ])
    }

    /// Parse a report back out of a document produced by
    /// [`AuditReport::to_json`] / `export::audit_document`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(doc: &Json) -> Result<AuditReport, String> {
        let uint = |j: &Json, k: &str| -> Result<u64, String> {
            j.get(k)
                .and_then(Json::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("missing numeric `{k}`"))
        };
        let num = |j: &Json, k: &str| -> Result<f64, String> {
            j.get(k).and_then(Json::as_num).ok_or_else(|| format!("missing numeric `{k}`"))
        };
        let opt_uint = |j: &Json, k: &str| j.get(k).and_then(Json::as_num).map(|n| n as u64);
        let arr = |j: &Json, k: &str| -> Result<Vec<Json>, String> {
            j.get(k)
                .and_then(Json::as_arr)
                .map(<[Json]>::to_vec)
                .ok_or_else(|| format!("missing array `{k}`"))
        };
        let churn = |j: &Json| -> Result<ChurnStats, String> {
            let c = j.get("churn").ok_or("missing `churn`")?;
            Ok(ChurnStats {
                decisions: uint(c, "decisions")?,
                changes: uint(c, "changes")?,
                thread_changes: uint(c, "thread_changes")?,
                flaps: uint(c, "flaps")?,
            })
        };
        let policy = |j: &Json| -> Result<PolicyAudit, String> {
            Ok(PolicyAudit {
                name: j
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("missing policy `name`")?
                    .to_string(),
                churn: churn(j)?,
                mean_distance: num(j, "mean_distance")?,
                max_distance: uint(j, "max_distance")?,
                agreement_epochs: uint(j, "agreement_epochs")?,
                would_migrate_pages: uint(j, "would_migrate_pages")?,
            })
        };
        let conv = doc.get("convergence").ok_or("missing `convergence`")?;
        Ok(AuditReport {
            threads: uint(doc, "threads")? as usize,
            max_units: uint(doc, "max_units")? as u32,
            live: policy(doc.get("live").ok_or("missing `live`")?)?,
            shadows: arr(doc, "shadows")?.iter().map(policy).collect::<Result<_, _>>()?,
            prediction: arr(doc, "prediction")?
                .iter()
                .map(|p| {
                    Ok(ThreadPrediction {
                        thread: uint(p, "thread")? as usize,
                        samples: uint(p, "samples")?,
                        mean_err: num(p, "mean_err")?,
                        mean_abs_err: num(p, "mean_abs_err")?,
                        max_abs_err: uint(p, "max_abs_err")?,
                        mean_predicted: num(p, "mean_predicted")?,
                        mean_achieved_blp: num(p, "mean_achieved_blp")?,
                        mean_achieved_rbl: num(p, "mean_achieved_rbl")?,
                        mean_achieved_ipc: num(p, "mean_achieved_ipc")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            calibration: arr(doc, "calibration")?
                .iter()
                .map(|c| {
                    Ok(CalibrationRow {
                        thread: uint(c, "thread")? as usize,
                        predicted_units: uint(c, "predicted_units")? as u32,
                        samples: uint(c, "samples")?,
                        mean_blp: num(c, "mean_blp")?,
                        min_blp: num(c, "min_blp")?,
                        max_blp: num(c, "max_blp")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            convergence: Convergence {
                decisions: uint(conv, "decisions")?,
                measurement_start: opt_uint(conv, "measurement_start"),
                epochs_to_stable: opt_uint(conv, "epochs_to_stable"),
                stable_window: uint(conv, "stable_window")?,
                flap_rate: num(conv, "flap_rate")?,
                phase_shifts: arr(conv, "phase_shifts")?
                    .iter()
                    .map(|s| {
                        Ok(PhaseShift {
                            epoch: uint(s, "epoch")?,
                            thread: uint(s, "thread")? as usize,
                            metric: s
                                .get("metric")
                                .and_then(Json::as_str)
                                .ok_or("missing shift `metric`")?
                                .to_string(),
                            epochs_to_restabilize: opt_uint(s, "epochs_to_restabilize"),
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
            epochs: arr(doc, "epoch_rows")?
                .iter()
                .map(|e| {
                    let units = |k: &str| -> Result<Vec<u64>, String> {
                        arr(e, k)?
                            .iter()
                            .map(|v| {
                                v.as_num()
                                    .map(|n| n as u64)
                                    .ok_or_else(|| format!("non-numeric entry in `{k}`"))
                            })
                            .collect()
                    };
                    Ok(AuditEpochRow {
                        epoch: uint(e, "epoch")?,
                        live_changed: units("live_changed")?
                            .into_iter()
                            .map(|t| t as usize)
                            .collect(),
                        mean_abs_pred_error: e.get("mean_abs_pred_error").and_then(Json::as_num),
                        shadow_distance: units("shadow_distance")?,
                        shadow_would_migrate: units("shadow_would_migrate")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        })
    }
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Live + shadow policy comparison: churn, flaps, distance, migration
/// pressure.
pub fn policy_table(r: &AuditReport) -> Table {
    let mut t = Table::new([
        "policy",
        "decisions",
        "changes",
        "thread-chg",
        "flaps",
        "flap rate",
        "mean dist",
        "max dist",
        "agree",
        "would-migrate",
    ]);
    t.align_left(0);
    for (i, p) in std::iter::once(&r.live).chain(&r.shadows).enumerate() {
        t.row([
            if i == 0 { format!("{} (live)", p.name) } else { p.name.clone() },
            p.churn.decisions.to_string(),
            p.churn.changes.to_string(),
            p.churn.thread_changes.to_string(),
            p.churn.flaps.to_string(),
            format!("{:.3}", p.churn.flap_rate(r.threads)),
            if i == 0 { "-".to_string() } else { format!("{:.2}", p.mean_distance) },
            if i == 0 { "-".to_string() } else { p.max_distance.to_string() },
            if i == 0 { "-".to_string() } else { p.agreement_epochs.to_string() },
            if i == 0 { "-".to_string() } else { p.would_migrate_pages.to_string() },
        ]);
    }
    t
}

/// Per-thread demand-prediction accuracy.
pub fn prediction_table(r: &AuditReport) -> Table {
    let mut t = Table::new([
        "thread",
        "samples",
        "mean pred",
        "mean BLP",
        "mean RBL",
        "mean IPC",
        "mean err",
        "mean |err|",
        "max |err|",
    ]);
    for p in &r.prediction {
        t.row([
            p.thread.to_string(),
            p.samples.to_string(),
            format!("{:.2}", p.mean_predicted),
            format!("{:.2}", p.mean_achieved_blp),
            format!("{:.2}", p.mean_achieved_rbl),
            format!("{:.3}", p.mean_achieved_ipc),
            format!("{:+.2}", p.mean_err),
            format!("{:.2}", p.mean_abs_err),
            p.max_abs_err.to_string(),
        ]);
    }
    t
}

/// The calibration table: predicted-demand bucket × achieved BLP.
pub fn calibration_table(r: &AuditReport) -> Table {
    let mut t =
        Table::new(["thread", "predicted units", "samples", "mean BLP", "min BLP", "max BLP"]);
    for c in &r.calibration {
        t.row([
            c.thread.to_string(),
            c.predicted_units.to_string(),
            c.samples.to_string(),
            format!("{:.2}", c.mean_blp),
            format!("{:.2}", c.min_blp),
            format!("{:.2}", c.max_blp),
        ]);
    }
    t
}

/// Phase shifts and restabilisation times.
pub fn phase_shift_table(r: &AuditReport) -> Table {
    let mut t = Table::new(["epoch", "thread", "metric", "epochs to restabilize"]);
    t.align_left(2);
    for s in &r.convergence.phase_shifts {
        t.row([
            s.epoch.to_string(),
            s.thread.to_string(),
            s.metric.clone(),
            s.epochs_to_restabilize.map_or_else(|| "never".to_string(), |e| e.to_string()),
        ]);
    }
    t
}

/// One-paragraph convergence summary.
pub fn convergence_summary(r: &AuditReport) -> String {
    let c = &r.convergence;
    let stable = match (c.measurement_start, c.epochs_to_stable) {
        (None, _) => "no measured phase".to_string(),
        (Some(s), Some(e)) => {
            format!("stable {e} decision(s) after measurement start (decision {s})")
        }
        (Some(s), None) => format!("never stable after measurement start (decision {s})"),
    };
    format!(
        "convergence: {} decision(s); {stable}; stable window {}; live flap rate {:.3}; {} phase shift(s)\n",
        c.decisions,
        c.stable_window,
        c.flap_rate,
        c.phase_shifts.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(units: &[&[u32]]) -> Vec<Vec<u32>> {
        units.iter().map(|u| u.to_vec()).collect()
    }

    fn builder2() -> AuditBuilder {
        // Two threads, 4 units, live + one shadow, both cold-started on
        // an equal split.
        let cold = plan(&[&[0, 1], &[2, 3]]);
        AuditBuilder::new("DBP", vec!["equal-BP".to_string()], 2, 4, vec![cold.clone(), cold])
    }

    fn obs(
        epoch: u64,
        live: Vec<Vec<u32>>,
        shadow: Vec<Vec<u32>>,
        blp: [f64; 2],
        pred: [u32; 2],
    ) -> EpochObservation {
        EpochObservation {
            epoch,
            live_units: live,
            achieved: blp
                .iter()
                .map(|&b| ProfileSample { mpki: 10.0, rbl: 0.5, blp: b, ipc: 0.7 })
                .collect(),
            predicted_units: pred.to_vec(),
            shadows: vec![ShadowEpoch { units: shadow, would_migrate_pages: 5 }],
        }
    }

    #[test]
    fn symmetric_distance_counts_both_sides() {
        assert_eq!(symmetric_distance(&[0, 1], &[0, 1]), 0);
        assert_eq!(symmetric_distance(&[0, 1], &[1, 2]), 2);
        assert_eq!(symmetric_distance(&[], &[4, 5, 6]), 3);
        assert_eq!(symmetric_distance(&[0, 1, 2], &[3]), 4);
    }

    #[test]
    fn distance_and_agreement_accumulate() {
        let mut b = builder2();
        // Shadow agrees at epoch 0, diverges by 2 units/thread at epoch 1.
        b.observe(&obs(
            0,
            plan(&[&[0, 1], &[2, 3]]),
            plan(&[&[0, 1], &[2, 3]]),
            [1.0, 1.0],
            [1, 1],
        ));
        b.observe(&obs(
            1,
            plan(&[&[0, 1], &[2, 3]]),
            plan(&[&[0, 2], &[1, 3]]),
            [1.0, 1.0],
            [1, 1],
        ));
        let r = b.report();
        let s = &r.shadows[0];
        assert_eq!(s.agreement_epochs, 1);
        assert_eq!(s.max_distance, 4); // threads 0 and 1 each differ by 2
        assert!((s.mean_distance - 2.0).abs() < 1e-12);
        assert_eq!(s.would_migrate_pages, 10);
        assert_eq!(r.epochs.len(), 2);
        assert_eq!(r.epochs[1].shadow_distance, vec![4]);
    }

    #[test]
    fn flaps_require_a_b_a_toggle() {
        let mut b = builder2();
        let a = plan(&[&[0, 1], &[2, 3]]);
        let c = plan(&[&[0, 1, 2], &[3]]);
        // live: cold=A, then A (no change), C (change), A (flap!), A.
        b.observe(&obs(0, a.clone(), a.clone(), [1.0, 1.0], [1, 1]));
        b.observe(&obs(1, c.clone(), a.clone(), [1.0, 1.0], [1, 1]));
        b.observe(&obs(2, a.clone(), a.clone(), [1.0, 1.0], [1, 1]));
        b.observe(&obs(3, a.clone(), a.clone(), [1.0, 1.0], [1, 1]));
        let r = b.report();
        // Both threads toggled A->C->A: two flaps at decision 2.
        assert_eq!(r.live.churn.flaps, 2);
        assert_eq!(r.live.churn.changes, 2);
        assert_eq!(r.live.churn.thread_changes, 4);
        assert_eq!(r.shadows[0].churn.changes, 0, "constant shadow never changes");
        assert!((r.convergence.flap_rate - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn predictions_pair_with_the_next_epoch() {
        let mut b = builder2();
        let a = plan(&[&[0, 1], &[2, 3]]);
        // Epoch 0 predicts 4 units for thread 0; epoch 1's achieved BLP
        // of 1.0 realises ceil(2*max(1,1))=2 units -> error +2.
        b.observe(&obs(0, a.clone(), a.clone(), [1.0, 1.0], [4, 1]));
        b.observe(&obs(1, a.clone(), a.clone(), [1.0, 2.0], [4, 1]));
        let r = b.report();
        assert_eq!(r.epochs[0].mean_abs_pred_error, None, "first decision pairs nothing");
        let p0 = &r.prediction[0];
        assert_eq!(p0.samples, 1);
        assert!((p0.mean_err - 2.0).abs() < 1e-12);
        assert!((p0.mean_abs_err - 2.0).abs() < 1e-12);
        assert_eq!(p0.max_abs_err, 2);
        // Thread 1 predicted 1, realised ceil(2*2)=4 -> error -3.
        let p1 = &r.prediction[1];
        assert!((p1.mean_err + 3.0).abs() < 1e-12);
        // Calibration: thread 0's bucket 4 saw achieved BLP 1.0.
        let c = r.calibration.iter().find(|c| c.thread == 0 && c.predicted_units == 4).unwrap();
        assert_eq!(c.samples, 1);
        assert!((c.mean_blp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convergence_counts_epochs_to_stable_window() {
        let mut b = builder2();
        let a = plan(&[&[0, 1], &[2, 3]]);
        let c = plan(&[&[0, 1, 2], &[3]]);
        // Decisions: change, change, then quiet. Measurement starts at
        // decision 1 -> one more changing decision, then stability.
        b.observe(&obs(0, c.clone(), a.clone(), [1.0, 1.0], [1, 1]));
        b.note_measurement_start(1);
        b.observe(&obs(1, a.clone(), a.clone(), [1.0, 1.0], [1, 1]));
        for e in 2..6 {
            b.observe(&obs(e, a.clone(), a.clone(), [1.0, 1.0], [1, 1]));
        }
        let r = b.report();
        assert_eq!(r.convergence.measurement_start, Some(1));
        // Decision 1 changed (C->A); decisions 2.. are unchanged, so the
        // stable window starts 1 decision after measurement start.
        assert_eq!(r.convergence.epochs_to_stable, Some(1));
    }

    #[test]
    fn never_stable_reports_none() {
        let mut b = builder2();
        let a = plan(&[&[0, 1], &[2, 3]]);
        let c = plan(&[&[0, 1, 2], &[3]]);
        b.note_measurement_start(0);
        for e in 0..6 {
            let p = if e % 2 == 0 { c.clone() } else { a.clone() };
            b.observe(&obs(e, p, a.clone(), [1.0, 1.0], [1, 1]));
        }
        let r = b.report();
        assert_eq!(r.convergence.epochs_to_stable, None);
        assert!(r.live.churn.flaps > 0, "alternating plans are flaps");
    }

    #[test]
    fn phase_shift_detection_and_restabilisation() {
        let mut b = builder2();
        let a = plan(&[&[0, 1], &[2, 3]]);
        let c = plan(&[&[0, 1, 2], &[3]]);
        let calm = |e| obs(e, a.clone(), a.clone(), [1.0, 1.0], [1, 1]);
        b.observe(&calm(0));
        // Thread 0's MPKI jumps 10 -> 30 at epoch 1; the live plan
        // reacts for one decision, then settles.
        let mut shifted = obs(1, c.clone(), a.clone(), [1.0, 1.0], [1, 1]);
        shifted.achieved[0].mpki = 30.0;
        b.observe(&shifted);
        let mut after = obs(2, c.clone(), a.clone(), [1.0, 1.0], [1, 1]);
        after.achieved[0].mpki = 30.0;
        b.observe(&after);
        for e in 3..6 {
            let mut o = obs(e, c.clone(), a.clone(), [1.0, 1.0], [1, 1]);
            o.achieved[0].mpki = 30.0;
            b.observe(&o);
        }
        let r = b.report();
        let shift = r.convergence.phase_shifts.iter().find(|s| s.metric == "mpki").unwrap();
        assert_eq!(shift.epoch, 1);
        assert_eq!(shift.thread, 0);
        // Decision 1 changed the plan; decisions 2.. are quiet.
        assert_eq!(shift.epochs_to_restabilize, Some(1));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut b = builder2();
        let a = plan(&[&[0, 1], &[2, 3]]);
        let c = plan(&[&[0, 1, 2], &[3]]);
        b.observe(&obs(0, a.clone(), c.clone(), [1.0, 2.5], [4, 1]));
        b.note_measurement_start(1);
        let mut shifted = obs(1, c.clone(), a.clone(), [3.0, 1.0], [2, 2]);
        shifted.achieved[1].mpki = 40.0;
        b.observe(&shifted);
        b.observe(&obs(2, c.clone(), a.clone(), [3.0, 1.0], [2, 2]));
        let r = b.report();
        let doc = r.to_json();
        let text = doc.to_json();
        let parsed = crate::json::parse(&text).expect("audit JSON parses");
        let back = AuditReport::from_json(&parsed).expect("audit JSON loads");
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_names_missing_fields() {
        let doc = crate::json::parse(r#"{"threads": 2}"#).unwrap();
        let err = AuditReport::from_json(&doc).unwrap_err();
        assert!(err.contains("convergence"), "{err}");
        let doc = crate::json::parse(r#"{"threads": 2, "convergence": {}}"#).unwrap();
        let err = AuditReport::from_json(&doc).unwrap_err();
        assert!(err.contains("max_units"), "{err}");
    }

    #[test]
    fn tables_render_every_policy_and_thread() {
        let mut b = builder2();
        let a = plan(&[&[0, 1], &[2, 3]]);
        b.observe(&obs(0, a.clone(), a.clone(), [1.0, 1.0], [2, 1]));
        b.observe(&obs(1, a.clone(), a.clone(), [1.5, 1.0], [2, 1]));
        let r = b.report();
        assert_eq!(policy_table(&r).len(), 2);
        assert_eq!(prediction_table(&r).len(), 2);
        assert!(!calibration_table(&r).is_empty());
        let summary = convergence_summary(&r);
        assert!(summary.contains("decision(s)"), "{summary}");
    }

    #[test]
    fn realised_units_clamps_to_machine() {
        assert_eq!(realised_units(0.0, 8), 2); // floor at blp 1.0
        assert_eq!(realised_units(2.4, 8), 5);
        assert_eq!(realised_units(100.0, 8), 8);
    }
}
