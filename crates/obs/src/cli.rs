//! Tiny shared argument parser for the observability bins.
//!
//! `jsonlint`, `dbpreport`, `dbpprof`, and `dbpaudit` all take the same
//! shape of command line — a few boolean flags, a few valued options
//! (possibly repeated), and positional file paths with stdin as the
//! fallback — and used to hand-roll it separately. A [`CliSpec`]
//! declares the surface once; [`CliSpec::parse_or_exit`] gives every bin
//! the same behaviour: `--help`/`-h` prints a uniformly formatted help
//! text to stdout and exits 0, a usage error goes to stderr and exits 2.
//!
//! The parser itself ([`CliSpec::try_parse`]) is pure and fully
//! testable: it never touches the process environment or exits.

/// A boolean flag (`--md`) or valued option (`--chrome <path>`).
#[derive(Debug, Clone, Copy)]
pub struct Arg {
    /// The spelling, including leading dashes (`"--require-key"`).
    pub name: &'static str,
    /// Placeholder for the value in help output; empty for flags.
    pub value: &'static str,
    /// One-line description for help output.
    pub help: &'static str,
}

impl Arg {
    /// A boolean flag.
    pub const fn flag(name: &'static str, help: &'static str) -> Arg {
        Arg { name, value: "", help }
    }

    /// An option that consumes the next argument as its value.
    pub const fn opt(name: &'static str, value: &'static str, help: &'static str) -> Arg {
        Arg { name, value, help }
    }

    const fn takes_value(&self) -> bool {
        !self.value.is_empty()
    }
}

/// Declarative description of a bin's command-line surface.
#[derive(Debug, Clone, Copy)]
pub struct CliSpec {
    /// Binary name, used in help and error messages.
    pub bin: &'static str,
    /// One-line summary shown at the top of `--help`.
    pub about: &'static str,
    /// Description of the positional arguments (e.g.
    /// `"[file ...]  JSON documents (default: stdin)"`); empty if the
    /// bin takes none.
    pub positional: &'static str,
    /// Accepted flags and options, in help order.
    pub args: &'static [Arg],
}

/// The outcome of parsing: either the parsed arguments or a request for
/// help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    Parsed(Parsed),
    HelpRequested,
}

/// Parsed command line: flag/option occurrences plus positional files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Parsed {
    seen: Vec<(String, Option<String>)>,
    /// Positional arguments in order.
    pub files: Vec<String>,
}

impl Parsed {
    /// Was this flag given at least once?
    pub fn flag(&self, name: &str) -> bool {
        self.seen.iter().any(|(n, _)| n == name)
    }

    /// The last value given for this option, if any.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.seen.iter().rev().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    /// Every value given for this (repeatable) option, in order.
    pub fn options(&self, name: &str) -> Vec<&str> {
        self.seen.iter().filter(|(n, _)| n == name).filter_map(|(_, v)| v.as_deref()).collect()
    }
}

impl CliSpec {
    /// Render the uniform help text.
    pub fn help(&self) -> String {
        let mut out = format!("{} — {}\n\nusage: {}", self.bin, self.about, self.bin);
        if !self.args.is_empty() {
            out.push_str(" [options]");
        }
        if !self.positional.is_empty() {
            // `positional` is "<placeholder>  <description>" — the usage
            // line shows just the placeholder.
            let head = self.positional.split("  ").next().unwrap_or("").trim();
            out.push(' ');
            out.push_str(head);
        }
        out.push('\n');
        if !self.positional.is_empty() {
            out.push_str(&format!("\n  {}\n", self.positional));
        }
        if !self.args.is_empty() {
            out.push_str("\noptions:\n");
            let width = self
                .args
                .iter()
                .map(|a| a.name.len() + if a.takes_value() { a.value.len() + 3 } else { 0 })
                .max()
                .unwrap_or(0)
                .max("--help".len());
            for a in self.args {
                let lhs = if a.takes_value() {
                    format!("{} <{}>", a.name, a.value)
                } else {
                    a.name.to_string()
                };
                out.push_str(&format!("  {lhs:width$}  {}\n", a.help));
            }
            out.push_str(&format!("  {:width$}  {}\n", "--help", "show this help"));
        }
        out
    }

    /// Parse an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a one-line usage error for an unknown flag or a missing
    /// option value.
    pub fn try_parse<I>(&self, args: I) -> Result<Outcome, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut parsed = Parsed::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if arg == "--help" || arg == "-h" {
                return Ok(Outcome::HelpRequested);
            }
            if let Some(spec) = self.args.iter().find(|a| a.name == arg) {
                if spec.takes_value() {
                    let value = args
                        .next()
                        .ok_or_else(|| format!("{}: {} needs a value", self.bin, arg))?;
                    parsed.seen.push((arg, Some(value)));
                } else {
                    parsed.seen.push((arg, None));
                }
            } else if arg.starts_with('-') && arg != "-" {
                return Err(format!("{}: unknown argument `{arg}` (try --help)", self.bin));
            } else {
                parsed.files.push(arg);
            }
        }
        Ok(Outcome::Parsed(parsed))
    }

    /// Parse the process arguments; print help to stdout and exit 0 on
    /// `--help`, print a usage error to stderr and exit 2 on a bad
    /// command line.
    pub fn parse_or_exit(&self) -> Parsed {
        match self.try_parse(std::env::args().skip(1)) {
            Ok(Outcome::Parsed(p)) => p,
            Ok(Outcome::HelpRequested) => {
                print!("{}", self.help());
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

/// Read every named file — or stdin when `files` is empty — as
/// `(label, contents)` pairs. IO failures are reported per input
/// (messages carry no bin prefix; callers add their own), so bins can
/// keep going and exit non-zero at the end.
pub fn read_inputs(files: &[String]) -> Vec<(String, Result<String, String>)> {
    if files.is_empty() {
        let mut text = String::new();
        let result = std::io::Read::read_to_string(&mut std::io::stdin(), &mut text)
            .map(|_| text)
            .map_err(|e| format!("<stdin>: {e}"));
        return vec![("<stdin>".to_string(), result)];
    }
    files
        .iter()
        .map(|path| {
            let result = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"));
            (path.clone(), result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CliSpec = CliSpec {
        bin: "testbin",
        about: "exercise the parser",
        positional: "[file ...]  JSON documents (default: stdin)",
        args: &[
            Arg::flag("--md", "markdown output"),
            Arg::opt("--require-key", "key", "require a top-level key (repeatable)"),
            Arg::opt("--chrome", "path", "write a Chrome trace"),
        ],
    };

    fn parse(args: &[&str]) -> Result<Outcome, String> {
        SPEC.try_parse(args.iter().map(|s| (*s).to_string()))
    }

    fn parsed(args: &[&str]) -> Parsed {
        match parse(args).unwrap() {
            Outcome::Parsed(p) => p,
            Outcome::HelpRequested => panic!("unexpected help"),
        }
    }

    #[test]
    fn flags_options_and_files_separate() {
        let p = parsed(&["--md", "a.json", "--require-key", "x", "b.json"]);
        assert!(p.flag("--md"));
        assert!(!p.flag("--chrome"));
        assert_eq!(p.files, vec!["a.json", "b.json"]);
        assert_eq!(p.options("--require-key"), vec!["x"]);
    }

    #[test]
    fn repeated_options_keep_order_and_last_wins_for_option() {
        let p =
            parsed(&["--require-key", "a", "--require-key", "b", "--chrome", "x", "--chrome", "y"]);
        assert_eq!(p.options("--require-key"), vec!["a", "b"]);
        assert_eq!(p.option("--chrome"), Some("y"));
    }

    #[test]
    fn help_short_and_long() {
        assert_eq!(parse(&["-h"]).unwrap(), Outcome::HelpRequested);
        assert_eq!(parse(&["a.json", "--help"]).unwrap(), Outcome::HelpRequested);
    }

    #[test]
    fn unknown_flag_and_missing_value_are_usage_errors() {
        let err = parse(&["--nope"]).unwrap_err();
        assert!(err.contains("unknown argument `--nope`"), "{err}");
        let err = parse(&["--require-key"]).unwrap_err();
        assert!(err.contains("--require-key needs a value"), "{err}");
    }

    #[test]
    fn bare_dash_is_positional() {
        let p = parsed(&["-"]);
        assert_eq!(p.files, vec!["-"]);
    }

    #[test]
    fn help_text_lists_every_arg() {
        let h = SPEC.help();
        assert!(h.contains("testbin — exercise the parser"), "{h}");
        for a in SPEC.args {
            assert!(h.contains(a.name), "missing {} in:\n{h}", a.name);
        }
        assert!(h.contains("--help"), "{h}");
        assert!(h.contains("default: stdin"), "{h}");
    }
}
