//! A minimal JSON document model with a writer and a parser.
//!
//! The workspace is hermetic (no external crates), so telemetry exports
//! carry their own JSON support. The model is deliberately small:
//!
//! - Objects preserve insertion order (exports are diffable).
//! - All numbers are `f64`; integers survive exactly up to 2^53, which
//!   covers every counter the simulator produces.
//! - Non-finite floats (`NaN`, `±inf`) have no JSON spelling and are
//!   written as `null`, the same convention browsers' `JSON.stringify`
//!   uses.
//!
//! The parser exists so tests (and the `jsonlint` binary used by CI's
//! trace-export smoke test) can validate what the writer produced; it
//! accepts exactly RFC 8259 documents.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers, integral or not. Non-finite values render as `null`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order (keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer (exact up to 2^53).
    pub fn uint(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// A float value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Look up a key in an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` on non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean value (`None` on non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value (`None` on non-numbers).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value (`None` on non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialise to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the compact serialisation to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9e15 {
        // Integral: render without the trailing ".0" Rust would produce.
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed, with the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns the first syntax violation with its byte offset.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next escape/quote.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Read exactly four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        parse(&v.to_json()).expect("writer output must parse")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::num(0.0),
            Json::num(-17.25),
            Json::uint(9_007_199_254_740_992), // 2^53
            Json::str("plain"),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote \" backslash \\ newline \n tab \t cr \r bell \u{7} unicode \u{1F600}";
        let v = Json::str(nasty);
        assert_eq!(round_trip(&v), v);
        // The writer must not emit raw control bytes.
        let text = v.to_json();
        assert!(!text.bytes().any(|b| b < 0x20));
        assert!(text.contains("\\u0007"));
    }

    #[test]
    fn nested_arrays_and_objects_round_trip() {
        let v = Json::obj([
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<&str>([])),
            (
                "nested",
                Json::arr([
                    Json::obj([("k", Json::arr([Json::num(1.0), Json::Null]))]),
                    Json::arr([Json::arr([Json::Bool(false)])]),
                ]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::obj([("z", Json::uint(1)), ("a", Json::uint(2))]);
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn non_finite_floats_write_as_null() {
        assert_eq!(Json::num(f64::NAN).to_json(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_json(), "null");
        assert_eq!(Json::num(f64::NEG_INFINITY).to_json(), "null");
        // And the document they are embedded in still parses.
        let doc = Json::arr([Json::num(f64::NAN), Json::num(1.5)]);
        assert_eq!(parse(&doc.to_json()).unwrap(), Json::arr([Json::Null, Json::num(1.5)]));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::uint(42).to_json(), "42");
        assert_eq!(Json::num(-3.0).to_json(), "-3");
        assert_eq!(Json::num(2.5).to_json(), "2.5");
    }

    #[test]
    fn parser_accepts_standard_syntax() {
        let v = parse(r#" { "a" : [ 1 , 2.5e2 , -0.5 , "x\u0041\ud83d\ude00" ] , "b" : null } "#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::num(250.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[3].as_str().unwrap(), "xA\u{1F600}");
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "nul",
            "[1] garbage",
            "{'a':1}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parser_rejects_malformed_string_escapes() {
        for bad in [
            r#""\u""#,           // \u with no digits
            r#""\u12""#,         // \u with too few digits
            r#""\u12g4""#,       // non-hex digit
            r#""\u123"#,         // escape truncated with the document
            r#""\udc00""#,       // lone low surrogate
            r#""\ud800A""#,      // high surrogate + non-surrogate
            r#""\ud800\ud800""#, // high surrogate + high surrogate
            r#""\ud83d"#,        // high surrogate, then EOF
            r#""\ud83dx""#,      // high surrogate not followed by \u
            r#""\x41""#,         // invalid escape letter
            "\"\\\"",            // backslash, then EOF
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        // The adjacent well-formed spellings all still parse.
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn parser_rejects_every_truncation_of_a_valid_document() {
        // This document only becomes valid JSON at its final byte, so
        // every strict prefix must be rejected — the "writer died
        // mid-flush" shape jsonlint exists to catch. All-ASCII, so every
        // byte offset is a char boundary.
        let doc = r#"{"a":[1,true,"xA"],"b":{"c":null,"d":-2.5e-1}}"#;
        assert!(parse(doc).is_ok());
        for cut in 0..doc.len() {
            assert!(parse(&doc[..cut]).is_err(), "prefix {:?} must not parse", &doc[..cut]);
        }
    }

    #[test]
    fn parser_rejects_runaway_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::num(1.5)), ("s", Json::str("x"))]);
        assert_eq!(v.get("n").unwrap().as_num(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_num(), None);
        assert_eq!(Json::num(1.0).get("k"), None);
    }
}
