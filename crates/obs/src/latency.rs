//! Per-request latency anatomy: component breakdowns, per-core and
//! per-bank histograms, and the core-to-core interference matrices.
//!
//! The memory controller decomposes every completed demand read's
//! `ready_at - arrival` into five additive components (see
//! [`COMPONENT_NAMES`]); the invariant that they sum *exactly* to the
//! total is asserted at both the recording site in the controller and
//! again in [`LatencyReport::record_read`], in every build profile.
//!
//! Interference is attributed Blacklisting-style: only for each core's
//! *oldest* in-flight demand read (the one actually gating progress),
//! one cycle is charged to the core holding the bank or the bus it is
//! waiting on. Bank-held and bus-held cycles go to separate matrices so
//! that private-bank partitioning provably zeroes the cross-core *bank*
//! matrix while shared-channel bus contention remains visible.

use crate::hist::Histogram;
use crate::json::Json;
use crate::table::Table;

/// Number of additive latency components.
pub const N_COMPONENTS: usize = 5;

/// Component index: queued behind a same-core request.
pub const QUEUE_SAME: usize = 0;
/// Component index: queued behind an other-core request.
pub const QUEUE_OTHER: usize = 1;
/// Component index: bank busy — row conflict, precharge/activate
/// timing, or refresh, with no specific older request to blame.
pub const BANK_BUSY: usize = 2;
/// Component index: data/command bus contention and turnaround gaps.
pub const BUS: usize = 3;
/// Component index: intrinsic service (own ACT/tRCD, CAS, data burst).
pub const INTRINSIC: usize = 4;

/// JSON/report names of the components, indexed by the constants above.
pub const COMPONENT_NAMES: [&str; N_COMPONENTS] =
    ["queue_same_core", "queue_other_core", "bank_busy", "bus_contention", "intrinsic"];

/// A dense N×N counter matrix: `cells[i * n + j]` is the cycles core
/// `i`'s oldest demand read was blocked while core `j` held the
/// contended resource.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matrix {
    n: usize,
    cells: Vec<u64>,
}

impl Matrix {
    /// An all-zero `n`×`n` matrix.
    pub fn new(n: usize) -> Self {
        Matrix { n, cells: vec![0; n * n] }
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add `v` to cell `(i, j)`.
    pub fn add(&mut self, i: usize, j: usize, v: u64) {
        self.cells[i * self.n + j] += v;
    }

    /// Read cell `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.cells[i * self.n + j]
    }

    /// Sum of every cell.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Sum of the cells where `i != j` — the cross-core interference.
    pub fn off_diagonal_sum(&self) -> u64 {
        let mut sum = 0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    sum += self.get(i, j);
                }
            }
        }
        sum
    }

    /// Element-wise accumulate `other` (must be the same size).
    pub fn merge(&mut self, other: &Matrix) {
        assert_eq!(self.n, other.n, "matrix size mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
    }

    /// JSON form: an array of row arrays.
    pub fn to_json(&self) -> Json {
        Json::arr((0..self.n).map(|i| Json::arr((0..self.n).map(|j| Json::uint(self.get(i, j))))))
    }

    /// Rebuild from the [`Matrix::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a square numeric matrix.
    pub fn from_json(v: &Json) -> Result<Matrix, String> {
        let rows = v.as_arr().ok_or("matrix must be an array of rows")?;
        let n = rows.len();
        let mut m = Matrix::new(n);
        for (i, row) in rows.iter().enumerate() {
            let cells = row.as_arr().filter(|r| r.len() == n).ok_or("matrix must be square")?;
            for (j, c) in cells.iter().enumerate() {
                m.cells[i * n + j] = c.as_num().ok_or("matrix cells must be numbers")? as u64;
            }
        }
        Ok(m)
    }
}

/// One core's latency anatomy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreLatency {
    /// Total demand-read latency (`ready_at - arrival`), per read.
    pub read: Histogram,
    /// Writeback latency (enqueue to data-burst end), per write.
    pub write: Histogram,
    /// Summed cycles per component across all reads; the five entries
    /// add up exactly to `read.sum()`.
    pub components: [u64; N_COMPONENTS],
}

/// The full anatomy of one measured run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyReport {
    /// Indexed by core id.
    pub cores: Vec<CoreLatency>,
    /// Total read latency per global bank index.
    pub banks: Vec<Histogram>,
    /// Cycles core `i`'s oldest read waited on a *bank* held by core `j`.
    pub bank_interference: Matrix,
    /// Cycles core `i`'s oldest read waited on the *bus* held by core `j`.
    pub bus_interference: Matrix,
}

impl LatencyReport {
    /// An empty report sized for `cores` cores and `banks` global banks.
    pub fn new(cores: usize, banks: usize) -> Self {
        LatencyReport {
            cores: vec![CoreLatency::default(); cores],
            banks: vec![Histogram::default(); banks],
            bank_interference: Matrix::new(cores),
            bus_interference: Matrix::new(cores),
        }
    }

    /// Record one completed demand read.
    ///
    /// # Panics
    ///
    /// Panics (in every build profile) unless `components` sum exactly
    /// to `total` — the breakdown must be a partition, not an estimate.
    pub fn record_read(
        &mut self,
        core: usize,
        bank: usize,
        total: u64,
        components: [u64; N_COMPONENTS],
    ) {
        assert_eq!(
            components.iter().sum::<u64>(),
            total,
            "latency components must sum exactly to the total"
        );
        let c = &mut self.cores[core];
        c.read.record(total);
        for (acc, v) in c.components.iter_mut().zip(components) {
            *acc += v;
        }
        self.banks[bank].record(total);
    }

    /// Record one completed writeback.
    pub fn record_write(&mut self, core: usize, total: u64) {
        self.cores[core].write.record(total);
    }

    /// Total demand reads recorded across all cores.
    pub fn total_reads(&self) -> u64 {
        self.cores.iter().map(|c| c.read.count()).sum()
    }

    /// JSON body: `cores`, `banks`, and `interference` keys (the export
    /// layer wraps this with version and summary fields).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "cores",
                Json::arr(self.cores.iter().map(|c| {
                    Json::obj([
                        ("read", c.read.to_json()),
                        ("write", c.write.to_json()),
                        (
                            "components",
                            Json::obj(
                                COMPONENT_NAMES
                                    .iter()
                                    .zip(c.components)
                                    .map(|(name, v)| (*name, Json::uint(v))),
                            ),
                        ),
                    ])
                })),
            ),
            ("banks", Json::arr(self.banks.iter().map(Histogram::to_json))),
            (
                "interference",
                Json::obj([
                    ("bank", self.bank_interference.to_json()),
                    ("bus", self.bus_interference.to_json()),
                ]),
            ),
        ])
    }

    /// Rebuild from a JSON value carrying the [`LatencyReport::to_json`]
    /// keys (extra keys, e.g. the export wrapper's, are ignored).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field.
    pub fn from_json(v: &Json) -> Result<LatencyReport, String> {
        let cores_json = v.get("cores").and_then(Json::as_arr).ok_or("missing cores array")?;
        let mut cores = Vec::with_capacity(cores_json.len());
        for c in cores_json {
            let mut components = [0u64; N_COMPONENTS];
            let comp_json = c.get("components").ok_or("core missing components")?;
            for (slot, name) in components.iter_mut().zip(COMPONENT_NAMES) {
                *slot = comp_json
                    .get(name)
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("core missing component {name:?}"))?
                    as u64;
            }
            cores.push(CoreLatency {
                read: Histogram::from_json(c.get("read").ok_or("core missing read histogram")?)?,
                write: Histogram::from_json(c.get("write").ok_or("core missing write histogram")?)?,
                components,
            });
        }
        let banks = v
            .get("banks")
            .and_then(Json::as_arr)
            .ok_or("missing banks array")?
            .iter()
            .map(Histogram::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let interference = v.get("interference").ok_or("missing interference object")?;
        let bank_interference =
            Matrix::from_json(interference.get("bank").ok_or("missing bank matrix")?)?;
        let bus_interference =
            Matrix::from_json(interference.get("bus").ok_or("missing bus matrix")?)?;
        if bank_interference.n() != cores.len() || bus_interference.n() != cores.len() {
            return Err("interference matrix size must match core count".into());
        }
        Ok(LatencyReport { cores, banks, bank_interference, bus_interference })
    }

    /// A compact percentile/interference summary, used by `bench_all`'s
    /// suite JSON annotations.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("reads", Json::uint(self.total_reads())),
            (
                "cores",
                Json::arr(self.cores.iter().map(|c| {
                    Json::obj([
                        ("reads", Json::uint(c.read.count())),
                        ("mean", Json::num(c.read.mean())),
                        ("p50", Json::uint(c.read.value_at_quantile(0.50))),
                        ("p90", Json::uint(c.read.value_at_quantile(0.90))),
                        ("p99", Json::uint(c.read.value_at_quantile(0.99))),
                        ("max", Json::uint(c.read.max())),
                        (
                            "components",
                            Json::obj(
                                COMPONENT_NAMES
                                    .iter()
                                    .zip(c.components)
                                    .map(|(name, v)| (*name, Json::uint(v))),
                            ),
                        ),
                    ])
                })),
            ),
            ("bank_interference_cross_core", Json::uint(self.bank_interference.off_diagonal_sum())),
            ("bus_interference_cross_core", Json::uint(self.bus_interference.off_diagonal_sum())),
        ])
    }
}

/// Per-core read-latency percentile table.
pub fn read_latency_table(r: &LatencyReport) -> Table {
    let mut t = Table::new(["core", "reads", "mean", "p50", "p90", "p99", "max"]);
    for (i, c) in r.cores.iter().enumerate() {
        t.row([
            i.to_string(),
            c.read.count().to_string(),
            format!("{:.1}", c.read.mean()),
            c.read.value_at_quantile(0.50).to_string(),
            c.read.value_at_quantile(0.90).to_string(),
            c.read.value_at_quantile(0.99).to_string(),
            c.read.max().to_string(),
        ]);
    }
    t
}

/// Per-core writeback-latency percentile table.
pub fn write_latency_table(r: &LatencyReport) -> Table {
    let mut t = Table::new(["core", "writes", "mean", "p50", "p99", "max"]);
    for (i, c) in r.cores.iter().enumerate() {
        t.row([
            i.to_string(),
            c.write.count().to_string(),
            format!("{:.1}", c.write.mean()),
            c.write.value_at_quantile(0.50).to_string(),
            c.write.value_at_quantile(0.99).to_string(),
            c.write.max().to_string(),
        ]);
    }
    t
}

/// Per-core component breakdown (percent of total read latency).
pub fn breakdown_table(r: &LatencyReport) -> Table {
    let mut headers = vec!["core".to_string(), "total cycles".to_string()];
    headers.extend(COMPONENT_NAMES.iter().map(|n| format!("{n} %")));
    let mut t = Table::new(headers);
    for (i, c) in r.cores.iter().enumerate() {
        let total = c.read.sum();
        let mut row = vec![i.to_string(), total.to_string()];
        for v in c.components {
            let pct = if total == 0 { 0.0 } else { 100.0 * v as f64 / total as f64 };
            row.push(format!("{pct:.1}"));
        }
        t.row(row);
    }
    t
}

/// An interference matrix as a heatmap-style table: row `i` is the
/// blocked core, column `j` the core holding the resource.
pub fn interference_table(m: &Matrix) -> Table {
    let mut headers = vec!["blocked \\ holder".to_string()];
    headers.extend((0..m.n()).map(|j| format!("core {j}")));
    let mut t = Table::new(headers);
    for i in 0..m.n() {
        let mut row = vec![format!("core {i}")];
        row.extend((0..m.n()).map(|j| m.get(i, j).to_string()));
        t.row(row);
    }
    t
}

/// Per-bank read-latency table (banks that saw no reads are skipped).
pub fn bank_latency_table(r: &LatencyReport) -> Table {
    let mut t = Table::new(["bank", "reads", "mean", "p50", "p99", "max"]);
    for (i, h) in r.banks.iter().enumerate() {
        if h.is_empty() {
            continue;
        }
        t.row([
            i.to_string(),
            h.count().to_string(),
            format!("{:.1}", h.mean()),
            h.value_at_quantile(0.50).to_string(),
            h.value_at_quantile(0.99).to_string(),
            h.max().to_string(),
        ]);
    }
    t
}

/// The full anatomy rendered as the standard sequence of captioned
/// tables — shared by the bench diagnostic experiment and `dbpreport`.
pub fn latency_report_text(r: &LatencyReport) -> String {
    let mut out = String::new();
    out.push_str("read latency (DRAM cycles):\n");
    out.push_str(&read_latency_table(r).render());
    out.push_str("\nread latency breakdown:\n");
    out.push_str(&breakdown_table(r).render());
    out.push_str("\nwriteback latency (DRAM cycles):\n");
    out.push_str(&write_latency_table(r).render());
    out.push_str("\nbank interference matrix (cycles blocked on a bank held by):\n");
    out.push_str(&interference_table(&r.bank_interference).render());
    out.push_str("\nbus interference matrix (cycles blocked on the bus held by):\n");
    out.push_str(&interference_table(&r.bus_interference).render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> LatencyReport {
        let mut r = LatencyReport::new(2, 4);
        r.record_read(0, 1, 100, [10, 20, 30, 5, 35]);
        r.record_read(0, 1, 40, [0, 0, 0, 0, 40]);
        r.record_read(1, 3, 250, [0, 200, 10, 10, 30]);
        r.record_write(1, 60);
        r.bank_interference.add(1, 0, 200);
        r.bus_interference.add(0, 1, 5);
        r
    }

    #[test]
    fn record_read_accumulates_components() {
        let r = sample();
        assert_eq!(r.cores[0].components, [10, 20, 30, 5, 75]);
        assert_eq!(r.cores[0].read.sum(), 140);
        assert_eq!(r.cores[0].components.iter().sum::<u64>(), r.cores[0].read.sum());
        assert_eq!(r.banks[1].count(), 2);
        assert_eq!(r.banks[3].count(), 1);
        assert_eq!(r.total_reads(), 3);
        assert_eq!(r.cores[1].write.count(), 1);
    }

    #[test]
    #[should_panic(expected = "sum exactly")]
    fn record_read_rejects_non_additive_breakdown() {
        LatencyReport::new(1, 1).record_read(0, 0, 100, [10, 20, 30, 5, 36]);
    }

    #[test]
    fn matrix_sums() {
        let mut m = Matrix::new(3);
        m.add(0, 0, 7);
        m.add(0, 2, 1);
        m.add(2, 1, 2);
        assert_eq!(m.total(), 10);
        assert_eq!(m.off_diagonal_sum(), 3);
        let mut other = Matrix::new(3);
        other.add(0, 2, 9);
        m.merge(&other);
        assert_eq!(m.get(0, 2), 10);
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let text = r.to_json().to_json();
        let back = LatencyReport::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_mismatched_matrix() {
        let mut r = sample();
        r.bank_interference = Matrix::new(3);
        let parsed = json::parse(&r.to_json().to_json()).unwrap();
        assert!(LatencyReport::from_json(&parsed).unwrap_err().contains("size"));
    }

    #[test]
    fn tables_cover_all_cores_and_matrices() {
        let r = sample();
        let text = latency_report_text(&r);
        assert!(text.contains("read latency breakdown"));
        assert!(text.contains("bank interference matrix"));
        assert_eq!(read_latency_table(&r).len(), 2);
        assert_eq!(interference_table(&r.bank_interference).len(), 2);
        // Only the two banks with traffic appear.
        assert_eq!(bank_latency_table(&r).len(), 2);
        // Breakdown percentages sum to ~100 for an active core.
        let b = breakdown_table(&r);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn summary_json_exposes_cross_core_totals() {
        let doc = json::parse(&sample().summary_json().to_json()).unwrap();
        assert_eq!(doc.get("reads").and_then(Json::as_num), Some(3.0));
        assert_eq!(doc.get("bank_interference_cross_core").and_then(Json::as_num), Some(200.0));
        assert_eq!(doc.get("bus_interference_cross_core").and_then(Json::as_num), Some(5.0));
        let cores = doc.get("cores").and_then(Json::as_arr).unwrap();
        assert_eq!(cores.len(), 2);
        assert!(cores[0].get("p99").is_some());
    }
}
