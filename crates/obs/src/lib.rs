//! `dbp-obs` — the zero-dependency telemetry substrate of the simulator.
//!
//! Three pieces, layered bottom-up:
//!
//! * [`json`] — a minimal order-preserving JSON model with a strict
//!   RFC 8259 parser and a writer (non-finite floats serialise as
//!   `null`, matching `JSON.stringify`);
//! * [`event`] + [`recorder`] — the typed event taxonomy and the
//!   cheap-clone [`Recorder`] handle the whole stack emits into. A
//!   disabled recorder reduces every call to a `None` check, so
//!   instrumentation never perturbs the simulation;
//! * [`export`] — renders captured [`Telemetry`] as a metrics JSON
//!   document and a Chrome `trace_event` file for
//!   `chrome://tracing` / Perfetto;
//! * [`prof`] — host-side self-profiling: exact-sum wall-clock span
//!   trees and monotonic work counters behind the same cheap-clone
//!   disabled-is-one-branch handle shape as [`Recorder`]. Rendered by
//!   the `dbpprof` bin;
//! * [`audit`] — the policy decision audit data model (shadow-policy
//!   comparison, demand-estimation accuracy, convergence telemetry),
//!   fed by the simulator's epoch loop and rendered by the `dbpaudit`
//!   bin;
//! * [`cli`] — the shared argument parser behind every renderer bin's
//!   uniform `--help`.
//!
//! The crate intentionally depends on nothing else in the workspace (or
//! outside it) so any layer can use it without cycles.

pub mod audit;
pub mod cli;
pub mod event;
pub mod export;
pub mod fxhash;
pub mod hist;
pub mod json;
pub mod latency;
pub mod prof;
pub mod recorder;
pub mod table;

pub use audit::{AuditBuilder, AuditReport, EpochObservation, ProfileSample, ShadowEpoch};
pub use event::{EventKind, MigrationCause, TraceEvent};
pub use fxhash::{FxHashMap, FxHashSet};
pub use hist::Histogram;
pub use json::Json;
pub use latency::{CoreLatency, LatencyReport, Matrix};
pub use prof::{Counter, Prof, ProfSpan, Profile};
pub use recorder::{EpochSample, Recorder, RecorderConfig, Telemetry, ThreadSample};
pub use table::Table;
