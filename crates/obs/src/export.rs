//! Export captured telemetry as machine-readable documents.
//!
//! Two formats are produced from the same [`Telemetry`]:
//!
//! * a **metrics document** — run summary + the full epoch time series +
//!   the event log, meant for scripted analysis (plotting Fig. 3-style
//!   demand convergence, counting repartitions, ...);
//! * a **Chrome `trace_event` document** — loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>, with instant events
//!   for every trace event and counter tracks for the epoch metrics.
//!   Timestamps are CPU cycles reported in the `ts` microsecond field,
//!   i.e. the UI's "microsecond" axis reads in cycles.

use crate::audit::AuditReport;
use crate::event::TraceEvent;
use crate::json::Json;
use crate::latency::LatencyReport;
use crate::prof::{ProfSpan, Profile};
use crate::recorder::{EpochSample, Telemetry};

/// Format version stamped into both documents so downstream tooling can
/// detect schema changes across PRs.
pub const FORMAT_VERSION: u64 = 1;

/// Semantic schema version (`major.minor`) stamped into the versioned
/// documents. Bump the minor for additive changes; bump the major when a
/// consumer written against the old layout would misread the new one.
pub const SCHEMA_VERSION: &str = "1.0";

/// The highest major schema version this crate's readers understand.
pub const SCHEMA_MAJOR: u64 = 1;

/// Check a parsed document's `schema_version` against what this build
/// can read. Documents predating the field (no `schema_version` key)
/// pass: they are from schema 1.0 producers.
///
/// # Errors
///
/// Returns a message when the field is malformed or its major version is
/// newer than [`SCHEMA_MAJOR`].
pub fn check_schema_version(doc: &Json) -> Result<(), String> {
    let Some(v) = doc.get("schema_version") else { return Ok(()) };
    let s = v.as_str().ok_or("schema_version must be a string")?;
    let major: u64 = s
        .split('.')
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("malformed schema_version {s:?}"))?;
    if major > SCHEMA_MAJOR {
        return Err(format!(
            "document schema_version {s} is newer than the supported major {SCHEMA_MAJOR}"
        ));
    }
    Ok(())
}

fn event_json(ev: &TraceEvent) -> Json {
    let mut pairs = vec![
        ("name".to_string(), Json::str(ev.kind.name())),
        ("cycle".to_string(), Json::uint(ev.cycle)),
    ];
    if let Some(t) = ev.kind.thread() {
        pairs.push(("thread".to_string(), Json::uint(t as u64)));
    }
    pairs.push(("args".to_string(), ev.kind.args_json()));
    Json::Obj(pairs)
}

fn epoch_json(s: &EpochSample) -> Json {
    Json::obj([
        ("epoch", Json::uint(s.epoch)),
        ("cycle", Json::uint(s.cycle)),
        ("queue_depth", Json::uint(s.queue_depth)),
        ("row_hit_rate", Json::num(s.row_hit_rate)),
        ("bus_utilisation", Json::num(s.bus_utilisation)),
        (
            "threads",
            Json::arr(s.threads.iter().map(|t| {
                Json::obj([
                    ("mpki", Json::num(t.mpki)),
                    ("rbl", Json::num(t.rbl)),
                    ("blp", Json::num(t.blp)),
                    ("reads", Json::uint(t.reads)),
                    ("avg_read_latency", Json::num(t.avg_read_latency)),
                ])
            })),
        ),
    ])
}

/// Build the metrics document. `summary` is caller-provided run context
/// (config, end-of-run aggregates) and is embedded verbatim.
pub fn metrics_document(t: &Telemetry, summary: Json) -> Json {
    Json::obj([
        ("format_version", Json::uint(FORMAT_VERSION)),
        ("summary", summary),
        ("epochs", Json::arr(t.series.iter().map(epoch_json))),
        ("events", Json::arr(t.events.iter().map(event_json))),
        ("dropped_events", Json::uint(t.dropped_events)),
    ])
}

/// Build the latency-anatomy document for `dbpsim --latency-out`:
/// version stamps, caller-provided run context, then the
/// [`LatencyReport`] body (per-core/per-bank histograms and the
/// interference matrices).
pub fn latency_document(report: &LatencyReport, summary: Json) -> Json {
    let mut pairs = vec![
        ("format_version".to_string(), Json::uint(FORMAT_VERSION)),
        ("schema_version".to_string(), Json::str(SCHEMA_VERSION)),
        ("summary".to_string(), summary),
    ];
    match report.to_json() {
        Json::Obj(body) => pairs.extend(body),
        _ => unreachable!("LatencyReport::to_json returns an object"),
    }
    Json::Obj(pairs)
}

/// Build the decision-audit document for `dbpsim --audit-out`: version
/// stamps, caller-provided run context, then the [`AuditReport`] body
/// (shadow-policy comparison, prediction accuracy, calibration,
/// convergence, and the per-decision time series under `epoch_rows` —
/// deliberately not `epochs`, which routes a document to the metrics
/// renderer).
pub fn audit_document(report: &AuditReport, summary: Json) -> Json {
    let mut pairs = vec![
        ("format_version".to_string(), Json::uint(FORMAT_VERSION)),
        ("schema_version".to_string(), Json::str(SCHEMA_VERSION)),
        ("summary".to_string(), summary),
    ];
    match report.to_json() {
        Json::Obj(body) => pairs.extend(body),
        _ => unreachable!("AuditReport::to_json returns an object"),
    }
    Json::Obj(pairs)
}

/// Timing of one experiment inside a `bench_all` suite run, destined for
/// the suite-timing JSON published next to `BENCH_results.json`.
#[derive(Debug, Clone)]
pub struct SuiteExperimentTiming {
    /// Experiment (binary) name, e.g. `fig4_ws_dbp`.
    pub name: String,
    /// Wall-clock for this experiment, nanoseconds.
    pub wall_ns: u128,
    /// Simulation jobs dispatched (shared + solo + auxiliary runs).
    pub jobs: u64,
    /// Solo runs answered from the memoized cache instead of re-running.
    pub solo_cache_hits: u64,
}

/// Build the experiment-suite timing document: per-experiment wall clock
/// and job counts, plus the pool configuration that produced them. CI
/// publishes this alongside the micro-bench `BENCH_results.json` to
/// track the suite's wall-clock trajectory across PRs. `annotations` are
/// extra key/value pairs experiments attached during the run (e.g. the
/// interference diagnostic's percentile summaries).
pub fn suite_timing_document(
    workers: usize,
    quick: bool,
    total_wall_ns: u128,
    rows: &[SuiteExperimentTiming],
    annotations: &[(String, Json)],
) -> Json {
    Json::obj([
        ("format_version", Json::uint(FORMAT_VERSION)),
        ("schema_version", Json::str(SCHEMA_VERSION)),
        ("workers", Json::uint(workers as u64)),
        ("quick", Json::Bool(quick)),
        ("total_wall_ns", Json::uint(total_wall_ns as u64)),
        (
            "experiments",
            Json::arr(rows.iter().map(|r| {
                Json::obj([
                    ("name", Json::str(&r.name)),
                    ("wall_ns", Json::uint(r.wall_ns as u64)),
                    ("jobs", Json::uint(r.jobs)),
                    ("solo_cache_hits", Json::uint(r.solo_cache_hits)),
                ])
            })),
        ),
        ("annotations", Json::Obj(annotations.to_vec())),
    ])
}

/// Build the self-profile document for `--profile-out`: version stamps,
/// caller-provided run context, then the [`Profile`] body (span tree +
/// work counters). Render it with the `dbpprof` bin; parse it back with
/// [`Profile::from_json`].
pub fn profile_document(p: &Profile, summary: Json) -> Json {
    let mut pairs = vec![
        ("format_version".to_string(), Json::uint(FORMAT_VERSION)),
        ("schema_version".to_string(), Json::str(SCHEMA_VERSION)),
        ("summary".to_string(), summary),
        ("total_ns".to_string(), Json::uint(p.total_ns())),
    ];
    match p.to_json() {
        Json::Obj(body) => pairs.extend(body),
        _ => unreachable!("Profile::to_json returns an object"),
    }
    Json::Obj(pairs)
}

/// Render an aggregated [`Profile`] as a Chrome `trace_event` document.
///
/// A merged profile has no per-occurrence timestamps, so spans are laid
/// out on a *synthetic* timeline: each node becomes one complete ("X")
/// event of duration `total_ns`, children packed left-to-right inside
/// their parent starting at its open edge; the gap that remains on the
/// right is the parent's self time. Durations and proportions are real,
/// horizontal order is not chronology.
pub fn profile_chrome_trace(p: &Profile) -> Json {
    fn emit(s: &ProfSpan, start_ns: u64, out: &mut Vec<Json>) {
        out.push(Json::obj([
            ("name", Json::str(&s.name)),
            ("ph", Json::str("X")),
            ("ts", Json::num(start_ns as f64 / 1e3)),
            ("dur", Json::num(s.total_ns as f64 / 1e3)),
            ("pid", Json::uint(0)),
            ("tid", Json::uint(0)),
            (
                "args",
                Json::obj([
                    ("count", Json::uint(s.count)),
                    ("self_ns", Json::uint(s.self_ns)),
                    ("max_ns", Json::uint(s.max_ns)),
                ]),
            ),
        ]));
        let mut cursor = start_ns;
        for c in &s.children {
            emit(c, cursor, out);
            cursor += c.total_ns;
        }
    }
    let mut events: Vec<Json> = vec![
        Json::obj([
            ("name", Json::str("process_name")),
            ("ph", Json::str("M")),
            ("pid", Json::uint(0)),
            ("args", Json::obj([("name", Json::str("dbp self-profile"))])),
        ]),
        Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::uint(0)),
            ("tid", Json::uint(0)),
            ("args", Json::obj([("name", Json::str("aggregated spans"))])),
        ]),
    ];
    let mut cursor = 0u64;
    for s in &p.spans {
        emit(s, cursor, &mut events);
        cursor += s.total_ns;
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ns")),
        ("otherData", Json::obj([("clock", Json::str("synthetic_wall_ns"))])),
    ])
}

/// `trace_event` instant ("i") event on the process/thread rows.
fn chrome_instant(ev: &TraceEvent) -> Json {
    Json::obj([
        ("name", Json::str(ev.kind.name())),
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("ts", Json::uint(ev.cycle)),
        ("pid", Json::uint(0)),
        // Thread-scoped events land on row `thread + 1`; global ones on 0.
        ("tid", Json::uint(ev.kind.thread().map_or(0, |t| t as u64 + 1))),
        ("args", ev.kind.args_json()),
    ])
}

/// `trace_event` counter ("C") sample: one named counter track whose
/// series are the object's key/value pairs.
fn chrome_counter(name: &str, cycle: u64, series: Vec<(String, Json)>) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("ph", Json::str("C")),
        ("ts", Json::uint(cycle)),
        ("pid", Json::uint(0)),
        ("args", Json::Obj(series)),
    ])
}

/// Per-thread series for one metric, keys `t0`, `t1`, ...
fn thread_series(
    s: &EpochSample,
    f: impl Fn(&crate::recorder::ThreadSample) -> f64,
) -> Vec<(String, Json)> {
    s.threads.iter().enumerate().map(|(i, t)| (format!("t{i}"), Json::num(f(t)))).collect()
}

/// Build a Chrome `trace_event`-format document (`{"traceEvents": [...]}`).
pub fn chrome_trace(t: &Telemetry) -> Json {
    let mut events: Vec<Json> = Vec::new();
    // Name the rows so Perfetto shows "thread 0" instead of bare tids.
    let max_thread = t
        .events
        .iter()
        .filter_map(|e| e.kind.thread())
        .chain(t.series.iter().map(|s| s.threads.len().saturating_sub(1)))
        .max();
    events.push(Json::obj([
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::uint(0)),
        ("args", Json::obj([("name", Json::str("dbpsim"))])),
    ]));
    for tid in 0..=max_thread.map_or(0, |m| m as u64 + 1) {
        let label = if tid == 0 { "sim".to_string() } else { format!("thread {}", tid - 1) };
        events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::uint(0)),
            ("tid", Json::uint(tid)),
            ("args", Json::obj([("name", Json::str(label))])),
        ]));
    }
    for ev in &t.events {
        events.push(chrome_instant(ev));
    }
    for s in &t.series {
        events.push(chrome_counter("mpki", s.cycle, thread_series(s, |t| t.mpki)));
        events.push(chrome_counter("row_buffer_locality", s.cycle, thread_series(s, |t| t.rbl)));
        events.push(chrome_counter("bank_level_parallelism", s.cycle, thread_series(s, |t| t.blp)));
        events.push(chrome_counter(
            "queue_depth",
            s.cycle,
            vec![("requests".to_string(), Json::uint(s.queue_depth))],
        ));
        events.push(chrome_counter(
            "row_hit_rate",
            s.cycle,
            vec![("rate".to_string(), Json::num(s.row_hit_rate))],
        ));
        events.push(chrome_counter(
            "bus_utilisation",
            s.cycle,
            vec![("fraction".to_string(), Json::num(s.bus_utilisation))],
        ));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ns")),
        ("otherData", Json::obj([("clock", Json::str("cpu_cycles"))])),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, MigrationCause};
    use crate::json;
    use crate::recorder::{Recorder, RecorderConfig, ThreadSample};

    fn sample_telemetry() -> Telemetry {
        let r = Recorder::new(RecorderConfig::default());
        r.set_cycle(1_000_000);
        r.emit(EventKind::EpochStart { epoch: 0 });
        r.emit(EventKind::ThreadProfile { thread: 0, mpki: 12.5, rbl: 0.8, blp: 2.4 });
        r.emit(EventKind::RepartitionPlan {
            epoch: 0,
            plan: vec!["t0:{0,1}".to_string(), "t1:{2,3}".to_string()],
            changed_threads: vec![1],
        });
        r.emit(EventKind::PageMigration {
            thread: 1,
            vpn: 77,
            old_frame: 3,
            new_frame: 9,
            cause: MigrationCause::Lazy,
        });
        r.sample(EpochSample {
            epoch: 0,
            cycle: 1_000_000,
            queue_depth: 5,
            row_hit_rate: 0.6,
            bus_utilisation: 0.3,
            threads: vec![
                ThreadSample {
                    mpki: 12.5,
                    rbl: 0.8,
                    blp: 2.4,
                    reads: 100,
                    avg_read_latency: 210.0,
                },
                ThreadSample { mpki: 0.0, rbl: 0.0, blp: 0.0, reads: 0, avg_read_latency: 0.0 },
            ],
        });
        r.snapshot()
    }

    #[test]
    fn metrics_document_round_trips_and_has_samples() {
        let t = sample_telemetry();
        let doc = metrics_document(&t, Json::obj([("policy", Json::str("dbp"))]));
        let text = doc.to_json();
        let back = json::parse(&text).expect("metrics doc must be valid JSON");
        assert_eq!(back.get("format_version").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            back.get("summary").and_then(|s| s.get("policy")).and_then(Json::as_str),
            Some("dbp")
        );
        let epochs = back.get("epochs").and_then(Json::as_arr).unwrap();
        assert_eq!(epochs.len(), 1);
        let threads = epochs[0].get("threads").and_then(Json::as_arr).unwrap();
        assert_eq!(threads.len(), 2);
        assert_eq!(threads[0].get("mpki").and_then(Json::as_num), Some(12.5));
        let events = back.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 4);
        // Thread-scoped event carries its thread id at top level.
        assert_eq!(events[3].get("thread").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            events[3].get("args").and_then(|a| a.get("cause")).and_then(Json::as_str),
            Some("lazy")
        );
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let t = sample_telemetry();
        let doc = chrome_trace(&t);
        let back = json::parse(&doc.to_json()).expect("chrome trace must be valid JSON");
        let events = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Every entry needs name + ph; instants need ts.
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            assert!(matches!(ph, "i" | "C" | "M"), "unexpected phase {ph}");
            if ph != "M" {
                assert!(e.get("ts").and_then(Json::as_num).is_some());
            }
        }
        // 4 instants, 6 counters per epoch, plus metadata rows.
        let instants = events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"));
        assert_eq!(instants.count(), 4);
        let counters: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("C")).collect();
        assert_eq!(counters.len(), 6);
        let mpki = counters.iter().find(|e| e.get("name").and_then(Json::as_str) == Some("mpki"));
        let args = mpki.unwrap().get("args").unwrap();
        assert_eq!(args.get("t0").and_then(Json::as_num), Some(12.5));
        assert_eq!(args.get("t1").and_then(Json::as_num), Some(0.0));
        // Thread rows are named for Perfetto.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| e.get("args").unwrap().get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert!(names.contains(&"sim"));
        assert!(names.contains(&"thread 1"));
    }

    #[test]
    fn suite_timing_document_round_trips() {
        let rows = vec![
            SuiteExperimentTiming {
                name: "fig4_ws_dbp".to_string(),
                wall_ns: 1_234_567,
                jobs: 105,
                solo_cache_hits: 120,
            },
            SuiteExperimentTiming {
                name: "table3_mixes".to_string(),
                wall_ns: 1_000,
                jobs: 0,
                solo_cache_hits: 0,
            },
        ];
        let ann = vec![("diag".to_string(), Json::obj([("reads", Json::uint(7))]))];
        let doc = suite_timing_document(4, true, 9_999_999, &rows, &ann);
        let back = json::parse(&doc.to_json()).expect("suite timing doc must be valid JSON");
        assert_eq!(back.get("format_version").and_then(Json::as_num), Some(1.0));
        assert_eq!(back.get("schema_version").and_then(Json::as_str), Some(SCHEMA_VERSION));
        assert_eq!(back.get("workers").and_then(Json::as_num), Some(4.0));
        assert_eq!(back.get("total_wall_ns").and_then(Json::as_num), Some(9_999_999.0));
        let exps = back.get("experiments").and_then(Json::as_arr).unwrap();
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("name").and_then(Json::as_str), Some("fig4_ws_dbp"));
        assert_eq!(exps[0].get("jobs").and_then(Json::as_num), Some(105.0));
        assert_eq!(exps[0].get("solo_cache_hits").and_then(Json::as_num), Some(120.0));
        assert_eq!(
            back.get("annotations")
                .and_then(|a| a.get("diag"))
                .and_then(|d| d.get("reads"))
                .and_then(Json::as_num),
            Some(7.0)
        );
        assert!(check_schema_version(&back).is_ok());
    }

    #[test]
    fn latency_document_round_trips_with_schema() {
        let mut report = LatencyReport::new(2, 4);
        report.record_read(0, 2, 120, [10, 20, 30, 40, 20]);
        report.record_write(1, 55);
        report.bank_interference.add(0, 1, 20);
        let doc = latency_document(&report, Json::obj([("policy", Json::str("none"))]));
        let back = json::parse(&doc.to_json()).expect("latency doc must be valid JSON");
        assert!(check_schema_version(&back).is_ok());
        assert_eq!(back.get("schema_version").and_then(Json::as_str), Some(SCHEMA_VERSION));
        assert_eq!(
            back.get("summary").and_then(|s| s.get("policy")).and_then(Json::as_str),
            Some("none")
        );
        let parsed = LatencyReport::from_json(&back).expect("body must reconstruct");
        assert_eq!(parsed, report);
    }

    #[test]
    fn audit_document_round_trips_with_schema() {
        use crate::audit::{AuditBuilder, EpochObservation, ProfileSample, ShadowEpoch};

        let mut b = AuditBuilder::new(
            "DBP",
            vec!["equal-BP".to_string()],
            2,
            4,
            vec![vec![vec![0, 1], vec![2, 3]], vec![vec![0, 1], vec![2, 3]]],
        );
        b.observe(&EpochObservation {
            epoch: 0,
            live_units: vec![vec![0, 1, 2], vec![3]],
            achieved: vec![ProfileSample::default(), ProfileSample::default()],
            predicted_units: vec![3, 1],
            shadows: vec![ShadowEpoch {
                units: vec![vec![0, 1], vec![2, 3]],
                would_migrate_pages: 5,
            }],
        });
        let report = b.report();
        let doc = audit_document(&report, Json::obj([("mix", Json::str("mix50-1"))]));
        let back = json::parse(&doc.to_json()).expect("audit doc must be valid JSON");
        assert!(check_schema_version(&back).is_ok());
        assert_eq!(back.get("schema_version").and_then(Json::as_str), Some(SCHEMA_VERSION));
        assert_eq!(
            back.get("summary").and_then(|s| s.get("mix")).and_then(Json::as_str),
            Some("mix50-1")
        );
        // The per-decision series exports as `epoch_rows`, NOT `epochs`:
        // `dbpreport` routes metrics documents by the `epochs` key, so an
        // audit document must never carry it at top level.
        assert!(back.get("epoch_rows").is_some());
        assert!(back.get("epochs").is_none(), "audit docs must not collide with metrics routing");
        let parsed = AuditReport::from_json(&back).expect("body must reconstruct");
        assert_eq!(parsed, report);
        // A future-major producer is rejected before anyone reads the body.
        let future = json::parse(&doc.to_json().replace("\"1.0\"", "\"2.0\"")).unwrap();
        assert!(check_schema_version(&future).unwrap_err().contains("newer"));
    }

    #[test]
    fn future_major_schema_versions_are_rejected() {
        let ok = json::parse(r#"{"schema_version":"1.0"}"#).unwrap();
        assert!(check_schema_version(&ok).is_ok());
        let additive = json::parse(r#"{"schema_version":"1.9"}"#).unwrap();
        assert!(check_schema_version(&additive).is_ok());
        let legacy = json::parse(r#"{"format_version":1}"#).unwrap();
        assert!(check_schema_version(&legacy).is_ok(), "pre-schema docs pass");
        let future = json::parse(r#"{"schema_version":"2.0"}"#).unwrap();
        let err = check_schema_version(&future).unwrap_err();
        assert!(err.contains("newer"), "{err}");
        let junk = json::parse(r#"{"schema_version":"banana"}"#).unwrap();
        assert!(check_schema_version(&junk).unwrap_err().contains("malformed"));
        let not_str = json::parse(r#"{"schema_version":2}"#).unwrap();
        assert!(check_schema_version(&not_str).is_err());
    }

    #[test]
    fn chrome_trace_round_trips_through_parser_preserving_event_count() {
        let t = sample_telemetry();
        let doc = chrome_trace(&t);
        let back = json::parse(&doc.to_json()).expect("must be RFC 8259");
        let events = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Exact census: one process_name row, one thread_name row per tid
        // (sim + each hardware thread), one instant per captured event,
        // and six counter tracks per epoch sample.
        let max_thread = t
            .events
            .iter()
            .filter_map(|e| e.kind.thread())
            .chain(t.series.iter().map(|s| s.threads.len().saturating_sub(1)))
            .max()
            .expect("sample telemetry has thread-scoped data");
        let expected = 1 + (max_thread + 2) + t.events.len() + 6 * t.series.len();
        assert_eq!(events.len(), expected);
        // Writing the parsed document again is a fixpoint: the writer and
        // parser agree on every value in the export.
        assert_eq!(json::parse(&back.to_json()).unwrap(), back);
        assert_eq!(back, doc);
    }

    #[test]
    fn profile_document_round_trips_with_schema() {
        let prof = crate::prof::Prof::enabled();
        {
            let _run = prof.span("run");
            let _tick = prof.span("tick");
        }
        prof.counter("cycles").add(42);
        let p = prof.snapshot();
        let doc = profile_document(&p, Json::obj([("mix", Json::str("mix-a"))]));
        let back = json::parse(&doc.to_json()).expect("profile doc must be valid JSON");
        assert!(check_schema_version(&back).is_ok());
        assert_eq!(back.get("schema_version").and_then(Json::as_str), Some(SCHEMA_VERSION));
        assert_eq!(
            back.get("summary").and_then(|s| s.get("mix")).and_then(Json::as_str),
            Some("mix-a")
        );
        assert_eq!(back.get("total_ns").and_then(Json::as_num), Some(p.total_ns() as f64));
        let parsed = Profile::from_json(&back).expect("body must reconstruct");
        assert_eq!(parsed, p);
        // A future-major producer is rejected before anyone reads the body.
        let future = json::parse(&doc.to_json().replace("\"1.0\"", "\"2.0\"")).unwrap();
        assert!(check_schema_version(&future).unwrap_err().contains("newer"));
    }

    #[test]
    fn profile_chrome_trace_packs_children_inside_parents() {
        let p = Profile {
            spans: vec![ProfSpan {
                name: "run".to_string(),
                count: 1,
                total_ns: 10_000,
                self_ns: 4_000,
                max_ns: 10_000,
                children: vec![
                    ProfSpan {
                        name: "a".to_string(),
                        count: 2,
                        total_ns: 2_000,
                        self_ns: 2_000,
                        max_ns: 1_500,
                        children: vec![],
                    },
                    ProfSpan {
                        name: "b".to_string(),
                        count: 1,
                        total_ns: 4_000,
                        self_ns: 4_000,
                        max_ns: 4_000,
                        children: vec![],
                    },
                ],
            }],
            counters: vec![],
        };
        p.assert_exact_sum();
        let doc = profile_chrome_trace(&p);
        let back = json::parse(&doc.to_json()).expect("must be RFC 8259");
        let events = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        let xs: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(xs.len(), 3);
        // Child "b" starts where "a" ends (ts in microseconds).
        let b = xs.iter().find(|e| e.get("name").and_then(Json::as_str) == Some("b")).unwrap();
        assert_eq!(b.get("ts").and_then(Json::as_num), Some(2.0));
        assert_eq!(b.get("dur").and_then(Json::as_num), Some(4.0));
    }

    #[test]
    fn empty_telemetry_exports_cleanly() {
        let t = Telemetry::default();
        let m = metrics_document(&t, Json::Obj(Vec::new()));
        assert!(json::parse(&m.to_json()).is_ok());
        let c = chrome_trace(&t);
        let back = json::parse(&c.to_json()).unwrap();
        assert!(back.get("traceEvents").and_then(Json::as_arr).is_some());
    }
}
