//! Set-associative cache hierarchy for the DBP reproduction.
//!
//! Models a per-core private hierarchy — an L1 data cache backed by a
//! private L2 — with true-LRU replacement, write-back/write-allocate, and
//! an MSHR file that merges concurrent misses to the same line. Cache
//! state is updated at access time; timing is carried by the returned
//! latency and resolved by the core model.
//!
//! The hierarchy is deliberately *private per core* (no shared LLC): the
//! paper's evaluation isolates DRAM-level interference, so all cross-thread
//! contention in this reproduction happens in the memory controller and the
//! DRAM banks, exactly as in the equal-bank-partitioning studies DBP builds
//! on.
//!
//! # Example
//!
//! ```
//! use dbp_cache::{Hierarchy, HierarchyConfig, AccessLevel};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::default());
//! let a = h.access(0x4000, false);
//! assert_eq!(a.level, AccessLevel::MemoryMiss); // cold miss
//! let b = h.access(0x4000, false);
//! assert_eq!(b.level, AccessLevel::L1Hit);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod mshr;
pub mod stats;

pub use cache::{AccessOutcome, Cache, CacheConfig};
pub use hierarchy::{AccessLevel, Hierarchy, HierarchyAccess, HierarchyConfig};
pub use mshr::{Mshr, MshrAlloc};
pub use stats::CacheStats;
