//! A private two-level hierarchy (L1D backed by L2) as seen by one core.

use crate::cache::{Cache, CacheConfig};

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLevel {
    L1Hit,
    L2Hit,
    /// Missed both levels: a DRAM read is required.
    MemoryMiss,
}

/// Configuration of the per-core hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    pub l1: CacheConfig,
    pub l2: CacheConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig { l1: CacheConfig::l1d(), l2: CacheConfig::l2() }
    }
}

/// Result of one hierarchy access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Level that satisfied the access.
    pub level: AccessLevel,
    /// Latency in CPU cycles up to (but not including) DRAM.
    pub latency: u32,
    /// Dirty lines evicted along the way; each must become a DRAM write.
    pub writebacks: Vec<u64>,
}

/// L1 + private L2, write-back and write-allocate at both levels,
/// non-inclusive (fills go to both levels; evictions are independent).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
}

impl Hierarchy {
    /// Build an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if either level's geometry is invalid or line sizes differ.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert_eq!(cfg.l1.line_bytes, cfg.l2.line_bytes, "L1 and L2 must share a line size");
        Hierarchy { l1: Cache::new(cfg.l1), l2: Cache::new(cfg.l2) }
    }

    /// Access `pa`. Updates both levels and reports where the data came
    /// from plus any dirty evictions.
    pub fn access(&mut self, pa: u64, is_write: bool) -> HierarchyAccess {
        let l1_lat = self.l1.cfg().latency;
        let l2_lat = self.l2.cfg().latency;
        let mut writebacks = Vec::new();
        let l1_out = self.l1.access(pa, is_write);
        if l1_out.hit {
            return HierarchyAccess { level: AccessLevel::L1Hit, latency: l1_lat, writebacks };
        }
        // An L1 dirty victim is absorbed by the L2 (write-back allocate).
        if let Some(victim) = l1_out.writeback {
            let vo = self.l2.access(victim, true);
            if let Some(wb) = vo.writeback {
                writebacks.push(wb);
            }
        }
        // On a write miss the dirty bit lives in the L1 (the L2 copy stays
        // clean until the L1 victim returns) — write-back allocate-on-miss.
        let l2_out = self.l2.access(pa, false);
        if let Some(wb) = l2_out.writeback {
            writebacks.push(wb);
        }
        if l2_out.hit {
            HierarchyAccess { level: AccessLevel::L2Hit, latency: l1_lat + l2_lat, writebacks }
        } else {
            HierarchyAccess { level: AccessLevel::MemoryMiss, latency: l1_lat + l2_lat, writebacks }
        }
    }

    /// Whether `pa`'s line is resident at either level (no state change).
    /// Used by resource pre-checks: a probing hit means the access cannot
    /// need MSHR or controller-queue space.
    pub fn probe(&self, pa: u64) -> bool {
        self.l1.probe(pa) || self.l2.probe(pa)
    }

    /// The L1 level (for stats).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 level (for stats).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// L2 misses per access across the whole hierarchy so far — the
    /// hierarchy's DRAM traffic rate.
    pub fn memory_miss_rate(&self) -> f64 {
        let acc = self.l1.stats().accesses;
        if acc == 0 {
            return 0.0;
        }
        self.l2.stats().misses as f64 / acc as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1: CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, latency: 2 },
            l2: CacheConfig { size_bytes: 1024, ways: 4, line_bytes: 64, latency: 10 },
        })
    }

    #[test]
    fn cold_miss_reaches_memory() {
        let mut h = tiny();
        let a = h.access(0, false);
        assert_eq!(a.level, AccessLevel::MemoryMiss);
        assert_eq!(a.latency, 12);
        assert!(a.writebacks.is_empty());
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = tiny();
        h.access(0, false);
        let a = h.access(0, false);
        assert_eq!(a.level, AccessLevel::L1Hit);
        assert_eq!(a.latency, 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = tiny();
        // Fill set 0 of the L1 (2 ways) with three lines; line 0 falls to
        // L2 only.
        h.access(0, false);
        h.access(256, false);
        h.access(512, false);
        let a = h.access(0, false);
        assert_eq!(a.level, AccessLevel::L2Hit);
    }

    #[test]
    fn dirty_l1_victim_lands_in_l2_not_memory() {
        let mut h = tiny();
        h.access(0, true); // dirty in L1
        h.access(256, false);
        let a = h.access(512, false); // evicts line 0 from L1 into L2
        assert!(a.writebacks.is_empty(), "dirty L1 victim must be absorbed by L2");
        // And the line is still an L2 hit.
        let b = h.access(0, false);
        assert_eq!(b.level, AccessLevel::L2Hit);
    }

    #[test]
    fn dirty_l2_victim_produces_memory_writeback() {
        let mut h = tiny();
        // Dirty a line and push it out of both levels. The L2 set for
        // address 0 also holds 1024, 2048, ... (4 ways).
        h.access(0, true);
        h.access(256, false); // L1 set-mate
        h.access(512, false); // evicts dirty 0 from L1 -> L2 (dirty)
                              // Now flood the L2 set of address 0 with 4 fresh lines.
        let mut wrote_back = false;
        for i in 1..=4u64 {
            let a = h.access(i * 1024, false);
            if a.writebacks.contains(&0) {
                wrote_back = true;
            }
        }
        assert!(wrote_back, "dirty L2 victim must be written to memory");
    }

    #[test]
    fn miss_rate_counts_l2_misses() {
        let mut h = tiny();
        h.access(0, false); // memory miss
        h.access(0, false); // L1 hit
        assert!((h.memory_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn mismatched_line_sizes_panic() {
        let _ = Hierarchy::new(HierarchyConfig {
            l1: CacheConfig { size_bytes: 256, ways: 2, line_bytes: 32, latency: 2 },
            l2: CacheConfig::l2(),
        });
    }
}
