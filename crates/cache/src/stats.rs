//! Per-cache-level counters.

/// Hit/miss/writeback counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses as f64
    }

    /// Hit ratio in [0, 1]; 0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats { accesses: 4, hits: 3, misses: 1, writebacks: 0 };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
    }
}
