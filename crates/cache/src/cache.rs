//! A single set-associative, write-back, write-allocate cache.

use crate::stats::CacheStats;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in CPU cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// 32 KiB, 4-way, 64 B lines, 2-cycle — a typical L1D.
    pub fn l1d() -> Self {
        CacheConfig { size_bytes: 32 << 10, ways: 4, line_bytes: 64, latency: 2 }
    }

    /// 512 KiB, 8-way, 64 B lines, 12-cycle — a typical private L2.
    pub fn l2() -> Self {
        CacheConfig { size_bytes: 512 << 10, ways: 8, line_bytes: 64, latency: 12 }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Check power-of-two geometry with at least one set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes == 0 {
            return Err(format!("line_bytes must be a power of two, got {}", self.line_bytes));
        }
        if self.ways == 0 {
            return Err("ways must be positive".to_owned());
        }
        let denom = self.ways * self.line_bytes;
        if denom == 0 || !self.size_bytes.is_multiple_of(denom) {
            return Err("size must be a multiple of ways * line_bytes".to_owned());
        }
        let sets = self.sets();
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!("set count must be a positive power of two, got {sets}"));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of the last touch (true LRU).
    stamp: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// Physical address (line-aligned) of a dirty victim evicted by the
    /// fill, which must be written back to the next level.
    pub writeback: Option<u64>,
}

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * ways, row-major by set
    clock: u64,
    stats: CacheStats,
    set_mask: u64,
    line_bits: u32,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`CacheConfig::validate`].
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid CacheConfig");
        Cache {
            lines: vec![Line::default(); (cfg.sets() * cfg.ways) as usize],
            clock: 0,
            stats: CacheStats::default(),
            set_mask: u64::from(cfg.sets()) - 1,
            line_bits: cfg.line_bytes.trailing_zeros(),
            cfg,
        }
    }

    /// The configuration of this level.
    pub fn cfg(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_of(&self, pa: u64) -> usize {
        (((pa >> self.line_bits) & self.set_mask) * u64::from(self.cfg.ways)) as usize
    }

    fn tag_of(&self, pa: u64) -> u64 {
        pa >> self.line_bits
    }

    /// Access `pa`; on a miss, allocate the line and evict LRU.
    ///
    /// `is_write` marks the (present or filled) line dirty.
    pub fn access(&mut self, pa: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let tag = self.tag_of(pa);
        let base = self.set_of(pa);
        let ways = self.cfg.ways as usize;
        self.stats.accesses += 1;
        // Hit path.
        for line in &mut self.lines[base..base + ways] {
            if line.valid && line.tag == tag {
                line.stamp = self.clock;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return AccessOutcome { hit: true, writeback: None };
            }
        }
        // Miss: pick an invalid way, else LRU.
        self.stats.misses += 1;
        let victim = {
            let set = &self.lines[base..base + ways];
            let mut victim = 0;
            let mut best = u64::MAX;
            for (i, line) in set.iter().enumerate() {
                if !line.valid {
                    victim = i;
                    break;
                }
                if line.stamp < best {
                    best = line.stamp;
                    victim = i;
                }
            }
            victim
        };
        let line = &mut self.lines[base + victim];
        let writeback = if line.valid && line.dirty {
            self.stats.writebacks += 1;
            Some((line.tag) << self.line_bits)
        } else {
            None
        };
        *line = Line { tag, valid: true, dirty: is_write, stamp: self.clock };
        AccessOutcome { hit: false, writeback }
    }

    /// Whether `pa`'s line is present (no state change).
    pub fn probe(&self, pa: u64) -> bool {
        let tag = self.tag_of(pa);
        let base = self.set_of(pa);
        self.lines[base..base + self.cfg.ways as usize].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate `pa`'s line if present, returning the line-aligned
    /// address if it was dirty (the caller must write it back).
    pub fn invalidate(&mut self, pa: u64) -> Option<u64> {
        let tag = self.tag_of(pa);
        let base = self.set_of(pa);
        for line in &mut self.lines[base..base + self.cfg.ways as usize] {
            if line.valid && line.tag == tag {
                line.valid = false;
                if line.dirty {
                    return Some(tag << self.line_bits);
                }
                return None;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B.
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(32, false).hit); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 256 (2 ways). Touch 0 again, then bring
        // in 512 -> 256 must be the victim.
        c.access(0, false);
        c.access(256, false);
        c.access(0, false);
        c.access(512, false);
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(256, false);
        let out = c.access(512, false); // evicts line 0 (LRU, dirty)
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, true); // now dirty
        c.access(256, false);
        let out = c.access(512, false);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    fn invalidate_returns_dirty_line() {
        let mut c = tiny();
        c.access(64, true);
        assert_eq!(c.invalidate(64), Some(64));
        assert!(!c.probe(64));
        assert_eq!(c.invalidate(64), None);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(0, false);
        c.access(64, false); // set 1
        c.access(256, false); // set 0 second way
        assert!(c.probe(0));
        assert!(c.probe(64));
        assert!(c.probe(256));
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        assert!(CacheConfig { size_bytes: 100, ways: 2, line_bytes: 64, latency: 1 }
            .validate()
            .is_err());
        assert!(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 48, latency: 1 }
            .validate()
            .is_err());
        CacheConfig::l1d().validate().unwrap();
        CacheConfig::l2().validate().unwrap();
    }
}
