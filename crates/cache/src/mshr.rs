//! Miss-status holding registers: track outstanding misses and merge
//! secondary misses to the same line.

use dbp_obs::FxHashMap;

/// Result of trying to allocate an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// First miss to this line: a memory request must be sent.
    Primary,
    /// An earlier miss to the same line is already outstanding; this
    /// access piggybacks on it.
    Merged,
    /// No free entries; the requester must stall and retry.
    Full,
}

/// A bounded file of miss-status holding registers.
///
/// Keys are line-aligned physical addresses. Each entry counts how many
/// accesses are waiting on the fill.
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: FxHashMap<u64, u32>,
    capacity: usize,
    peak: usize,
}

impl Mshr {
    /// Create a file with room for `capacity` distinct outstanding lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        let mut entries = FxHashMap::default();
        entries.reserve(capacity);
        Mshr { entries, capacity, peak: 0 }
    }

    /// Try to record a miss on `line_addr`.
    pub fn alloc(&mut self, line_addr: u64) -> MshrAlloc {
        if let Some(waiters) = self.entries.get_mut(&line_addr) {
            *waiters += 1;
            return MshrAlloc::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrAlloc::Full;
        }
        self.entries.insert(line_addr, 1);
        self.peak = self.peak.max(self.entries.len());
        MshrAlloc::Primary
    }

    /// Complete the fill of `line_addr`, returning how many accesses were
    /// waiting (0 if the line was not outstanding).
    pub fn complete(&mut self, line_addr: u64) -> u32 {
        self.entries.remove(&line_addr).unwrap_or(0)
    }

    /// Whether `line_addr` has an outstanding miss.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// Number of outstanding lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// High-water mark of concurrently outstanding lines.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m = Mshr::new(4);
        assert_eq!(m.alloc(0x40), MshrAlloc::Primary);
        assert_eq!(m.alloc(0x40), MshrAlloc::Merged);
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(0x40), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut m = Mshr::new(2);
        assert_eq!(m.alloc(0), MshrAlloc::Primary);
        assert_eq!(m.alloc(64), MshrAlloc::Primary);
        assert_eq!(m.alloc(128), MshrAlloc::Full);
        // Merging into an existing entry still works when full.
        assert_eq!(m.alloc(64), MshrAlloc::Merged);
        m.complete(0);
        assert_eq!(m.alloc(128), MshrAlloc::Primary);
    }

    #[test]
    fn complete_unknown_line_returns_zero() {
        let mut m = Mshr::new(2);
        assert_eq!(m.complete(0xdead), 0);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut m = Mshr::new(8);
        for i in 0..5u64 {
            m.alloc(i * 64);
        }
        for i in 0..5u64 {
            m.complete(i * 64);
        }
        assert_eq!(m.peak(), 5);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Mshr::new(0);
    }
}
