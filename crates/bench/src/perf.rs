//! Perf-regression comparison: current micro-bench floors against a
//! committed baseline (`BENCH_baseline.json`).
//!
//! The compared statistic is each benchmark's **minimum** (`min_ns`),
//! not its median: on shared CI runners preemption and cold caches can
//! only make iterations *slower*, so the floor is the statistic a
//! structural slowdown (an accidental O(n²), a dropped memo) must move,
//! while medians of tiny CI iteration counts mostly measure the host.
//! On top of that the comparison uses a *relative tolerance* (default
//! ±35%, `DBP_PERF_TOLERANCE` overrides): a benchmark only counts as
//! regressed when its floor exceeds `baseline * (1 + tolerance)`. The
//! gate is advisory by default (`bench_all` warns and exits 0) and
//! enforcing under `DBP_PERF_GATE=1`.
//!
//! Statuses:
//!
//! - `ok` — within tolerance of the baseline
//! - `improved` — faster than `baseline * (1 - tolerance)` (informational)
//! - `regressed` — slower than `baseline * (1 + tolerance)` → gate fires
//! - `new` — present now, absent from the baseline (passes; the baseline
//!   needs regenerating to start tracking it)
//! - `missing` — present in the baseline, absent now → gate fires: a
//!   silently dropped benchmark is how coverage rots

use dbp_obs::{Json, Table};

/// Default relative noise tolerance for floor comparisons.
pub const DEFAULT_TOLERANCE: f64 = 0.35;

/// `DBP_PERF_TOLERANCE` if set to a non-negative number, else the default.
pub fn tolerance_from_env() -> f64 {
    std::env::var("DBP_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t >= 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// Verdict for one benchmark of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfStatus {
    Ok,
    Improved,
    Regressed,
    New,
    Missing,
}

impl PerfStatus {
    /// The JSON/table spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            PerfStatus::Ok => "ok",
            PerfStatus::Improved => "improved",
            PerfStatus::Regressed => "regressed",
            PerfStatus::New => "new",
            PerfStatus::Missing => "missing",
        }
    }

    /// Does this status fail the gate?
    pub fn fails_gate(self) -> bool {
        matches!(self, PerfStatus::Regressed | PerfStatus::Missing)
    }
}

/// One benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct PerfRow {
    pub name: String,
    pub baseline_ns: Option<u64>,
    pub current_ns: Option<u64>,
    /// `current / baseline` when both sides exist.
    pub ratio: Option<f64>,
    pub status: PerfStatus,
}

/// Extract `(name, min_ns)` pairs from a bench-results document (the
/// format [`dbp_util::bench::Runner::json_report`] writes).
///
/// # Errors
///
/// Returns a message when the document lacks a `benchmarks` array or an
/// entry lacks a string `name` / numeric `min_ns`.
pub fn parse_floors(doc: &Json) -> Result<Vec<(String, u64)>, String> {
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("bench document has no `benchmarks` array")?;
    benches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("benchmarks[{i}] has no string `name`"))?;
            let floor = b
                .get("min_ns")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("benchmarks[{i}] ({name}) has no numeric `min_ns`"))?;
            Ok((name.to_owned(), floor as u64))
        })
        .collect()
}

/// Extract `(name, median_ns)` pairs from a bench-results document —
/// the statistic the longitudinal history tracks (medians summarise a
/// run; floors feed the regression gate).
///
/// # Errors
///
/// Returns a message when the document lacks a `benchmarks` array or an
/// entry lacks a string `name` / numeric `median_ns`.
pub fn parse_medians(doc: &Json) -> Result<Vec<(String, u64)>, String> {
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_arr)
        .ok_or("bench document has no `benchmarks` array")?;
    benches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("benchmarks[{i}] has no string `name`"))?;
            let med = b
                .get("median_ns")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("benchmarks[{i}] ({name}) has no numeric `median_ns`"))?;
            Ok((name.to_owned(), med as u64))
        })
        .collect()
}

/// Build one schema-stamped line of `BENCH_history.jsonl` from a
/// bench-results document: the run's medians keyed by benchmark name,
/// plus the caller-supplied wall-clock second. One JSON object per CI
/// run — `tail`/`jq`-friendly, and each line self-describes its schema
/// so old history survives format evolution.
///
/// # Errors
///
/// Propagates [`parse_medians`] errors.
pub fn history_line(doc: &Json, unix_time_s: u64) -> Result<Json, String> {
    let medians = parse_medians(doc)?;
    Ok(Json::obj([
        ("format_version", Json::uint(dbp_obs::export::FORMAT_VERSION)),
        ("schema_version", Json::str(dbp_obs::export::SCHEMA_VERSION)),
        ("unix_time_s", Json::uint(unix_time_s)),
        ("benchmarks", Json::uint(medians.len() as u64)),
        ("medians", Json::Obj(medians.into_iter().map(|(n, m)| (n, Json::uint(m))).collect())),
    ]))
}

/// Compare current floors against a baseline with a relative
/// `tolerance`. Rows come out in baseline order, then current-only
/// (`new`) entries in current order — so the delta table is stable
/// against reordering on either side.
pub fn compare(
    baseline: &[(String, u64)],
    current: &[(String, u64)],
    tolerance: f64,
) -> Vec<PerfRow> {
    let med =
        |set: &[(String, u64)], name: &str| set.iter().find(|(n, _)| n == name).map(|&(_, m)| m);
    let mut rows: Vec<PerfRow> = baseline
        .iter()
        .map(|(name, base)| match med(current, name) {
            Some(cur) => {
                let ratio = cur as f64 / (*base).max(1) as f64;
                let status = if ratio > 1.0 + tolerance {
                    PerfStatus::Regressed
                } else if ratio < 1.0 - tolerance {
                    PerfStatus::Improved
                } else {
                    PerfStatus::Ok
                };
                PerfRow {
                    name: name.clone(),
                    baseline_ns: Some(*base),
                    current_ns: Some(cur),
                    ratio: Some(ratio),
                    status,
                }
            }
            None => PerfRow {
                name: name.clone(),
                baseline_ns: Some(*base),
                current_ns: None,
                ratio: None,
                status: PerfStatus::Missing,
            },
        })
        .collect();
    for (name, cur) in current {
        if med(baseline, name).is_none() {
            rows.push(PerfRow {
                name: name.clone(),
                baseline_ns: None,
                current_ns: Some(*cur),
                ratio: None,
                status: PerfStatus::New,
            });
        }
    }
    rows
}

/// The rows whose status fails the gate (regressed or missing).
pub fn gate_failures(rows: &[PerfRow]) -> Vec<&PerfRow> {
    rows.iter().filter(|r| r.status.fails_gate()).collect()
}

/// Render the comparison as an aligned delta table.
pub fn delta_table(rows: &[PerfRow]) -> Table {
    let fmt_side = |ns: Option<u64>| {
        ns.map_or_else(|| "-".to_owned(), |n| dbp_obs::table::fmt_ns(u128::from(n)))
    };
    let mut t = Table::new(["benchmark", "baseline", "current", "delta", "status"]);
    t.align_left(0).align_left(4);
    for r in rows {
        let delta =
            r.ratio.map_or_else(|| "-".to_owned(), |q| format!("{:+.1}%", (q - 1.0) * 100.0));
        t.row([
            r.name.clone(),
            fmt_side(r.baseline_ns),
            fmt_side(r.current_ns),
            delta,
            r.status.as_str().to_owned(),
        ]);
    }
    t
}

/// Build the `perf_summary` document `bench_all --perf-out` writes:
/// version stamps, the comparison parameters, one row per benchmark, and
/// the gate verdict CI scripts key off.
pub fn perf_summary_document(rows: &[PerfRow], tolerance: f64, gate_enforced: bool) -> Json {
    let failures = gate_failures(rows);
    Json::obj([
        ("format_version", Json::uint(dbp_obs::export::FORMAT_VERSION)),
        ("schema_version", Json::str(dbp_obs::export::SCHEMA_VERSION)),
        ("tolerance", Json::num(tolerance)),
        ("gate_enforced", Json::Bool(gate_enforced)),
        ("gate_passed", Json::Bool(failures.is_empty())),
        ("failures", Json::uint(failures.len() as u64)),
        (
            "benchmarks",
            Json::arr(rows.iter().map(|r| {
                let mut pairs = vec![
                    ("name".to_string(), Json::str(&r.name)),
                    ("status".to_string(), Json::str(r.status.as_str())),
                ];
                if let Some(b) = r.baseline_ns {
                    pairs.push(("baseline_ns".to_string(), Json::uint(b)));
                }
                if let Some(c) = r.current_ns {
                    pairs.push(("current_ns".to_string(), Json::uint(c)));
                }
                if let Some(q) = r.ratio {
                    pairs.push(("ratio".to_string(), Json::num(q)));
                }
                Json::Obj(pairs)
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|&(n, m)| (n.to_owned(), m)).collect()
    }

    #[test]
    fn identical_floors_pass_within_tolerance() {
        let base = set(&[("a", 100), ("b", 2_000)]);
        let rows = compare(&base, &base, DEFAULT_TOLERANCE);
        assert!(rows.iter().all(|r| r.status == PerfStatus::Ok));
        assert!(gate_failures(&rows).is_empty());
        let doc = perf_summary_document(&rows, DEFAULT_TOLERANCE, false);
        assert_eq!(doc.get("gate_passed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn injected_2x_regression_fires_the_gate() {
        let base = set(&[("steady", 1_000), ("hot", 1_000)]);
        let cur = set(&[("steady", 1_050), ("hot", 2_000)]); // 2x: well past ±35%
        let rows = compare(&base, &cur, DEFAULT_TOLERANCE);
        let hot = rows.iter().find(|r| r.name == "hot").unwrap();
        assert_eq!(hot.status, PerfStatus::Regressed);
        assert!((hot.ratio.unwrap() - 2.0).abs() < 1e-12);
        let fails = gate_failures(&rows);
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].name, "hot");
        let doc = perf_summary_document(&rows, DEFAULT_TOLERANCE, true);
        assert_eq!(doc.get("gate_passed").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("failures").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn noise_within_tolerance_is_ok_but_improvements_are_flagged() {
        let base = set(&[("a", 1_000)]);
        assert_eq!(compare(&base, &set(&[("a", 1_340)]), 0.35)[0].status, PerfStatus::Ok);
        assert_eq!(compare(&base, &set(&[("a", 660)]), 0.35)[0].status, PerfStatus::Ok);
        assert_eq!(
            compare(&base, &set(&[("a", 500)]), 0.35)[0].status,
            PerfStatus::Improved,
            "improvements stay informational"
        );
        assert!(!PerfStatus::Improved.fails_gate());
    }

    #[test]
    fn new_passes_missing_fails() {
        let base = set(&[("kept", 100), ("dropped", 100)]);
        let cur = set(&[("kept", 100), ("added", 100)]);
        let rows = compare(&base, &cur, DEFAULT_TOLERANCE);
        let by = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by("dropped").status, PerfStatus::Missing);
        assert_eq!(by("added").status, PerfStatus::New);
        assert!(by("dropped").status.fails_gate(), "dropped coverage must fail");
        assert!(!by("added").status.fails_gate(), "new benches pass until rebaselined");
        // Row order: baseline order first, then new entries.
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["kept", "dropped", "added"]);
    }

    #[test]
    fn parse_floors_round_trips_runner_json() {
        let mut r = dbp_util::bench::Runner::new(dbp_util::bench::BenchConfig {
            warmup_iters: 0,
            iters: 1,
        });
        r.bench("spin", 8, || std::hint::black_box(1u64 + 1));
        let doc = dbp_obs::json::parse(&r.json_report().to_json()).unwrap();
        let floors = parse_floors(&doc).unwrap();
        assert_eq!(floors.len(), 1);
        assert_eq!(floors[0].0, "spin");
        assert!(parse_floors(&Json::obj([("nope", Json::uint(1))])).is_err());
    }

    #[test]
    fn history_line_is_schema_stamped_and_keyed_by_name() {
        let doc = Json::obj([(
            "benchmarks",
            Json::arr([
                Json::obj([("name", Json::str("a")), ("median_ns", Json::uint(120))]),
                Json::obj([("name", Json::str("b")), ("median_ns", Json::uint(7))]),
            ]),
        )]);
        let line = history_line(&doc, 1_700_000_000).unwrap();
        assert_eq!(line.get("unix_time_s").and_then(Json::as_num), Some(1.7e9));
        assert_eq!(line.get("benchmarks").and_then(Json::as_num), Some(2.0));
        assert_eq!(
            line.get("medians").and_then(|m| m.get("a")).and_then(Json::as_num),
            Some(120.0)
        );
        assert!(line.get("schema_version").is_some());
        // The line must survive its own serialisation (what CI appends).
        let reparsed = dbp_obs::json::parse(&line.to_json()).unwrap();
        assert_eq!(reparsed, line);
        // Medians are required: a floors-only document is an error.
        let floors_only = Json::obj([(
            "benchmarks",
            Json::arr([Json::obj([("name", Json::str("a")), ("min_ns", Json::uint(9))])]),
        )]);
        assert!(history_line(&floors_only, 0).is_err());
    }

    #[test]
    fn delta_table_renders_all_statuses() {
        let base = set(&[("reg", 1_000), ("gone", 50)]);
        let cur = set(&[("reg", 5_000), ("fresh", 10)]);
        let t = delta_table(&compare(&base, &cur, DEFAULT_TOLERANCE));
        let s = t.render();
        assert!(s.contains("regressed") && s.contains("missing") && s.contains("new"));
        assert!(s.contains("+400.0%"));
        assert!(s.contains('-'), "absent sides render as dashes");
    }

    #[test]
    fn tolerance_env_parses_defensively() {
        // (Cannot set the var in-process without racing other tests;
        // exercise the default path plus the numeric guards directly.)
        assert_eq!(tolerance_from_env(), DEFAULT_TOLERANCE);
        assert!(compare(&set(&[("a", 100)]), &set(&[("a", 100)]), 0.0)
            .iter()
            .all(|r| r.status == PerfStatus::Ok));
    }
}
