//! Figure 1 (motivation): DRAM interference between co-running applications
//!
//! Run: `cargo run --release -p dbp-bench --bin fig1_motivation`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig1_motivation");
}
