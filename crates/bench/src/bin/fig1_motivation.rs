//! Figure 1 (motivation): DRAM interference between co-running applications
//!
//! Run: `cargo run --release -p dbp-bench --bin fig1_motivation`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 1 (motivation): DRAM interference between co-running applications ==\n");
    println!("{}", dbp_bench::experiments::fig1_motivation(&cfg));
}
