//! Figure 12: sensitivity to the repartitioning epoch
//!
//! Run: `cargo run --release -p dbp-bench --bin fig12_epoch_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig12_epoch_sweep");
}
