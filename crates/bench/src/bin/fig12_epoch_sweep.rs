//! Figure 12: sensitivity to the repartitioning epoch
//!
//! Run: `cargo run --release -p dbp-bench --bin fig12_epoch_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 12: sensitivity to the repartitioning epoch ==\n");
    println!("{}", dbp_bench::experiments::fig12_epoch_sweep(&cfg));
}
