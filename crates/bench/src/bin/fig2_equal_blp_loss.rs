//! Figure 2: restricting banks destroys high-BLP benchmarks (the cost of equal partitioning)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig2_equal_blp_loss`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig2_equal_blp_loss");
}
