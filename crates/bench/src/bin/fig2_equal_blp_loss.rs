//! Figure 2: restricting banks destroys high-BLP benchmarks (the cost of equal partitioning)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig2_equal_blp_loss`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 2: restricting banks destroys high-BLP benchmarks (the cost of equal partitioning) ==\n");
    println!("{}", dbp_bench::experiments::fig2_equal_blp_loss(&cfg));
}
