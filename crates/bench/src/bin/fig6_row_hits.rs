//! Figure 6: system row-buffer hit rate per policy
//!
//! Run: `cargo run --release -p dbp-bench --bin fig6_row_hits`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig6_row_hits");
}
