//! Figure 6: system row-buffer hit rate per policy
//!
//! Run: `cargo run --release -p dbp-bench --bin fig6_row_hits`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 6: system row-buffer hit rate per policy ==\n");
    println!("{}", dbp_bench::experiments::fig6_row_hits(&cfg));
}
