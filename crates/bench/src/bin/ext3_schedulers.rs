//! Extension: scheduler landscape with and without DBP.
//!
//! Run: `cargo run --release -p dbp-bench --bin ext3_schedulers`

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Extension: scheduler landscape (FCFS..TCM), shared vs +DBP ==\n");
    println!("{}", dbp_bench::experiments::ext3_schedulers(&cfg));
    println!("(WS higher is better; MS lower is fairer)");
}
