//! Extension: scheduler landscape with and without DBP.
//!
//! Run: `cargo run --release -p dbp-bench --bin ext3_schedulers`

fn main() {
    dbp_bench::run_bin("ext3_schedulers");
}
