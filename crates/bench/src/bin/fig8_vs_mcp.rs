//! Figure 8: DBP-TCM vs MCP (paper: +5.3% WS, +37% fairness)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig8_vs_mcp`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 8: DBP-TCM vs MCP (paper: +5.3% WS, +37% fairness) ==\n");
    let (ws, ms) = dbp_bench::experiments::fig8_vs_mcp(&cfg);
    println!("{ws}");
    println!("(weighted speedup: higher is better)\n");
    println!("{ms}");
    println!("(maximum slowdown: lower is better/fairer)");
}
