//! Figure 8: DBP-TCM vs MCP (paper: +5.3% WS, +37% fairness)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig8_vs_mcp`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig8_vs_mcp");
}
