//! Figure 3: bank-demand estimation accuracy vs empirical optimum
//!
//! Run: `cargo run --release -p dbp-bench --bin fig3_demand_estimation`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 3: bank-demand estimation accuracy vs empirical optimum ==\n");
    println!("{}", dbp_bench::experiments::fig3_demand_estimation(&cfg));
}
