//! Figure 3: bank-demand estimation accuracy vs empirical optimum
//!
//! Run: `cargo run --release -p dbp-bench --bin fig3_demand_estimation`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig3_demand_estimation");
}
