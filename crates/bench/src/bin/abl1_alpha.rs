//! Ablation 1: demand head-room coefficient alpha
//!
//! Run: `cargo run --release -p dbp-bench --bin abl1_alpha`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Ablation 1: demand head-room coefficient alpha ==\n");
    println!("{}", dbp_bench::experiments::abl1_alpha(&cfg));
}
