//! Ablation 1: demand head-room coefficient alpha
//!
//! Run: `cargo run --release -p dbp-bench --bin abl1_alpha`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("abl1_alpha");
}
