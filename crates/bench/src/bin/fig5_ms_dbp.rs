//! Figure 5: maximum slowdown - shared vs equal-BP vs DBP (paper: DBP improves fairness 16% over equal-BP)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig5_ms_dbp`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 5: maximum slowdown - shared vs equal-BP vs DBP (paper: DBP improves fairness 16% over equal-BP) ==\n");
    println!("{}", dbp_bench::experiments::fig5_ms_dbp(&cfg));
    println!("(maximum slowdown: lower is better/fairer)");
}
