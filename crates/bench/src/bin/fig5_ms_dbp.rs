//! Figure 5: maximum slowdown - shared vs equal-BP vs DBP (paper: DBP improves fairness 16% over equal-BP)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig5_ms_dbp`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig5_ms_dbp");
}
