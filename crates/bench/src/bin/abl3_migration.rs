//! Ablation 3: page-migration cost model
//!
//! Run: `cargo run --release -p dbp-bench --bin abl3_migration`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Ablation 3: page-migration cost model ==\n");
    println!("{}", dbp_bench::experiments::abl3_migration(&cfg));
}
