//! Ablation 3: page-migration cost model
//!
//! Run: `cargo run --release -p dbp-bench --bin abl3_migration`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("abl3_migration");
}
