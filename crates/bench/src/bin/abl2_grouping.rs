//! Ablation 2: grouping non-intensive threads on a shared slice
//!
//! Run: `cargo run --release -p dbp-bench --bin abl2_grouping`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Ablation 2: grouping non-intensive threads on a shared slice ==\n");
    println!("{}", dbp_bench::experiments::abl2_grouping(&cfg));
}
