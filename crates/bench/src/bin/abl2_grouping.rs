//! Ablation 2: grouping non-intensive threads on a shared slice
//!
//! Run: `cargo run --release -p dbp-bench --bin abl2_grouping`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("abl2_grouping");
}
