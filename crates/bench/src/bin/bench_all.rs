//! Run the entire experiment suite — all tables, figures, ablations and
//! extensions — in one process, sharing one worker pool and one memoized
//! solo-run cache across experiments.
//!
//! Run: `cargo run --release -p dbp-bench --bin bench_all`
//!
//! Flags / environment:
//!
//! - `--quick` (or `DBP_QUICK=1`) — reduced instruction targets
//! - `--json <path>` (or `DBP_SUITE_JSON=<path>`) — write the suite
//!   timing summary as JSON (CI publishes it next to
//!   `BENCH_results.json`)
//! - `--profile-out <path>` — self-profile the suite (spans + work
//!   counters) and write the profile document there (render: `dbpprof`)
//! - `--baseline <path>` — compare micro-bench medians against this
//!   committed baseline (`BENCH_baseline.json`) and print a delta table
//! - `--bench-results <path>` — the current medians for the comparison
//!   (a `DBP_BENCH_JSON` artifact; required with `--baseline`)
//! - `--perf-out <path>` — write the comparison as a perf-summary JSON
//! - `--history-append <path>` — append one schema-stamped JSON line
//!   with this run's micro-bench medians to the longitudinal history
//!   (`BENCH_history.jsonl`; requires `--bench-results`)
//! - `--perf-only` — skip the experiment suite; just compare and gate
//! - `--tolerance <frac>` (or `DBP_PERF_TOLERANCE`) — relative noise
//!   tolerance for the comparison (default 0.35)
//! - `DBP_PERF_GATE=1` — a regressed or missing benchmark exits 1
//!   (default: warn and exit 0)
//! - `DBP_JOBS=n` — worker count (`1` forces the serial reference path)
//!
//! Experiment tables go to **stdout** and are byte-identical for any
//! worker count; timing, progress, and the perf delta table go to
//! **stderr**, so `bench_all > tables.txt` is diffable across `DBP_JOBS`
//! settings — exactly what the CI determinism gate does. Every artifact
//! write failure is a hard error: CI must never mistake a run whose
//! output silently vanished for a successful one.

use dbp_bench::engine::Engine;
use dbp_bench::{experiments, harness, perf};
use dbp_obs::export::{profile_document, suite_timing_document, SuiteExperimentTiming};
use dbp_obs::{Json, Prof, Table};
use dbp_util::bench::{fmt_ns, Stopwatch};

struct Opts {
    quick: bool,
    json_path: Option<String>,
    profile_out: Option<String>,
    baseline: Option<String>,
    bench_results: Option<String>,
    perf_out: Option<String>,
    history_append: Option<String>,
    perf_only: bool,
    tolerance: f64,
}

fn usage() -> &'static str {
    "usage: bench_all [--quick] [--json <path>] [--profile-out <path>]\n\
     \x20                [--baseline <path> --bench-results <path>] [--perf-out <path>]\n\
     \x20                [--history-append <path>] [--perf-only] [--tolerance <frac>]\n\
     \x20  (DBP_JOBS=n sets workers; DBP_PERF_GATE=1 makes regressions fatal)"
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: harness::quick(),
        json_path: std::env::var("DBP_SUITE_JSON").ok().filter(|p| !p.trim().is_empty()),
        profile_out: None,
        baseline: None,
        bench_results: None,
        perf_out: None,
        history_append: None,
        perf_only: false,
        tolerance: perf::tolerance_from_env(),
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("bench_all: {flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--json" => opts.json_path = Some(value("--json", &mut args)),
            "--profile-out" => opts.profile_out = Some(value("--profile-out", &mut args)),
            "--baseline" => opts.baseline = Some(value("--baseline", &mut args)),
            "--bench-results" => opts.bench_results = Some(value("--bench-results", &mut args)),
            "--perf-out" => opts.perf_out = Some(value("--perf-out", &mut args)),
            "--history-append" => {
                opts.history_append = Some(value("--history-append", &mut args));
            }
            "--perf-only" => opts.perf_only = true,
            "--tolerance" => {
                let v = value("--tolerance", &mut args);
                match v.trim().parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => opts.tolerance = t,
                    _ => {
                        eprintln!("bench_all: --tolerance needs a non-negative number, got `{v}`");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("{}", usage());
                std::process::exit(0);
            }
            other => {
                eprintln!("bench_all: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    if opts.baseline.is_some() && opts.bench_results.is_none() {
        eprintln!("bench_all: --baseline needs --bench-results <path> (the current medians)");
        std::process::exit(2);
    }
    if opts.history_append.is_some() && opts.bench_results.is_none() {
        eprintln!("bench_all: --history-append needs --bench-results <path> (the medians source)");
        std::process::exit(2);
    }
    if opts.perf_only && opts.baseline.is_none() {
        eprintln!("bench_all: --perf-only without --baseline has nothing to do");
        std::process::exit(2);
    }
    opts
}

/// Write `doc` to `path` or exit 1 — a vanished artifact must not look
/// like success to CI.
fn write_or_die(what: &str, path: &str, doc: &Json) {
    match std::fs::write(path, doc.to_json()) {
        Ok(()) => eprintln!("bench_all: wrote {what} to {path}"),
        Err(e) => {
            eprintln!("bench_all: cannot write {what} {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn load_floors(what: &str, path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_all: cannot read {what} {path}: {e}");
        std::process::exit(1);
    });
    let doc = dbp_obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_all: {what} {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    perf::parse_floors(&doc).unwrap_or_else(|e| {
        eprintln!("bench_all: {what} {path}: {e}");
        std::process::exit(1);
    })
}

fn run_suite(opts: &Opts) {
    let prof = if opts.profile_out.is_some() { Prof::enabled() } else { Prof::disabled() };
    let mut eng = Engine::from_env();
    eng.attach_profiler(&prof);
    let cfg = harness::config_for(opts.quick);
    eprintln!(
        "bench_all: {} worker(s), {} config{}",
        eng.workers(),
        if opts.quick { "quick" } else { "full (Table 1)" },
        if prof.is_enabled() { ", self-profiling on" } else { "" }
    );

    let suite = Stopwatch::start();
    let mut rows: Vec<SuiteExperimentTiming> = Vec::new();
    for exp in experiments::all() {
        let before = eng.stats();
        let sw = Stopwatch::start();
        let body = (exp.render)(&eng, &cfg);
        let wall = sw.elapsed_ns();
        println!("== {} ==\n", exp.title);
        println!("{body}");
        let done = eng.stats().since(&before);
        eprintln!(
            "bench_all: {} done in {} ({} job(s), {} solo-cache hit(s))",
            exp.name,
            fmt_ns(wall),
            done.jobs(),
            done.solo_cache_hits
        );
        rows.push(SuiteExperimentTiming {
            name: exp.name.to_string(),
            wall_ns: wall,
            jobs: done.jobs(),
            solo_cache_hits: done.solo_cache_hits,
        });
    }

    let total_ns = suite.elapsed_ns();
    let s = eng.stats();
    let mut timing = Table::new(["experiment", "wall", "jobs", "cache hits"]);
    timing.align_left(0);
    for r in &rows {
        timing.row([
            r.name.clone(),
            fmt_ns(r.wall_ns),
            r.jobs.to_string(),
            r.solo_cache_hits.to_string(),
        ]);
    }
    timing.row([
        "total".to_owned(),
        fmt_ns(total_ns),
        s.jobs().to_string(),
        s.solo_cache_hits.to_string(),
    ]);
    eprint!("{}", timing.render());
    eprintln!(
        "bench_all: suite done in {} on {} worker(s) — {} jobs ({} shared, {} solo, {} aux), \
         {} solo-cache hits ({} distinct solo runs memoized)",
        fmt_ns(total_ns),
        eng.workers(),
        s.jobs(),
        s.shared_runs,
        s.solo_runs,
        s.aux_runs,
        s.solo_cache_hits,
        eng.cached_solo_runs()
    );

    if let Some(path) = &opts.json_path {
        let doc = suite_timing_document(
            eng.workers(),
            opts.quick,
            total_ns,
            &rows,
            &eng.take_annotations(),
        );
        write_or_die("suite timing JSON", path, &doc);
    }
    if let Some(path) = &opts.profile_out {
        let profile = prof.snapshot();
        let summary = Json::obj([
            ("source", Json::str("bench_all")),
            ("workers", Json::uint(eng.workers() as u64)),
            ("quick", Json::Bool(opts.quick)),
            ("suite_wall_ns", Json::uint(total_ns as u64)),
        ]);
        write_or_die("self-profile JSON", path, &profile_document(&profile, summary));
    }
}

/// Append this run's medians as one JSON line to the longitudinal
/// history file. Append-only: history is a log, never rewritten.
fn run_history_append(opts: &Opts) {
    use std::io::Write;

    let Some(path) = &opts.history_append else { return };
    let results_path = opts.bench_results.as_deref().expect("checked in parse_opts");
    let text = std::fs::read_to_string(results_path).unwrap_or_else(|e| {
        eprintln!("bench_all: cannot read bench results {results_path}: {e}");
        std::process::exit(1);
    });
    let doc = dbp_obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_all: bench results {results_path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let line = perf::history_line(&doc, now).unwrap_or_else(|e| {
        eprintln!("bench_all: bench results {results_path}: {e}");
        std::process::exit(1);
    });
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{}", line.to_json()));
    match appended {
        Ok(()) => eprintln!("bench_all: appended bench history line to {path}"),
        Err(e) => {
            eprintln!("bench_all: cannot append bench history {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Compare medians against the baseline; returns whether the gate failed.
fn run_perf_compare(opts: &Opts) -> bool {
    let Some(baseline_path) = &opts.baseline else { return false };
    let results_path = opts.bench_results.as_deref().expect("checked in parse_opts");
    let baseline = load_floors("baseline", baseline_path);
    let current = load_floors("bench results", results_path);
    let rows = perf::compare(&baseline, &current, opts.tolerance);
    eprintln!(
        "bench_all: perf comparison vs {baseline_path} (tolerance ±{:.0}%)",
        opts.tolerance * 100.0
    );
    eprint!("{}", perf::delta_table(&rows).render());

    let gate_enforced = std::env::var("DBP_PERF_GATE").is_ok_and(|v| v.trim() == "1");
    if let Some(path) = &opts.perf_out {
        let doc = perf::perf_summary_document(&rows, opts.tolerance, gate_enforced);
        write_or_die("perf summary JSON", path, &doc);
    }
    let failures = perf::gate_failures(&rows);
    if failures.is_empty() {
        eprintln!("bench_all: perf gate passed ({} benchmark(s) compared)", rows.len());
        return false;
    }
    for f in &failures {
        eprintln!(
            "bench_all: perf {}: {} (baseline {}, current {})",
            f.status.as_str(),
            f.name,
            f.baseline_ns.map_or_else(|| "-".into(), |n| fmt_ns(u128::from(n))),
            f.current_ns.map_or_else(|| "-".into(), |n| fmt_ns(u128::from(n))),
        );
    }
    if gate_enforced {
        eprintln!("bench_all: perf gate FAILED ({} finding(s); DBP_PERF_GATE=1)", failures.len());
        true
    } else {
        eprintln!(
            "bench_all: perf gate would fail ({} finding(s)) — advisory only; \
             set DBP_PERF_GATE=1 to enforce",
            failures.len()
        );
        false
    }
}

fn main() {
    let opts = parse_opts();
    if !opts.perf_only {
        run_suite(&opts);
    }
    run_history_append(&opts);
    if run_perf_compare(&opts) {
        std::process::exit(1);
    }
}
