//! Run the entire experiment suite — all tables, figures, ablations and
//! extensions — in one process, sharing one worker pool and one memoized
//! solo-run cache across experiments.
//!
//! Run: `cargo run --release -p dbp-bench --bin bench_all`
//!
//! Flags / environment:
//!
//! - `--quick` (or `DBP_QUICK=1`) — reduced instruction targets
//! - `--json <path>` (or `DBP_SUITE_JSON=<path>`) — write the suite
//!   timing summary as JSON (CI publishes it next to
//!   `BENCH_results.json`)
//! - `DBP_JOBS=n` — worker count (`1` forces the serial reference path)
//!
//! Experiment tables go to **stdout** and are byte-identical for any
//! worker count; timing and progress go to **stderr**, so
//! `bench_all > tables.txt` is diffable across `DBP_JOBS` settings —
//! exactly what the CI determinism gate does.

use dbp_bench::engine::Engine;
use dbp_bench::{experiments, harness};
use dbp_obs::export::{suite_timing_document, SuiteExperimentTiming};
use dbp_util::bench::{fmt_ns, Stopwatch};

fn main() {
    let mut quick = harness::quick();
    let mut json_path = std::env::var("DBP_SUITE_JSON").ok().filter(|p| !p.trim().is_empty());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("bench_all: --json needs a file path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: bench_all [--quick] [--json <path>]   (DBP_JOBS=n sets workers)");
                return;
            }
            other => {
                eprintln!("bench_all: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    let eng = Engine::from_env();
    let cfg = harness::config_for(quick);
    eprintln!(
        "bench_all: {} worker(s), {} config",
        eng.workers(),
        if quick { "quick" } else { "full (Table 1)" }
    );

    let suite = Stopwatch::start();
    let mut rows: Vec<SuiteExperimentTiming> = Vec::new();
    for exp in experiments::all() {
        let before = eng.stats();
        let sw = Stopwatch::start();
        let body = (exp.render)(&eng, &cfg);
        let wall = sw.elapsed_ns();
        println!("== {} ==\n", exp.title);
        println!("{body}");
        let done = eng.stats().since(&before);
        eprintln!(
            "bench_all: {:<24} {:>12}   {} job(s), {} solo-cache hit(s)",
            exp.name,
            fmt_ns(wall),
            done.jobs(),
            done.solo_cache_hits
        );
        rows.push(SuiteExperimentTiming {
            name: exp.name.to_string(),
            wall_ns: wall,
            jobs: done.jobs(),
            solo_cache_hits: done.solo_cache_hits,
        });
    }

    let total_ns = suite.elapsed_ns();
    let s = eng.stats();
    eprintln!(
        "bench_all: suite done in {} on {} worker(s) — {} jobs ({} shared, {} solo, {} aux), \
         {} solo-cache hits ({} distinct solo runs memoized)",
        fmt_ns(total_ns),
        eng.workers(),
        s.jobs(),
        s.shared_runs,
        s.solo_runs,
        s.aux_runs,
        s.solo_cache_hits,
        eng.cached_solo_runs()
    );

    if let Some(path) = json_path {
        let doc =
            suite_timing_document(eng.workers(), quick, total_ns, &rows, &eng.take_annotations());
        match std::fs::write(&path, doc.to_json()) {
            Ok(()) => eprintln!("bench_all: wrote suite timing JSON to {path}"),
            Err(e) => {
                eprintln!("bench_all: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
