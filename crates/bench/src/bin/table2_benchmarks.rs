//! Table 2: benchmark characteristics (targets marked *, measured unmarked)
//!
//! Run: `cargo run --release -p dbp-bench --bin table2_benchmarks`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("table2_benchmarks");
}
