//! Table 2: benchmark characteristics (targets marked *, measured unmarked)
//!
//! Run: `cargo run --release -p dbp-bench --bin table2_benchmarks`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Table 2: benchmark characteristics (targets marked *, measured unmarked) ==\n");
    println!("{}", dbp_bench::experiments::table2_benchmarks(&cfg));
}
