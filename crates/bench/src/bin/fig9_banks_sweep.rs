//! Figure 9: sensitivity to total bank count
//!
//! Run: `cargo run --release -p dbp-bench --bin fig9_banks_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 9: sensitivity to total bank count ==\n");
    println!("{}", dbp_bench::experiments::fig9_banks_sweep(&cfg));
}
