//! Figure 9: sensitivity to total bank count
//!
//! Run: `cargo run --release -p dbp-bench --bin fig9_banks_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig9_banks_sweep");
}
