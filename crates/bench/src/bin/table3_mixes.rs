//! Table 3: multiprogrammed workload mixes
//!
//! Run: `cargo run --release -p dbp-bench --bin table3_mixes`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Table 3: multiprogrammed workload mixes ==\n");
    let _ = cfg;
    println!("{}", dbp_bench::experiments::table3_mixes());
}
