//! Table 3: multiprogrammed workload mixes
//!
//! Run: `cargo run --release -p dbp-bench --bin table3_mixes`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("table3_mixes");
}
