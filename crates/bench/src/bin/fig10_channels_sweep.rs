//! Figure 10: sensitivity to channel count
//!
//! Run: `cargo run --release -p dbp-bench --bin fig10_channels_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 10: sensitivity to channel count ==\n");
    println!("{}", dbp_bench::experiments::fig10_channels_sweep(&cfg));
}
