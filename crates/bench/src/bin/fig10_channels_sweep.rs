//! Figure 10: sensitivity to channel count
//!
//! Run: `cargo run --release -p dbp-bench --bin fig10_channels_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig10_channels_sweep");
}
