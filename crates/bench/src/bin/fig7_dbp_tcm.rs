//! Figure 7: composing DBP with TCM (paper: DBP-TCM +6.2% WS, +16.7% fairness over TCM)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig7_dbp_tcm`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig7_dbp_tcm");
}
