//! Figure 7: composing DBP with TCM (paper: DBP-TCM +6.2% WS, +16.7% fairness over TCM)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig7_dbp_tcm`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 7: composing DBP with TCM (paper: DBP-TCM +6.2% WS, +16.7% fairness over TCM) ==\n");
    println!("{}", dbp_bench::experiments::fig7_dbp_tcm_ws(&cfg));
    println!("(weighted speedup: higher is better)\n");
    println!("{}", dbp_bench::experiments::fig7_dbp_tcm_ms(&cfg));
    println!("(maximum slowdown: lower is better/fairer)");
}
