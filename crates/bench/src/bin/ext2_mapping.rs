//! Extension: DBP under permutation-based (XOR) bank mapping
//!
//! Run: `cargo run --release -p dbp-bench --bin ext2_mapping`

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Extension: DBP under permutation-based (XOR) bank mapping ==\n");
    println!("{}", dbp_bench::experiments::ext2_mapping(&cfg));
}
