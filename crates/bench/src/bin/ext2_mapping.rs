//! Extension: DBP under permutation-based (XOR) bank mapping
//!
//! Run: `cargo run --release -p dbp-bench --bin ext2_mapping`

fn main() {
    dbp_bench::run_bin("ext2_mapping");
}
