//! Table 1: simulated system configuration
//!
//! Run: `cargo run --release -p dbp-bench --bin table1_config`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("table1_config");
}
