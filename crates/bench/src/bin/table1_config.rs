//! Table 1: simulated system configuration
//!
//! Run: `cargo run --release -p dbp-bench --bin table1_config`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Table 1: simulated system configuration ==\n");
    println!("{}", dbp_bench::experiments::table1_config(&cfg));
}
