//! Diagnostic: decision audit — shadow policies, estimator accuracy,
//! convergence (mix50-1).
//!
//! Run: `cargo run --release -p dbp-bench --bin diag_audit`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("diag_audit");
}
