//! Figure 4: weighted speedup - shared vs equal-BP vs DBP (paper: DBP +4.3% over equal-BP)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig4_ws_dbp`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig4_ws_dbp");
}
