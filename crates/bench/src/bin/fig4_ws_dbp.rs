//! Figure 4: weighted speedup - shared vs equal-BP vs DBP (paper: DBP +4.3% over equal-BP)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig4_ws_dbp`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 4: weighted speedup - shared vs equal-BP vs DBP (paper: DBP +4.3% over equal-BP) ==\n");
    println!("{}", dbp_bench::experiments::fig4_ws_dbp(&cfg));
    println!("(weighted speedup: higher is better)");
}
