//! Extension: DRAM energy by policy (activate savings from partitioning)
//!
//! Run: `cargo run --release -p dbp-bench --bin ext1_energy`

fn main() {
    dbp_bench::run_bin("ext1_energy");
}
