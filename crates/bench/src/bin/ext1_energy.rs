//! Extension: DRAM energy by policy (activate savings from partitioning)
//!
//! Run: `cargo run --release -p dbp-bench --bin ext1_energy`

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Extension: DRAM energy by policy (activate savings from partitioning) ==\n");
    println!("{}", dbp_bench::experiments::ext1_energy(&cfg));
}
