//! Figure 11: sensitivity to core count (scaled mixes)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig11_cores_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("fig11_cores_sweep");
}
