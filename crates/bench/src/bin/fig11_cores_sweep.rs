//! Figure 11: sensitivity to core count (scaled mixes)
//!
//! Run: `cargo run --release -p dbp-bench --bin fig11_cores_sweep`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    let cfg = dbp_bench::harness::base_config();
    println!("== Figure 11: sensitivity to core count (scaled mixes) ==\n");
    println!("{}", dbp_bench::experiments::fig11_cores_sweep(&cfg));
}
