//! Diagnostic: latency anatomy & interference attribution (Fig. 1 mix)
//!
//! Run: `cargo run --release -p dbp-bench --bin diag_interference`
//! (set `DBP_QUICK=1` for a fast, noisier version).

fn main() {
    dbp_bench::run_bin("diag_interference");
}
