//! Shared experiment scaffolding: configurations, policy combinations,
//! and alone-run reuse.

use dbp_core::policy::PolicyKind;
use dbp_sim::{SchedulerKind, SimConfig};

/// A labelled (scheduler, policy) point in the comparison space.
#[derive(Debug, Clone, Copy)]
pub struct Combo {
    pub label: &'static str,
    pub scheduler: SchedulerKind,
    pub policy: PolicyKind,
}

impl Combo {
    /// Apply this combo to a configuration.
    pub fn apply(&self, cfg: &SimConfig) -> SimConfig {
        let mut c = cfg.clone();
        c.scheduler = self.scheduler;
        c.policy = self.policy;
        c
    }
}

/// FR-FCFS on a fully shared memory system (the conventional baseline).
pub fn shared() -> Combo {
    Combo { label: "FRFCFS", scheduler: SchedulerKind::FrFcfs, policy: PolicyKind::Unpartitioned }
}

/// Static equal bank partitioning.
pub fn equal_bp() -> Combo {
    Combo { label: "equal-BP", scheduler: SchedulerKind::FrFcfs, policy: PolicyKind::Equal }
}

/// Dynamic Bank Partitioning (the paper's contribution).
pub fn dbp() -> Combo {
    Combo {
        label: "DBP",
        scheduler: SchedulerKind::FrFcfs,
        policy: PolicyKind::Dbp(Default::default()),
    }
}

/// TCM scheduling on a shared system.
pub fn tcm() -> Combo {
    Combo {
        label: "TCM",
        scheduler: SchedulerKind::Tcm(Default::default()),
        policy: PolicyKind::Unpartitioned,
    }
}

/// DBP-TCM: the paper's combined proposal.
pub fn dbp_tcm() -> Combo {
    Combo {
        label: "DBP-TCM",
        scheduler: SchedulerKind::Tcm(Default::default()),
        policy: PolicyKind::Dbp(Default::default()),
    }
}

/// Memory channel partitioning (MCP baseline).
pub fn mcp() -> Combo {
    Combo {
        label: "MCP",
        scheduler: SchedulerKind::FrFcfs,
        policy: PolicyKind::Mcp(Default::default()),
    }
}

/// Whether `DBP_QUICK` mode is active.
pub fn quick() -> bool {
    std::env::var_os("DBP_QUICK").is_some()
}

/// The Table 1 system configuration, optionally scaled down to the
/// quick (CI/smoke) instruction targets.
pub fn config_for(quick: bool) -> SimConfig {
    let mut cfg = SimConfig::default();
    if quick {
        cfg.warmup_instructions = 60_000;
        cfg.target_instructions = 150_000;
        cfg.epoch_cpu_cycles = 150_000;
        cfg.instr_feed_interval = 30_000;
    }
    cfg
}

/// The Table 1 system configuration, scaled down if `DBP_QUICK` is set.
pub fn base_config() -> SimConfig {
    config_for(quick())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combos_have_distinct_labels() {
        let all = [shared(), equal_bp(), dbp(), tcm(), dbp_tcm(), mcp()];
        let mut labels: Vec<_> = all.iter().map(|c| c.label).collect();
        labels.sort_unstable();
        let n = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }

    #[test]
    fn base_config_validates() {
        base_config().validate().unwrap();
    }

    #[test]
    fn combo_apply_overrides_policy() {
        let cfg = base_config();
        let c = dbp().apply(&cfg);
        assert!(matches!(c.policy, PolicyKind::Dbp(_)));
    }
}
