//! A zero-dependency parallel work pool for the experiment suite.
//!
//! [`par_map`] runs every item of a batch through a closure on a crew of
//! scoped worker threads pulling from a shared queue (work stealing in
//! the "whoever is free takes the next job" sense), and collects the
//! results *by index*, so the output order — and therefore every table
//! built from it — is byte-identical to a serial run of the same batch.
//!
//! Worker count comes from [`default_workers`]:
//! `std::thread::available_parallelism`, overridable with the `DBP_JOBS`
//! environment variable (`DBP_JOBS=1` forces the serial path, which the
//! CI determinism gate diffs against a parallel run).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Parse a `DBP_JOBS`-style override: a positive worker count, or `None`
/// for absent/unparseable values (then the hardware decides).
pub fn workers_from(value: Option<&str>) -> Option<usize> {
    value.and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// The worker count the suite should use: `DBP_JOBS` if set to a
/// positive integer, else the machine's available parallelism.
pub fn default_workers() -> usize {
    let env = std::env::var("DBP_JOBS").ok();
    workers_from(env.as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Map `f` over `items` on up to `workers` threads, preserving order.
///
/// Each worker repeatedly pops the next `(index, item)` off a shared
/// queue and stores `f(item)` into slot `index`, so the result vector is
/// independent of scheduling. With `workers <= 1` (or a single item) the
/// batch runs inline on the caller's thread — the serial reference the
/// parallel path must match byte-for-byte.
///
/// # Panics
///
/// A panic inside `f` aborts the whole batch (scoped threads propagate
/// it), so a failed job — e.g. an alone run hitting its cycle cap —
/// stops the experiment with its diagnostic instead of producing a
/// partial table.
pub fn par_map<I, T>(workers: usize, items: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T>
where
    I: Send,
    T: Send,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let job = queue.lock().expect("job queue poisoned").pop_front();
                let Some((i, item)) = job else { break };
                let out = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("worker completed every job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map(4, (0..100u64).collect(), |i| i * i);
        assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<u64> = (0..57).collect();
        let serial = par_map(1, items.clone(), |i| i.wrapping_mul(0x9e37_79b9));
        let parallel = par_map(8, items, |i| i.wrapping_mul(0x9e37_79b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_batches() {
        assert!(par_map(4, Vec::<u8>::new(), |v| v).is_empty());
        assert_eq!(par_map(4, vec![7u8], |v| v + 1), vec![8]);
    }

    #[test]
    fn jobs_override_parses() {
        assert_eq!(workers_from(Some("4")), Some(4));
        assert_eq!(workers_from(Some(" 2 ")), Some(2));
        assert_eq!(workers_from(Some("0")), None, "zero workers is nonsense");
        assert_eq!(workers_from(Some("lots")), None);
        assert_eq!(workers_from(None), None);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn workers_share_one_queue() {
        // More jobs than workers with uneven costs: every job must still
        // land in its own slot exactly once.
        let out = par_map(3, (0..40u64).collect(), |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i + 1
        });
        assert_eq!(out, (1..=40u64).collect::<Vec<_>>());
    }
}
