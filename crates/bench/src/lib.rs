//! Benchmark harness for the DBP reproduction.
//!
//! Every table and figure of the (reconstructed) evaluation has a binary
//! in `src/bin/` that regenerates it; the experiment logic lives here so
//! the integration tests can smoke-run scaled-down versions of each.
//! The `bench_all` binary runs the whole registry in one process, which
//! lets the [`engine`]'s memoized solo-run cache be shared across
//! experiments.
//!
//! Set `DBP_QUICK=1` to run every experiment at a reduced instruction
//! target (useful for CI and smoke tests); the shapes survive, the noise
//! grows. Set `DBP_JOBS=n` to pin the worker count (`DBP_JOBS=1` forces
//! the serial reference path).
//!
//! ```no_run
//! // Regenerate Figure 4 (weighted speedup, DBP vs equal vs shared):
//! let eng = dbp_bench::engine::Engine::from_env();
//! let table = dbp_bench::experiments::fig4_ws_dbp(&eng, &dbp_bench::harness::base_config());
//! println!("{table}");
//! ```

pub mod engine;
pub mod experiments;
pub mod harness;
pub mod micro;
pub mod perf;
pub mod pool;

/// Entry point shared by the per-experiment binaries: look up `name` in
/// the registry, run it through a fresh engine at the `DBP_QUICK`-aware
/// base configuration, and print the banner plus body to stdout.
///
/// # Panics
///
/// Panics if `name` is not a registered experiment (a binary/registry
/// mismatch is a build bug, not a runtime condition).
pub fn run_bin(name: &str) {
    let exp = experiments::all()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("experiment `{name}` is not registered"));
    let eng = engine::Engine::from_env();
    let cfg = harness::base_config();
    println!("== {} ==\n", exp.title);
    println!("{}", (exp.render)(&eng, &cfg));
}
