//! Benchmark harness for the DBP reproduction.
//!
//! Every table and figure of the (reconstructed) evaluation has a binary
//! in `src/bin/` that regenerates it; the experiment logic lives here so
//! the integration tests can smoke-run scaled-down versions of each.
//!
//! Set `DBP_QUICK=1` to run every experiment at a reduced instruction
//! target (useful for CI and smoke tests); the shapes survive, the noise
//! grows.
//!
//! ```no_run
//! // Regenerate Figure 4 (weighted speedup, DBP vs equal vs shared):
//! let table = dbp_bench::experiments::fig4_ws_dbp(&dbp_bench::harness::base_config());
//! println!("{table}");
//! ```

pub mod experiments;
pub mod harness;
