//! The parallel sweep engine: every experiment's simulation runs become
//! independent jobs on the [`crate::pool`], and alone (solo) runs are
//! memoized across combos, sweep points, and experiments.
//!
//! # Why the cache is sound
//!
//! An alone run is a pure function of (a) the system configuration
//! fields that can influence it — captured by
//! [`runner::alone_fingerprint`] — and (b) the synthetic trace, which is
//! fully determined by the benchmark name and its seed
//! ([`runner::seed_for`]). The cache key is exactly that triple, so a
//! hit returns bit-identical data to a recomputation, and results do not
//! depend on which experiment happened to populate the entry first.
//!
//! # Why parallelism preserves determinism
//!
//! Each job builds its own [`dbp_sim::System`] inside the worker from
//! plain `(SimConfig, Mix, core)` data — nothing simulated is shared
//! across threads — and [`crate::pool::par_map`] collects results by
//! index. `DBP_JOBS=1` and `DBP_JOBS=64` therefore produce byte-identical
//! tables (the determinism test below and the CI gate both assert it).

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use dbp_obs::{Json, Prof};
use dbp_sim::runner::{self, MixRun};
use dbp_sim::{RunResult, SimConfig};
use dbp_workloads::Mix;

use crate::harness::Combo;
use crate::pool;

/// Cumulative work counters for one [`Engine`] (monotonic; snapshot and
/// subtract to attribute work to a suite phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Shared (co-scheduled) mix runs executed.
    pub shared_runs: u64,
    /// Solo runs actually simulated (= solo-cache misses).
    pub solo_runs: u64,
    /// Solo-run lookups served from the cache.
    pub solo_cache_hits: u64,
    /// Jobs routed through [`Engine::par_map`] (calibration sweeps and
    /// other non-mix experiments).
    pub aux_runs: u64,
}

impl EngineStats {
    /// Total jobs executed.
    pub fn jobs(&self) -> u64 {
        self.shared_runs + self.solo_runs + self.aux_runs
    }

    /// Counter-wise difference since an earlier snapshot.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            shared_runs: self.shared_runs - earlier.shared_runs,
            solo_runs: self.solo_runs - earlier.solo_runs,
            solo_cache_hits: self.solo_cache_hits - earlier.solo_cache_hits,
            aux_runs: self.aux_runs - earlier.aux_runs,
        }
    }
}

/// (alone-config fingerprint, benchmark, trace seed) — everything an
/// alone run's outcome can depend on.
type SoloKey = (String, &'static str, u64);

/// The sweep engine: a worker pool plus the process-wide solo-run cache.
///
/// One engine should live for a whole process (`bench_all` shares one
/// across all experiments); per-binary usage still dedupes solo runs
/// across combos and sweep points within that binary.
pub struct Engine {
    workers: usize,
    cache: Mutex<HashMap<SoloKey, f64>>,
    stats: Mutex<EngineStats>,
    annotations: Mutex<Vec<(String, Json)>>,
    /// Host-side self-profiler; disabled by default (one branch per job).
    prof: Prof,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers)
            .field("cached_solo_runs", &self.cache.lock().expect("cache poisoned").len())
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::from_env()
    }
}

/// One simulation job; built from plain `Send` data, so the `System`
/// (which holds non-`Send` recorder handles) is constructed inside the
/// worker thread.
enum Job {
    Solo { cfg: SimConfig, mix: Mix, core: usize },
    Shared { cfg: SimConfig, mix: Mix },
}

enum JobOut {
    Solo(f64),
    Shared(RunResult),
}

impl Engine {
    /// An engine with an explicit worker count (tests force 1 vs many).
    pub fn with_workers(workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(EngineStats::default()),
            annotations: Mutex::new(Vec::new()),
            prof: Prof::disabled(),
        }
    }

    /// An engine honouring `DBP_JOBS` / the machine's parallelism.
    pub fn from_env() -> Self {
        Engine::with_workers(pool::default_workers())
    }

    /// The worker count this engine schedules onto.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Route host-side self-profiling into `prof`: every pool job gets a
    /// `bench/*` span, shared runs additionally carry the simulator's own
    /// `sim/*`, `memctrl/*` spans and work counters. Workers flush their
    /// thread-local span trees before each job returns, so a
    /// [`Prof::snapshot`] taken between grid calls sees everything.
    /// Profiling only observes — tables stay byte-identical.
    pub fn attach_profiler(&mut self, prof: &Prof) {
        self.prof = prof.clone();
    }

    /// Snapshot of the cumulative work counters.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock().expect("stats poisoned")
    }

    /// Solo runs currently memoized.
    pub fn cached_solo_runs(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Attach a machine-readable side result (e.g. an experiment's
    /// percentile summary) for the suite-timing JSON. Re-annotating a key
    /// replaces its value, keeping reruns idempotent.
    pub fn annotate(&self, key: impl Into<String>, value: Json) {
        let key = key.into();
        let mut anns = self.annotations.lock().expect("annotations poisoned");
        match anns.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => anns.push((key, value)),
        }
    }

    /// Drain the accumulated annotations (insertion order preserved).
    pub fn take_annotations(&self) -> Vec<(String, Json)> {
        std::mem::take(&mut *self.annotations.lock().expect("annotations poisoned"))
    }

    /// Run the full (mix × combo) grid of `cfg`: every shared run and
    /// every still-uncached solo run becomes an independent pool job.
    /// Returns runs indexed `[mix][combo]`, exactly as the serial
    /// nested loop would produce them.
    pub fn run_grid(&self, cfg: &SimConfig, mixes: &[Mix], combos: &[Combo]) -> Vec<Vec<MixRun>> {
        let fp = runner::alone_fingerprint(cfg);
        let solo_key = |mix: &Mix, core: usize| {
            (fp.clone(), mix.benchmarks[core], runner::seed_for(mix, core))
        };

        // Solo runs missing from the cache, deduplicated within the batch
        // (scaled mixes repeat (benchmark, seed) pairs across sweep rows).
        let mut solo_jobs: Vec<(SoloKey, Mix, usize)> = Vec::new();
        let mut lookups = 0u64;
        {
            let cache = self.cache.lock().expect("cache poisoned");
            let mut scheduled: HashSet<SoloKey> = HashSet::new();
            for mix in mixes {
                for core in 0..mix.cores() {
                    lookups += 1;
                    let key = solo_key(mix, core);
                    if cache.contains_key(&key) || !scheduled.insert(key.clone()) {
                        continue;
                    }
                    solo_jobs.push((key, mix.clone(), core));
                }
            }
        }
        let n_solo = solo_jobs.len();

        let mut jobs: Vec<Job> = solo_jobs
            .iter()
            .map(|(_, mix, core)| Job::Solo { cfg: cfg.clone(), mix: mix.clone(), core: *core })
            .collect();
        for mix in mixes {
            for combo in combos {
                jobs.push(Job::Shared { cfg: combo.apply(cfg), mix: mix.clone() });
            }
        }

        let prof = &self.prof;
        let outs = pool::par_map(self.workers, jobs, |job| {
            let out = match job {
                Job::Solo { cfg, mix, core } => {
                    let _s = prof.span("bench/solo_run");
                    JobOut::Solo(runner::alone_ipc(&cfg, &mix, core))
                }
                Job::Shared { cfg, mix } => {
                    let _s = prof.span("bench/shared_run");
                    JobOut::Shared(runner::run_shared_profiled(&cfg, &mix, prof.clone()))
                }
            };
            // Pool workers die with the scope; hand this thread's span
            // tree back to the profiler while it is still complete.
            prof.flush_thread();
            out
        });

        {
            let mut cache = self.cache.lock().expect("cache poisoned");
            for ((key, _, _), out) in solo_jobs.iter().zip(&outs[..n_solo]) {
                let JobOut::Solo(ipc) = out else { unreachable!("solo job slot") };
                cache.insert(key.clone(), *ipc);
            }
        }
        {
            let mut stats = self.stats.lock().expect("stats poisoned");
            stats.shared_runs += (mixes.len() * combos.len()) as u64;
            stats.solo_runs += n_solo as u64;
            stats.solo_cache_hits += lookups - n_solo as u64;
        }

        let cache = self.cache.lock().expect("cache poisoned");
        let mut shared = outs.into_iter().skip(n_solo);
        mixes
            .iter()
            .map(|mix| {
                let alone: Vec<f64> =
                    (0..mix.cores()).map(|core| cache[&solo_key(mix, core)]).collect();
                combos
                    .iter()
                    .map(|_| {
                        let Some(JobOut::Shared(run)) = shared.next() else {
                            unreachable!("shared job slot")
                        };
                        MixRun::from_parts(mix, alone.clone(), run)
                    })
                    .collect()
            })
            .collect()
    }

    /// Like [`Engine::run_grid`] but shared runs only — for experiments
    /// that never consult the alone baselines (e.g. the energy study).
    pub fn run_shared_grid(
        &self,
        cfg: &SimConfig,
        mixes: &[Mix],
        combos: &[Combo],
    ) -> Vec<Vec<RunResult>> {
        let mut jobs: Vec<(SimConfig, Mix)> = Vec::with_capacity(mixes.len() * combos.len());
        for mix in mixes {
            for combo in combos {
                jobs.push((combo.apply(cfg), mix.clone()));
            }
        }
        self.stats.lock().expect("stats poisoned").shared_runs += jobs.len() as u64;
        let prof = &self.prof;
        let outs = pool::par_map(self.workers, jobs, |(cfg, mix)| {
            let out = {
                let _s = prof.span("bench/shared_run");
                runner::run_shared_profiled(&cfg, &mix, prof.clone())
            };
            prof.flush_thread();
            out
        });
        let mut it = outs.into_iter();
        mixes
            .iter()
            .map(|_| combos.iter().map(|_| it.next().expect("grid slot")).collect())
            .collect()
    }

    /// Map arbitrary jobs over the pool (order-preserving); used by the
    /// calibration/sweep experiments whose unit of work is not a mix.
    pub fn par_map<I, T>(&self, items: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T>
    where
        I: Send,
        T: Send,
    {
        self.stats.lock().expect("stats poisoned").aux_runs += items.len() as u64;
        let prof = &self.prof;
        pool::par_map(self.workers, items, |item| {
            let out = {
                let _s = prof.span("bench/aux_job");
                f(item)
            };
            prof.flush_thread();
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use dbp_workloads::mixes_4core;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::fast_test();
        cfg.warmup_instructions = 10_000;
        cfg.target_instructions = 25_000;
        cfg.epoch_cpu_cycles = 50_000;
        cfg.instr_feed_interval = 10_000;
        cfg
    }

    #[test]
    fn solo_cache_hits_across_combos_and_calls() {
        let eng = Engine::with_workers(1);
        let cfg = tiny_cfg();
        let mixes = [mixes_4core()[0].clone()];
        let combos = [harness::shared(), harness::dbp()];
        eng.run_grid(&cfg, &mixes, &combos);
        let s1 = eng.stats();
        assert_eq!(s1.solo_runs, 4, "one solo run per core, shared across combos");
        assert_eq!(s1.solo_cache_hits, 0);
        assert_eq!(s1.shared_runs, 2);
        // Same fingerprint again: all solo lookups must hit.
        eng.run_grid(&cfg, &mixes, &combos);
        let s2 = eng.stats().since(&s1);
        assert_eq!(s2.solo_runs, 0, "identical config must be fully cached");
        assert_eq!(s2.solo_cache_hits, 4);
    }

    #[test]
    fn solo_cache_misses_on_alone_relevant_config_changes() {
        let eng = Engine::with_workers(1);
        let cfg = tiny_cfg();
        let mixes = [mixes_4core()[0].clone()];
        let combos = [harness::shared()];
        eng.run_grid(&cfg, &mixes, &combos);
        let before = eng.stats();

        // Different bank count -> different fingerprint -> recompute.
        let mut banks = cfg.clone();
        banks.dram.banks_per_rank *= 2;
        eng.run_grid(&banks, &mixes, &combos);
        assert_eq!(eng.stats().since(&before).solo_runs, 4);

        // Different epoch length (changes the warmup span) -> recompute.
        let before = eng.stats();
        let mut epoch = cfg.clone();
        epoch.epoch_cpu_cycles *= 2;
        eng.run_grid(&epoch, &mixes, &combos);
        assert_eq!(eng.stats().since(&before).solo_runs, 4);

        // Different DRAM timing -> recompute.
        let before = eng.stats();
        let mut timing = cfg.clone();
        timing.dram.timing.cl += 1;
        eng.run_grid(&timing, &mixes, &combos);
        assert_eq!(eng.stats().since(&before).solo_runs, 4);

        // Migration knobs are alone-irrelevant -> full cache hit.
        let before = eng.stats();
        let mut migration = cfg.clone();
        migration.migration_budget_pages = None;
        eng.run_grid(&migration, &mixes, &combos);
        let d = eng.stats().since(&before);
        assert_eq!(d.solo_runs, 0);
        assert_eq!(d.solo_cache_hits, 4);
    }

    #[test]
    fn grid_matches_serial_runner_and_parallel_is_byte_identical() {
        let cfg = tiny_cfg();
        let mixes = [mixes_4core()[0].clone(), mixes_4core()[5].clone()];
        let combos = [harness::shared(), harness::equal_bp()];

        let serial = Engine::with_workers(1).run_grid(&cfg, &mixes, &combos);
        let parallel = Engine::with_workers(4).run_grid(&cfg, &mixes, &combos);
        for (srow, prow) in serial.iter().zip(&parallel) {
            for (s, p) in srow.iter().zip(prow) {
                assert_eq!(s.alone_ipcs, p.alone_ipcs);
                assert_eq!(s.shared, p.shared);
                assert_eq!(s.metrics, p.metrics);
            }
        }
        // And the engine agrees with the plain (uncached) runner path.
        let direct = dbp_sim::runner::run_mix(&combos[1].apply(&cfg), &mixes[0]);
        assert_eq!(serial[0][1].alone_ipcs, direct.alone_ipcs);
        assert_eq!(serial[0][1].metrics, direct.metrics);
    }

    #[test]
    fn profiled_grid_is_byte_identical_and_flushes_workers() {
        let cfg = tiny_cfg();
        let mixes = [mixes_4core()[0].clone()];
        let combos = [harness::shared(), harness::dbp()];
        let plain = Engine::with_workers(2).run_grid(&cfg, &mixes, &combos);

        let prof = Prof::enabled();
        let mut eng = Engine::with_workers(2);
        eng.attach_profiler(&prof);
        let profiled = eng.run_grid(&cfg, &mixes, &combos);
        for (prow, qrow) in plain.iter().zip(&profiled) {
            for (p, q) in prow.iter().zip(qrow) {
                assert_eq!(p.alone_ipcs, q.alone_ipcs);
                assert_eq!(p.shared, q.shared);
            }
        }
        // Worker trees were flushed: the snapshot sees every job, with
        // the simulator's own spans nested under the shared runs.
        let p = prof.snapshot();
        let shared =
            p.spans.iter().find(|s| s.name == "bench/shared_run").expect("shared-run span present");
        assert_eq!(shared.count, 2);
        assert!(shared.children.iter().any(|c| c.name == "sim/measure"));
        let solo = p.spans.iter().find(|s| s.name == "bench/solo_run").unwrap();
        assert_eq!(solo.count, 4);
    }

    #[test]
    fn par_map_and_shared_grid_count_jobs() {
        let eng = Engine::with_workers(2);
        let doubled = eng.par_map((0..10u64).collect(), |i| i * 2);
        assert_eq!(doubled[9], 18);
        let cfg = tiny_cfg();
        let mixes = [mixes_4core()[0].clone()];
        let grid = eng.run_shared_grid(&cfg, &mixes, &[harness::shared()]);
        assert!(grid[0][0].reached_target);
        let s = eng.stats();
        assert_eq!(s.aux_runs, 10);
        assert_eq!(s.shared_runs, 1);
        assert_eq!(s.jobs(), 11);
    }
}
