//! Microbenchmarks: the per-component costs that determine the
//! simulator's cycles-per-second throughput.
//!
//! Runs on the in-tree `dbp_util::bench` runner (no external harness);
//! iteration counts are tunable via `DBP_BENCH_ITERS` / `DBP_BENCH_WARMUP`.
//! The registry lives in the library (rather than the bench target) so
//! `cargo bench -p dbp-bench --bench micro` and any future callers share
//! one definition of what gets measured.
//!
//! The committed perf baseline (`BENCH_baseline.json` at the repo root)
//! is the output of this registry; regenerate it with:
//!
//! ```text
//! DBP_BENCH_JSON=$PWD/BENCH_baseline.json cargo bench -q -p dbp-bench --bench micro
//! ```

use dbp_cache::{Hierarchy, HierarchyConfig};
use dbp_dram::{Command, Dram, DramConfig};
use dbp_memctrl::scheduler::{FrFcfs, Tcm};
use dbp_memctrl::{CtrlConfig, MemRequest, MemoryController};
use dbp_obs::{Prof, Recorder};
use dbp_osmem::{ColorSet, FrameAllocator};
use dbp_sim::{SimConfig, System};
use dbp_util::bench::Runner;
use dbp_workloads::{profiles, SyntheticTrace};

fn bench_dram_commands(r: &mut Runner) {
    let cfg = DramConfig::fast_test();
    r.bench_batched(
        "dram/act_rd_pre_cycle",
        3, // ACT + RD + PRE
        || Dram::new(cfg.clone()),
        |mut d| {
            let mut now = 0;
            let act = Command::activate(0, 0, 0, 1);
            now = d.earliest_issue(&act, now).unwrap();
            d.issue(&act, now);
            let rd = Command::read(0, 0, 0, 1, 0, false);
            now = d.earliest_issue(&rd, now).unwrap();
            d.issue(&rd, now);
            let pre = Command::precharge(0, 0, 0);
            now = d.earliest_issue(&pre, now).unwrap();
            d.issue(&pre, now);
            d
        },
    );
}

fn filled_controller(sched: Box<dyn dbp_memctrl::Scheduler>) -> MemoryController {
    let mut mc =
        MemoryController::new(Dram::new(DramConfig::fast_test()), CtrlConfig::default(), sched, 4);
    for i in 0..32u64 {
        mc.enqueue(MemRequest::demand_read(i, (i % 4) as usize, i * 4096, 0));
    }
    mc
}

fn bench_controller_tick(r: &mut Runner) {
    r.bench_batched(
        "controller_tick/frfcfs_32deep",
        64,
        || filled_controller(Box::new(FrFcfs)),
        |mut mc| {
            let mut done = Vec::new();
            for now in 0..64 {
                mc.tick(now, &mut done);
            }
            mc
        },
    );
    r.bench_batched(
        "controller_tick/tcm_32deep",
        64,
        || filled_controller(Box::new(Tcm::new(Default::default(), 4))),
        |mut mc| {
            let mut done = Vec::new();
            for now in 0..64 {
                mc.tick(now, &mut done);
            }
            mc
        },
    );
}

fn bench_allocator(r: &mut Runner) {
    let cfg = DramConfig { rows_per_bank: 256, ..DramConfig::default() };
    r.bench_batched(
        "frame_allocator/alloc_free_1k",
        1024,
        || FrameAllocator::new(&cfg),
        |mut a| {
            let allowed = ColorSet::range(0, 8);
            let mut frames = Vec::with_capacity(1024);
            for _ in 0..1024 {
                frames.push(a.alloc(&allowed).unwrap());
            }
            for f in frames {
                a.free(f);
            }
            a
        },
    );
}

fn bench_cache(r: &mut Runner) {
    r.bench_batched(
        "cache/hierarchy_stream_4k",
        4096,
        || Hierarchy::new(HierarchyConfig::default()),
        |mut h| {
            for i in 0..4096u64 {
                h.access(i * 64, i % 5 == 0);
            }
            h
        },
    );
}

fn bench_trace_generation(r: &mut Runner) {
    use dbp_cpu::TraceSource;
    let mut t = SyntheticTrace::new(profiles::by_name("mcf"), 1);
    r.bench("workloads/synthetic_mcf_4k_ops", 4096, || {
        let mut acc = 0u64;
        for _ in 0..4096 {
            acc ^= t.next_op().addr;
        }
        acc
    });
}

fn step_system(prof: Prof) -> System {
    let mut cfg = SimConfig::fast_test();
    cfg.warmup_instructions = 0;
    let traces: Vec<Box<dyn dbp_cpu::TraceSource>> = ["mcf", "lbm", "libquantum", "milc"]
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Box::new(SyntheticTrace::new(profiles::by_name(n), i as u64))
                as Box<dyn dbp_cpu::TraceSource>
        })
        .collect();
    System::with_instrumentation(cfg, traces, Recorder::disabled(), prof)
}

fn bench_end_to_end(r: &mut Runner) {
    // The headline throughput number — and, versus its `_profiled` twin
    // below, the measured cost of an *enabled* profiler. (A disabled one
    // costs a branch per span site; the perf gate on this entry is what
    // holds that claim to <2% across PRs.)
    //
    // `advance` (event-driven time skipping) is the production path every
    // experiment takes through `System::run`; the elements count stays
    // "simulated CPU cycles", so melems/s is simulated Mcycles per
    // wall-second and is directly comparable with the retired stepped-era
    // baselines.
    r.bench_batched(
        "system/step_100k_cycles_4core",
        100_000, // simulated CPU cycles
        || step_system(Prof::disabled()),
        |mut sys| {
            while sys.cycle() < 100_000 {
                sys.advance(100_000);
            }
            sys
        },
    );
    r.bench_batched(
        "system/step_100k_cycles_4core_profiled",
        100_000,
        || step_system(Prof::enabled()),
        |mut sys| {
            while sys.cycle() < 100_000 {
                sys.advance(100_000);
            }
            sys
        },
    );
}

/// Register every microbenchmark on `r` (the order is the report order).
pub fn register_all(r: &mut Runner) {
    bench_dram_commands(r);
    bench_controller_tick(r);
    bench_allocator(r);
    bench_cache(r);
    bench_trace_generation(r);
    bench_end_to_end(r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_util::bench::BenchConfig;

    #[test]
    fn registry_runs_and_names_are_unique() {
        let mut r = Runner::new(BenchConfig { warmup_iters: 0, iters: 1 });
        register_all(&mut r);
        let names: Vec<&str> = r.results().iter().map(|s| s.name.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate bench names: {names:?}");
        assert!(names.contains(&"system/step_100k_cycles_4core"));
        assert!(names.contains(&"system/step_100k_cycles_4core_profiled"));
    }
}
