//! One function per table/figure of the (reconstructed) evaluation.
//!
//! Each takes the shared sweep [`Engine`] plus a configuration and
//! returns a [`Table`] whose rows are the series the paper plots; the
//! `src/bin/` wrappers print them via [`crate::run_bin`], and the
//! `bench_all` binary runs the whole registry ([`all`]) in one process
//! so the memoized solo-run cache is shared across experiments. See
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.
//!
//! Every simulation below — shared run, solo calibration run, restricted
//! single-benchmark run — is dispatched as an independent job on the
//! engine's worker pool; results are collected by index, so the tables
//! are byte-identical whatever `DBP_JOBS` says.

use dbp_core::policy::PolicyKind;
use dbp_core::{BankDemandEstimator, EstimatorConfig, ThreadMemProfile};
use dbp_osmem::MigrationMode;
use dbp_sim::metrics::gmean;
use dbp_sim::report::{f3, pct, Table};
use dbp_sim::{MigrationCost, SimConfig, ThreadResult};
use dbp_workloads::{mixes_4core, profiles, scale_mix, Mix, SyntheticTrace};

use crate::engine::Engine;
use crate::harness::{self, Combo};

/// Representative mix subset used by the parameter sweeps (one or two
/// mixes per intensity category, to keep sweep runtimes tractable).
pub fn sweep_mixes() -> Vec<Mix> {
    let all = mixes_4core();
    [2, 5, 6, 9, 12, 13].into_iter().map(|i| all[i].clone()).collect()
}

/// Table 1: the simulated system configuration.
pub fn table1_config(_eng: &Engine, cfg: &SimConfig) -> Table {
    let mut t = Table::new(["parameter", "value"]);
    let d = &cfg.dram;
    t.row(["cores", &format!("{} OoO-window, {}-wide, ROB {}", 4, cfg.core.width, cfg.core.rob)]);
    t.row([
        "L1D",
        &format!(
            "{} KiB, {}-way, {} B lines, {} cyc",
            cfg.hierarchy.l1.size_bytes >> 10,
            cfg.hierarchy.l1.ways,
            cfg.hierarchy.l1.line_bytes,
            cfg.hierarchy.l1.latency
        ),
    ]);
    t.row([
        "L2 (private)",
        &format!(
            "{} KiB, {}-way, {} cyc",
            cfg.hierarchy.l2.size_bytes >> 10,
            cfg.hierarchy.l2.ways,
            cfg.hierarchy.l2.latency
        ),
    ]);
    t.row(["MSHRs", &cfg.mshrs.to_string()]);
    t.row([
        "DRAM",
        &format!("DDR3, CL-tRCD-tRP {}-{}-{}", d.timing.cl, d.timing.t_rcd, d.timing.t_rp),
    ]);
    t.row([
        "channels x ranks x banks",
        &format!(
            "{} x {} x {} = {} banks",
            d.channels,
            d.ranks_per_channel,
            d.banks_per_rank,
            d.total_banks()
        ),
    ]);
    t.row(["row buffer", &format!("{} KiB", d.row_bytes >> 10)]);
    t.row(["CPU:DRAM clock ratio", &format!("{}:1", cfg.cpu_per_dram)]);
    t.row([
        "read/write queue",
        &format!("{}/{} per channel", cfg.ctrl.read_q_cap, cfg.ctrl.write_q_cap),
    ]);
    t.row(["page size", &format!("{} KiB", d.page_bytes >> 10)]);
    t.row(["colors", &format!("{}", d.total_banks())]);
    t.row(["repartition epoch", &format!("{} CPU cycles", cfg.epoch_cpu_cycles)]);
    t.row([
        "migration",
        &format!("{:?}, budget {:?} pages/epoch", cfg.migration_mode, cfg.migration_budget_pages),
    ]);
    t.row([
        "warmup / measured instructions",
        &format!("{} / {}", cfg.warmup_instructions, cfg.target_instructions),
    ]);
    t
}

/// Table 2: benchmark characteristics — calibration targets vs values
/// measured running each benchmark alone (one pool job per benchmark).
pub fn table2_benchmarks(eng: &Engine, cfg: &SimConfig) -> Table {
    let mut t =
        Table::new(["benchmark", "class", "MPKI*", "MPKI", "RBL*", "RBL", "BLP*", "BLP", "IPC"]);
    let alone_cfg = harness::shared().apply(cfg);
    let measured: Vec<ThreadResult> = eng.par_map(profiles::PROFILES.iter().collect(), |p| {
        let trace = SyntheticTrace::new(p, 42);
        let mut sys = dbp_sim::System::new(alone_cfg.clone(), vec![Box::new(trace)]);
        sys.run().threads[0]
    });
    for (p, th) in profiles::PROFILES.iter().zip(&measured) {
        t.row([
            p.name.to_owned(),
            format!("{:?}", p.class()),
            format!("{:.1}", p.mpki),
            format!("{:.1}", th.mpki),
            format!("{:.2}", p.rbl),
            format!("{:.2}", th.rbl),
            format!("{:.1}", p.blp),
            format!("{:.1}", th.blp),
            format!("{:.3}", th.ipc),
        ]);
    }
    t
}

/// Table 3: the workload mixes.
pub fn table3_mixes() -> Table {
    let mut t = Table::new(["mix", "intensive", "benchmarks"]);
    for m in mixes_4core() {
        t.row([m.name.to_owned(), format!("{}%", m.intensive_pct), m.benchmarks.join(", ")]);
    }
    t
}

/// Figure 1 (motivation): two applications co-running on a shared memory
/// system slow each other down far beyond their bandwidth shares.
pub fn fig1_motivation(eng: &Engine, cfg: &SimConfig) -> Table {
    let mix = Mix { name: "motivation", intensive_pct: 100, benchmarks: vec!["libquantum", "mcf"] };
    let run =
        eng.run_grid(cfg, std::slice::from_ref(&mix), &[harness::shared()]).remove(0).remove(0);
    let mut t = Table::new(["benchmark", "IPC alone", "IPC shared", "slowdown"]);
    for (i, name) in mix.benchmarks.iter().enumerate() {
        t.row([
            (*name).to_owned(),
            f3(run.alone_ipcs[i]),
            f3(run.shared.threads[i].ipc),
            f3(1.0 / run.metrics.speedups[i]),
        ]);
    }
    t
}

/// Figure 2: restricting a high-BLP benchmark to fewer banks destroys its
/// performance — the cost of *equal* bank partitioning.
pub fn fig2_equal_blp_loss(eng: &Engine, cfg: &SimConfig) -> Table {
    let mut t = Table::new(["benchmark", "bank units", "banks", "IPC", "BLP", "vs all-banks"]);
    let units = cfg.dram.banks_per_rank; // a unit spans all channels/ranks
    let names = ["mcf", "GemsFDTD", "libquantum"];
    let budgets = [1u32, 2, 4, units];
    let jobs: Vec<(&'static str, u32)> =
        names.iter().flat_map(|&n| budgets.into_iter().map(move |k| (n, k))).collect();
    let runs: Vec<(f64, f64)> = eng.par_map(jobs, |(name, k)| {
        let p = profiles::by_name(name);
        let mut c = cfg.clone();
        c.policy = PolicyKind::RestrictFirst(k);
        let trace = SyntheticTrace::new(p, 42);
        let mut sys = dbp_sim::System::new(c, vec![Box::new(trace)]);
        let r = sys.run();
        (r.threads[0].ipc, r.threads[0].blp)
    });
    for (bi, &name) in names.iter().enumerate() {
        let row_of = |j: usize| runs[bi * budgets.len() + j];
        let (full_ipc, _) = row_of(budgets.len() - 1); // k == units
        for (j, k) in budgets.into_iter().enumerate() {
            let (ipc, blp) = row_of(j);
            t.row([
                name.to_owned(),
                k.to_string(),
                (k * cfg.dram.channels * cfg.dram.ranks_per_channel).to_string(),
                f3(ipc),
                format!("{blp:.2}"),
                pct(ipc / full_ipc),
            ]);
        }
    }
    t
}

/// Figure 3: demand-estimation accuracy — the estimator's bank budget vs
/// the empirically best budget found by sweeping.
pub fn fig3_demand_estimation(eng: &Engine, cfg: &SimConfig) -> Table {
    let mut t = Table::new([
        "benchmark",
        "measured BLP",
        "estimated units",
        "best units",
        "IPC@est/IPC@best",
    ]);
    let est = BankDemandEstimator::new(EstimatorConfig::default());
    let units = cfg.dram.banks_per_rank;
    let names = ["mcf", "lbm", "libquantum", "milc", "omnetpp"];
    // k == 0 is the unrestricted measured run; 1..=units the budget sweep.
    let jobs: Vec<(&'static str, u32)> =
        names.iter().flat_map(|&n| (0..=units).map(move |k| (n, k))).collect();
    let runs: Vec<ThreadResult> = eng.par_map(jobs, |(name, k)| {
        let p = profiles::by_name(name);
        let c = if k == 0 {
            harness::shared().apply(cfg)
        } else {
            let mut c = cfg.clone();
            c.policy = PolicyKind::RestrictFirst(k);
            c
        };
        let trace = SyntheticTrace::new(p, 42);
        let mut s = dbp_sim::System::new(c, vec![Box::new(trace)]);
        s.run().threads[0]
    });
    let per_bench = units as usize + 1;
    for (bi, &name) in names.iter().enumerate() {
        let solo = &runs[bi * per_bench]; // the k == 0 run
        let measured = ThreadMemProfile {
            mpki: solo.mpki,
            rbl: solo.rbl,
            blp: solo.blp,
            reads: solo.reads,
            bus_cycles: 1,
        };
        let estimate = est.demand(&measured, units).min(units);
        let mut ipc_at = vec![0.0f64; units as usize + 1];
        for k in 1..=units {
            ipc_at[k as usize] = runs[bi * per_bench + k as usize].ipc;
        }
        let best = (1..=units)
            .max_by(|&a, &b| {
                ipc_at[a as usize]
                    .partial_cmp(&ipc_at[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(1);
        t.row([
            name.to_owned(),
            format!("{:.2}", measured.blp),
            estimate.to_string(),
            best.to_string(),
            f3(ipc_at[estimate as usize] / ipc_at[best as usize]),
        ]);
    }
    t
}

/// The shared engine behind Figures 4-8: run `combos` over `mixes` and
/// tabulate one metric.
fn policy_comparison(
    eng: &Engine,
    cfg: &SimConfig,
    mixes: &[Mix],
    combos: &[Combo],
    metric: fn(&dbp_sim::runner::MixRun) -> f64,
    metric_name: &str,
) -> Table {
    let mut headers = vec!["mix".to_owned()];
    headers.extend(combos.iter().map(|c| format!("{} {}", c.label, metric_name)));
    let mut t = Table::new(headers);
    let grid = eng.run_grid(cfg, mixes, combos);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); combos.len()];
    for (mix, runs) in mixes.iter().zip(&grid) {
        let mut row = vec![mix.name.to_owned()];
        for (k, run) in runs.iter().enumerate() {
            let v = metric(run);
            series[k].push(v);
            row.push(f3(v));
        }
        t.row(row);
    }
    let mut row = vec!["gmean".to_owned()];
    for s in &series {
        row.push(f3(gmean(s)));
    }
    t.row(row);
    // Relative row: each combo vs the first (baseline) combo. For
    // weighted speedup higher is better; for maximum slowdown lower is
    // better — the sign convention is explained by the binaries.
    let base = gmean(&series[0]);
    let mut rel = vec![format!("vs {}", combos[0].label)];
    for s in &series {
        rel.push(pct(gmean(s) / base));
    }
    t.row(rel);
    t
}

/// Figure 4: weighted speedup — shared FR-FCFS vs equal bank partitioning
/// vs DBP. Headline: DBP improves system performance by ~4.3 % over equal
/// bank partitioning.
pub fn fig4_ws_dbp(eng: &Engine, cfg: &SimConfig) -> Table {
    policy_comparison(
        eng,
        cfg,
        &mixes_4core(),
        &[harness::shared(), harness::equal_bp(), harness::dbp()],
        |r| r.metrics.weighted_speedup,
        "WS",
    )
}

/// Figure 5: maximum slowdown (unfairness; lower is better) for the same
/// comparison. Headline: DBP improves fairness by ~16 % over equal bank
/// partitioning.
pub fn fig5_ms_dbp(eng: &Engine, cfg: &SimConfig) -> Table {
    policy_comparison(
        eng,
        cfg,
        &mixes_4core(),
        &[harness::shared(), harness::equal_bp(), harness::dbp()],
        |r| r.metrics.max_slowdown,
        "MS",
    )
}

/// Figure 6: system row-buffer hit rate per policy — partitioning's
/// mechanism is eliminating inter-thread row closures.
pub fn fig6_row_hits(eng: &Engine, cfg: &SimConfig) -> Table {
    policy_comparison(
        eng,
        cfg,
        &mixes_4core(),
        &[
            harness::shared(),
            harness::equal_bp(),
            harness::dbp(),
            harness::tcm(),
            harness::dbp_tcm(),
        ],
        |r| r.shared.row_hit_rate.max(1e-9),
        "RBH",
    )
}

/// Figure 7: composing DBP with TCM. Headline: DBP-TCM improves system
/// throughput by ~6.2 % and fairness by ~16.7 % over TCM alone.
pub fn fig7_dbp_tcm_ws(eng: &Engine, cfg: &SimConfig) -> Table {
    policy_comparison(
        eng,
        cfg,
        &mixes_4core(),
        &[harness::tcm(), harness::dbp(), harness::dbp_tcm()],
        |r| r.metrics.weighted_speedup,
        "WS",
    )
}

/// Figure 7 (fairness half).
pub fn fig7_dbp_tcm_ms(eng: &Engine, cfg: &SimConfig) -> Table {
    policy_comparison(
        eng,
        cfg,
        &mixes_4core(),
        &[harness::tcm(), harness::dbp(), harness::dbp_tcm()],
        |r| r.metrics.max_slowdown,
        "MS",
    )
}

/// Figure 8: DBP-TCM vs MCP. Headline: +5.3 % throughput and +37 %
/// fairness over MCP.
pub fn fig8_vs_mcp(eng: &Engine, cfg: &SimConfig) -> (Table, Table) {
    let combos = [harness::mcp(), harness::dbp_tcm()];
    let ws =
        policy_comparison(eng, cfg, &mixes_4core(), &combos, |r| r.metrics.weighted_speedup, "WS");
    let ms = policy_comparison(eng, cfg, &mixes_4core(), &combos, |r| r.metrics.max_slowdown, "MS");
    (ws, ms)
}

/// A (banks | channels | cores | epoch | alpha | ...) sweep row: gmean WS
/// and MS over the sweep mixes for each combo.
fn sweep_row(eng: &Engine, cfg: &SimConfig, mixes: &[Mix], combos: &[Combo]) -> Vec<(f64, f64)> {
    let grid = eng.run_grid(cfg, mixes, combos);
    let mut ws: Vec<Vec<f64>> = vec![Vec::new(); combos.len()];
    let mut ms: Vec<Vec<f64>> = vec![Vec::new(); combos.len()];
    for runs in &grid {
        for (k, run) in runs.iter().enumerate() {
            ws[k].push(run.metrics.weighted_speedup);
            ms[k].push(run.metrics.max_slowdown);
        }
    }
    ws.iter().zip(&ms).map(|(w, m)| (gmean(w), gmean(m))).collect()
}

/// Figure 9: sensitivity to banks per channel (8/16/32 total banks).
pub fn fig9_banks_sweep(eng: &Engine, cfg: &SimConfig) -> Table {
    let combos = [harness::shared(), harness::equal_bp(), harness::dbp()];
    let mut t = Table::new(["banks", "shared WS/MS", "equal-BP WS/MS", "DBP WS/MS"]);
    for banks in [4u32, 8, 16] {
        let mut c = cfg.clone();
        c.dram.banks_per_rank = banks;
        c.dram.rows_per_bank = cfg.dram.rows_per_bank * cfg.dram.banks_per_rank / banks;
        let row = sweep_row(eng, &c, &sweep_mixes(), &combos);
        let total = banks * c.dram.channels * c.dram.ranks_per_channel;
        let mut cells = vec![total.to_string()];
        cells.extend(row.iter().map(|(w, m)| format!("{w:.3}/{m:.3}")));
        t.row(cells);
    }
    t
}

/// Figure 10: sensitivity to channel count (1/2/4).
pub fn fig10_channels_sweep(eng: &Engine, cfg: &SimConfig) -> Table {
    let combos = [harness::shared(), harness::equal_bp(), harness::dbp(), harness::mcp()];
    let mut t =
        Table::new(["channels", "shared WS/MS", "equal-BP WS/MS", "DBP WS/MS", "MCP WS/MS"]);
    for channels in [1u32, 2, 4] {
        let mut c = cfg.clone();
        c.dram.channels = channels;
        c.dram.rows_per_bank = cfg.dram.rows_per_bank * cfg.dram.channels / channels;
        let row = sweep_row(eng, &c, &sweep_mixes(), &combos);
        let mut cells = vec![channels.to_string()];
        cells.extend(row.iter().map(|(w, m)| format!("{w:.3}/{m:.3}")));
        t.row(cells);
    }
    t
}

/// Figure 11: sensitivity to core count (2/4/8) with scaled mixes.
pub fn fig11_cores_sweep(eng: &Engine, cfg: &SimConfig) -> Table {
    let combos = [harness::shared(), harness::equal_bp(), harness::dbp()];
    let mut t = Table::new(["cores", "shared WS/MS", "equal-BP WS/MS", "DBP WS/MS"]);
    let base: Vec<Mix> = {
        let all = mixes_4core();
        vec![all[2].clone(), all[6].clone(), all[12].clone()]
    };
    for cores in [2usize, 4, 8] {
        let mixes: Vec<Mix> = base.iter().map(|m| scale_mix(m, cores)).collect();
        let row = sweep_row(eng, cfg, &mixes, &combos);
        let mut cells = vec![cores.to_string()];
        cells.extend(row.iter().map(|(w, m)| format!("{w:.3}/{m:.3}")));
        t.row(cells);
    }
    t
}

/// Figure 12: sensitivity to the repartitioning epoch length.
pub fn fig12_epoch_sweep(eng: &Engine, cfg: &SimConfig) -> Table {
    let combos = [harness::dbp(), harness::dbp_tcm()];
    let mut t = Table::new(["epoch (CPU cycles)", "DBP WS/MS", "DBP-TCM WS/MS"]);
    for epoch in [250_000u64, 500_000, 1_000_000, 2_000_000] {
        let mut c = cfg.clone();
        c.epoch_cpu_cycles = epoch;
        c.instr_feed_interval = c.instr_feed_interval.min(epoch);
        let row = sweep_row(eng, &c, &sweep_mixes(), &combos);
        let mut cells = vec![epoch.to_string()];
        cells.extend(row.iter().map(|(w, m)| format!("{w:.3}/{m:.3}")));
        t.row(cells);
    }
    t
}

/// Ablation 1: the demand head-room coefficient alpha (one combo per
/// alpha, all dispatched in a single grid).
pub fn abl1_alpha(eng: &Engine, cfg: &SimConfig) -> Table {
    let mut t = Table::new(["alpha", "DBP WS", "DBP MS"]);
    let alphas = [1.0f64, 1.5, 2.0, 3.0, 4.0];
    let combos: Vec<Combo> = alphas
        .iter()
        .map(|&alpha| Combo {
            label: "DBP",
            scheduler: harness::dbp().scheduler,
            policy: PolicyKind::Dbp(dbp_core::policy::DbpConfig {
                estimator: EstimatorConfig { alpha, ..Default::default() },
                ..Default::default()
            }),
        })
        .collect();
    let rows = sweep_row(eng, cfg, &sweep_mixes(), &combos);
    for (alpha, (w, m)) in alphas.iter().zip(rows) {
        t.row([format!("{alpha:.1}"), f3(w), f3(m)]);
    }
    t
}

/// Ablation 2: grouping non-intensive threads on a shared slice vs giving
/// each a dedicated allocation.
pub fn abl2_grouping(eng: &Engine, cfg: &SimConfig) -> Table {
    let mixes: Vec<Mix> = {
        let all = mixes_4core();
        // Mixed-intensity mixes are where grouping matters.
        vec![all[2].clone(), all[3].clone(), all[6].clone(), all[9].clone()]
    };
    let on = harness::dbp();
    let off = Combo {
        label: "DBP-nogroup",
        scheduler: on.scheduler,
        policy: PolicyKind::Dbp(dbp_core::policy::DbpConfig {
            group_non_intensive: false,
            ..Default::default()
        }),
    };
    let row = sweep_row(eng, cfg, &mixes, &[on, off]);
    let mut t = Table::new(["variant", "WS", "MS"]);
    t.row(["grouped".to_owned(), f3(row[0].0), f3(row[0].1)]);
    t.row(["ungrouped".to_owned(), f3(row[1].0), f3(row[1].1)]);
    t
}

/// Ablation 3: migration cost model (free vs charged, budget sizes,
/// lazy vs eager). The tweaks touch only migration knobs, which cannot
/// affect an alone run, so all variants share the same solo-cache
/// entries.
pub fn abl3_migration(eng: &Engine, cfg: &SimConfig) -> Table {
    type Tweak = Box<dyn Fn(&mut SimConfig)>;
    let mut t = Table::new(["variant", "WS", "MS", "note"]);
    let variants: Vec<(&str, Tweak)> = vec![
        ("free", Box::new(|c: &mut SimConfig| c.migration_cost = MigrationCost::Free)),
        ("charged, budget 32", Box::new(|c| c.migration_budget_pages = Some(32))),
        ("charged, budget 128", Box::new(|_| {})),
        ("charged, unthrottled", Box::new(|c| c.migration_budget_pages = None)),
        ("eager, budget 128", Box::new(|c| c.migration_mode = MigrationMode::Eager)),
    ];
    for (label, tweak) in variants {
        let mut c = cfg.clone();
        tweak(&mut c);
        let grid = eng.run_grid(&c, &sweep_mixes(), &[harness::dbp()]);
        let mut ws = Vec::new();
        let mut ms = Vec::new();
        let mut migrated = 0u64;
        for runs in &grid {
            let run = &runs[0];
            ws.push(run.metrics.weighted_speedup);
            ms.push(run.metrics.max_slowdown);
            migrated += run.shared.migrated_pages;
        }
        t.row([
            label.to_owned(),
            f3(gmean(&ws)),
            f3(gmean(&ms)),
            format!("{migrated} pages migrated in-measurement"),
        ]);
    }
    t
}

/// Extension (not in the paper): DRAM energy per policy.
///
/// Bank partitioning cuts activates (every eliminated row conflict is an
/// ACT/PRE pair saved), which the coarse energy model turns into energy
/// per serviced byte. Alone baselines are never consulted, so this uses
/// the shared-runs-only grid.
pub fn ext1_energy(eng: &Engine, cfg: &SimConfig) -> Table {
    let model = dbp_dram::EnergyModel::default();
    let combos = [harness::shared(), harness::equal_bp(), harness::dbp(), harness::dbp_tcm()];
    let mut t =
        Table::new(["policy", "activates/1k-reads", "accesses/ACT", "energy (mJ)", "nJ/byte"]);
    let mixes = sweep_mixes();
    let grid = eng.run_shared_grid(cfg, &mixes, &combos);
    for (ci, combo) in combos.iter().enumerate() {
        let mut acts_per_kread = Vec::new();
        let mut apa = Vec::new();
        let mut energy_mj = 0.0;
        let mut bytes = 0u64;
        for runs in &grid {
            let run = &runs[ci];
            let d = run.dram;
            acts_per_kread.push(d.activates as f64 * 1000.0 / (d.reads.max(1)) as f64);
            apa.push(run.accesses_per_activate.max(1e-9));
            energy_mj += d.energy_nj(&model) * 1e-6;
            bytes += (d.reads + d.writes) * 64;
        }
        t.row([
            combo.label.to_owned(),
            format!("{:.0}", gmean(&acts_per_kread)),
            format!("{:.2}", gmean(&apa)),
            format!("{energy_mj:.2}"),
            format!("{:.3}", energy_mj * 1e6 / bytes.max(1) as f64),
        ]);
    }
    t
}

/// Extension (not in the paper): DBP under the permutation-based (XOR)
/// bank mapping.
///
/// Permutation interleaving spreads row-sequential streams over banks —
/// good for the shared baseline — but every frame still has a unique
/// color, so partitioning still isolates threads. This ablation checks
/// that DBP's benefit is not an artifact of the plain page-coloring
/// layout.
pub fn ext2_mapping(eng: &Engine, cfg: &SimConfig) -> Table {
    use dbp_dram::MappingScheme;
    let mut t = Table::new(["mapping", "policy", "WS", "MS", "rowhit"]);
    let combos = [harness::shared(), harness::dbp()];
    let mixes = sweep_mixes();
    for (mname, mapping) in [
        ("page-coloring", MappingScheme::PageColoring),
        ("XOR-permuted", MappingScheme::PermutedPageColoring),
    ] {
        let mut c = cfg.clone();
        c.dram.mapping = mapping;
        let grid = eng.run_grid(&c, &mixes, &combos);
        for (ci, combo) in combos.iter().enumerate() {
            let mut ws = Vec::new();
            let mut ms = Vec::new();
            let mut rh = Vec::new();
            for runs in &grid {
                let run = &runs[ci];
                ws.push(run.metrics.weighted_speedup);
                ms.push(run.metrics.max_slowdown);
                rh.push(run.shared.row_hit_rate.max(1e-9));
            }
            t.row([
                mname.to_owned(),
                combo.label.to_owned(),
                f3(gmean(&ws)),
                f3(gmean(&ms)),
                f3(gmean(&rh)),
            ]);
        }
    }
    t
}

/// Extension (not in the paper): the full scheduler landscape, with and
/// without DBP underneath — all 14 (scheduler, policy) combos dispatched
/// as one grid.
///
/// Places DBP among the era's schedulers: FCFS, FR-FCFS (+Cap), PAR-BS,
/// ATLAS, BLISS, TCM. The paper's orthogonality claim predicts the DBP
/// column improves *every* scheduler's fairness.
pub fn ext3_schedulers(eng: &Engine, cfg: &SimConfig) -> Table {
    use dbp_sim::SchedulerKind;
    let schedulers: Vec<(&'static str, SchedulerKind)> = vec![
        ("FCFS", SchedulerKind::Fcfs),
        ("FR-FCFS", SchedulerKind::FrFcfs),
        ("FR-FCFS+Cap", SchedulerKind::FrFcfsCap(Default::default())),
        ("PAR-BS", SchedulerKind::ParBs(Default::default())),
        ("ATLAS", SchedulerKind::Atlas(Default::default())),
        ("BLISS", SchedulerKind::Bliss(Default::default())),
        ("TCM", SchedulerKind::Tcm(Default::default())),
    ];
    let combos: Vec<Combo> = schedulers
        .iter()
        .flat_map(|&(label, sched)| {
            [PolicyKind::Unpartitioned, PolicyKind::Dbp(Default::default())]
                .into_iter()
                .map(move |policy| Combo { label, scheduler: sched, policy })
        })
        .collect();
    let rows = sweep_row(eng, cfg, &sweep_mixes(), &combos);
    let mut t = Table::new(["scheduler", "shared WS/MS", "+DBP WS/MS"]);
    for (si, (label, _)) in schedulers.iter().enumerate() {
        let mut cells = vec![(*label).to_owned()];
        for (w, m) in &rows[2 * si..2 * si + 2] {
            cells.push(format!("{w:.3}/{m:.3}"));
        }
        t.row(cells);
    }
    t
}

/// Diagnostic: per-request latency anatomy and the interference
/// attribution matrices for the Figure 1 motivation mix, under the three
/// headline policies. This is the observability companion to Figures 1,
/// 4 and 5: it shows *where* the unpartitioned system's latency goes
/// (queueing behind the other core, bank conflicts, bus contention) and
/// that bank partitioning zeroes the cross-core bank interference while
/// leaving bus-level contention visible.
///
/// Also publishes a machine-readable percentile summary per policy as a
/// `bench_all --json` annotation (`diag_interference`).
pub fn diag_interference(eng: &Engine, cfg: &SimConfig) -> String {
    use dbp_obs::latency::latency_report_text;
    use dbp_obs::Json;

    let mix = Mix { name: "motivation", intensive_pct: 100, benchmarks: vec!["libquantum", "mcf"] };
    let combos = [harness::shared(), harness::equal_bp(), harness::dbp()];
    let runs = eng.par_map(combos.iter().map(|combo| combo.apply(cfg)).collect(), |run_cfg| {
        dbp_sim::runner::run_shared_latency(&run_cfg, &mix)
    });

    let mut headline =
        Table::new(["policy", "reads", "mean", "p50", "p90", "p99", "bank x-core", "bus x-core"]);
    let mut out = String::new();
    let mut annotations = Vec::new();
    for (combo, (_, rep)) in combos.iter().zip(&runs) {
        let mut all = dbp_obs::Histogram::new();
        for core in &rep.cores {
            all.merge(&core.read);
        }
        headline.row([
            combo.label.to_owned(),
            all.count().to_string(),
            format!("{:.1}", all.mean()),
            all.value_at_quantile(0.50).to_string(),
            all.value_at_quantile(0.90).to_string(),
            all.value_at_quantile(0.99).to_string(),
            rep.bank_interference.off_diagonal_sum().to_string(),
            rep.bus_interference.off_diagonal_sum().to_string(),
        ]);
        annotations.push((combo.label.to_owned(), rep.summary_json()));
    }
    eng.annotate("diag_interference", Json::Obj(annotations));
    out.push_str(&headline.to_string());
    out.push_str(
        "(read latency in DRAM cycles; x-core = cycles a core's oldest read was\n \
         blocked on a bank/the bus held by the other core)\n",
    );
    for (combo, (_, rep)) in combos.iter().zip(&runs) {
        out.push_str(&format!("\n--- {} ---\n{}", combo.label, latency_report_text(rep)));
    }
    out
}

/// Diagnostic: the policy decision audit for a standard 4-core mix.
/// Each run carries the shadow rack (equal-BP, MCP, and a doubled-alpha
/// DBP ablation) in observation-only mode, so one table answers three
/// questions at once: how far the live policy's allocations sit from its
/// rivals' (and what adopting a rival would cost in page migrations),
/// how well the bank-demand estimator's predictions match the BLP each
/// thread then achieves, and how quickly the live allocation converges
/// after warmup and after profile-phase shifts.
///
/// Runs the audit under live DBP and live equal-BP: the latter is the
/// control — a static policy must show zero churn and a DBP shadow that
/// keeps its distance.
///
/// Also publishes a machine-readable summary per live policy as a
/// `bench_all --json` annotation (`diag_audit`). The full audit document
/// for the DBP run is produced by `dbpsim run --mix mix50-1 --audit-out`
/// and rendered by `dbpaudit` (see `results/diag_audit.json`).
pub fn diag_audit(eng: &Engine, cfg: &SimConfig) -> String {
    use dbp_obs::audit::{
        calibration_table, convergence_summary, phase_shift_table, policy_table, prediction_table,
    };
    use dbp_obs::Json;

    let mix = mixes_4core().into_iter().find(|m| m.name == "mix50-1").expect("mix50-1 registered");
    let combos = [harness::dbp(), harness::equal_bp()];
    let runs = eng.par_map(combos.iter().map(|combo| combo.apply(cfg)).collect(), |run_cfg| {
        dbp_sim::runner::run_shared_audited(&run_cfg, &mix)
    });

    let mut headline = Table::new([
        "live policy",
        "decisions",
        "flap rate",
        "to-stable",
        "|pred err|",
        "closest shadow",
    ]);
    let mut annotations = Vec::new();
    for (combo, (_, rep)) in combos.iter().zip(&runs) {
        let samples: u64 = rep.prediction.iter().map(|p| p.samples).sum();
        let abs_err = if samples == 0 {
            f64::NAN
        } else {
            rep.prediction.iter().map(|p| p.mean_abs_err * p.samples as f64).sum::<f64>()
                / samples as f64
        };
        let closest = rep
            .shadows
            .iter()
            .min_by(|a, b| a.mean_distance.total_cmp(&b.mean_distance))
            .expect("standard rack is non-empty");
        headline.row([
            combo.label.to_owned(),
            rep.convergence.decisions.to_string(),
            format!("{:.3}", rep.convergence.flap_rate),
            match rep.convergence.epochs_to_stable {
                Some(n) => n.to_string(),
                None => "-".to_owned(),
            },
            format!("{abs_err:.2}"),
            format!("{} ({:.1})", closest.name, closest.mean_distance),
        ]);
        annotations.push((
            combo.label.to_owned(),
            Json::obj([
                ("decisions", Json::uint(rep.convergence.decisions)),
                ("flap_rate", Json::num(rep.convergence.flap_rate)),
                (
                    "epochs_to_stable",
                    rep.convergence.epochs_to_stable.map_or(Json::Null, Json::uint),
                ),
                ("mean_abs_pred_error", Json::num(abs_err)),
                (
                    "shadow_mean_distance",
                    Json::Obj(
                        rep.shadows
                            .iter()
                            .map(|s| (s.name.clone(), Json::num(s.mean_distance)))
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    eng.annotate("diag_audit", Json::Obj(annotations));

    let mut out = String::new();
    out.push_str(&headline.to_string());
    out.push_str(
        "(flap rate = A>B>A allocation toggles per thread-decision; to-stable =\n \
         decisions from measurement start until 3 unchanged in a row; |pred err| in\n \
         bank units; closest shadow = smallest mean allocation distance to live)\n",
    );
    for (combo, (_, rep)) in combos.iter().zip(&runs) {
        out.push_str(&format!("\n--- live {} ---\n", combo.label));
        out.push_str(&policy_table(rep).to_string());
        out.push_str(&prediction_table(rep).to_string());
        out.push_str(&calibration_table(rep).to_string());
        let shifts = phase_shift_table(rep);
        if !shifts.is_empty() {
            out.push_str(&shifts.to_string());
        }
        out.push_str(&convergence_summary(rep));
        out.push('\n');
    }
    out
}

/// A registered experiment: its binary name, the `== title ==` banner the
/// binary prints, and a renderer producing the full stdout body (tables
/// plus reading-direction footnotes).
pub struct Experiment {
    /// Binary name, e.g. `"fig4_ws_dbp"`.
    pub name: &'static str,
    /// Banner title (printed as `== title ==`).
    pub title: &'static str,
    /// Render the experiment's stdout body through the engine.
    pub render: fn(&Engine, &SimConfig) -> String,
}

/// The full experiment registry, in suite order (tables, figures,
/// ablations, extensions) — the order `bench_all` runs and the order
/// that maximises solo-cache reuse (the base-config figures populate the
/// cache the sweeps then draw from).
pub fn all() -> Vec<Experiment> {
    fn table(t: Table) -> String {
        t.to_string()
    }
    vec![
        Experiment {
            name: "table1_config",
            title: "Table 1: simulated system configuration",
            render: |e, c| table(table1_config(e, c)),
        },
        Experiment {
            name: "table2_benchmarks",
            title: "Table 2: benchmark characteristics (targets marked *, measured unmarked)",
            render: |e, c| table(table2_benchmarks(e, c)),
        },
        Experiment {
            name: "table3_mixes",
            title: "Table 3: multiprogrammed workload mixes",
            render: |_, _| table(table3_mixes()),
        },
        Experiment {
            name: "fig1_motivation",
            title: "Figure 1 (motivation): DRAM interference between co-running applications",
            render: |e, c| table(fig1_motivation(e, c)),
        },
        Experiment {
            name: "fig2_equal_blp_loss",
            title: "Figure 2: restricting banks destroys high-BLP benchmarks (the cost of equal partitioning)",
            render: |e, c| table(fig2_equal_blp_loss(e, c)),
        },
        Experiment {
            name: "fig3_demand_estimation",
            title: "Figure 3: bank-demand estimation accuracy vs empirical optimum",
            render: |e, c| table(fig3_demand_estimation(e, c)),
        },
        Experiment {
            name: "fig4_ws_dbp",
            title: "Figure 4: weighted speedup - shared vs equal-BP vs DBP (paper: DBP +4.3% over equal-BP)",
            render: |e, c| {
                format!("{}\n(weighted speedup: higher is better)", fig4_ws_dbp(e, c))
            },
        },
        Experiment {
            name: "fig5_ms_dbp",
            title: "Figure 5: maximum slowdown - shared vs equal-BP vs DBP (paper: DBP improves fairness 16% over equal-BP)",
            render: |e, c| {
                format!("{}\n(maximum slowdown: lower is better/fairer)", fig5_ms_dbp(e, c))
            },
        },
        Experiment {
            name: "fig6_row_hits",
            title: "Figure 6: system row-buffer hit rate per policy",
            render: |e, c| table(fig6_row_hits(e, c)),
        },
        Experiment {
            name: "fig7_dbp_tcm",
            title: "Figure 7: composing DBP with TCM (paper: DBP-TCM +6.2% WS, +16.7% fairness over TCM)",
            render: |e, c| {
                format!(
                    "{}\n(weighted speedup: higher is better)\n\n{}\n(maximum slowdown: lower is better/fairer)",
                    fig7_dbp_tcm_ws(e, c),
                    fig7_dbp_tcm_ms(e, c)
                )
            },
        },
        Experiment {
            name: "fig8_vs_mcp",
            title: "Figure 8: DBP-TCM vs MCP (paper: +5.3% WS, +37% fairness)",
            render: |e, c| {
                let (ws, ms) = fig8_vs_mcp(e, c);
                format!(
                    "{ws}\n(weighted speedup: higher is better)\n\n{ms}\n(maximum slowdown: lower is better/fairer)"
                )
            },
        },
        Experiment {
            name: "fig9_banks_sweep",
            title: "Figure 9: sensitivity to total bank count",
            render: |e, c| table(fig9_banks_sweep(e, c)),
        },
        Experiment {
            name: "fig10_channels_sweep",
            title: "Figure 10: sensitivity to channel count",
            render: |e, c| table(fig10_channels_sweep(e, c)),
        },
        Experiment {
            name: "fig11_cores_sweep",
            title: "Figure 11: sensitivity to core count (scaled mixes)",
            render: |e, c| table(fig11_cores_sweep(e, c)),
        },
        Experiment {
            name: "fig12_epoch_sweep",
            title: "Figure 12: sensitivity to the repartitioning epoch",
            render: |e, c| table(fig12_epoch_sweep(e, c)),
        },
        Experiment {
            name: "abl1_alpha",
            title: "Ablation 1: demand head-room coefficient alpha",
            render: |e, c| table(abl1_alpha(e, c)),
        },
        Experiment {
            name: "abl2_grouping",
            title: "Ablation 2: grouping non-intensive threads on a shared slice",
            render: |e, c| table(abl2_grouping(e, c)),
        },
        Experiment {
            name: "abl3_migration",
            title: "Ablation 3: page-migration cost model",
            render: |e, c| table(abl3_migration(e, c)),
        },
        Experiment {
            name: "ext1_energy",
            title: "Extension: DRAM energy by policy (activate savings from partitioning)",
            render: |e, c| table(ext1_energy(e, c)),
        },
        Experiment {
            name: "ext2_mapping",
            title: "Extension: DBP under permutation-based (XOR) bank mapping",
            render: |e, c| table(ext2_mapping(e, c)),
        },
        Experiment {
            name: "ext3_schedulers",
            title: "Extension: scheduler landscape (FCFS..TCM), shared vs +DBP",
            render: |e, c| {
                format!("{}\n(WS higher is better; MS lower is fairer)", ext3_schedulers(e, c))
            },
        },
        Experiment {
            name: "diag_interference",
            title: "Diagnostic: latency anatomy & interference attribution (Fig. 1 mix, shared vs equal-BP vs DBP)",
            render: diag_interference,
        },
        Experiment {
            name: "diag_audit",
            title: "Diagnostic: decision audit - shadow policies, estimator accuracy, convergence (mix50-1)",
            render: diag_audit,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eng() -> Engine {
        Engine::with_workers(2)
    }

    #[test]
    fn table3_lists_all_mixes() {
        let t = table3_mixes();
        assert_eq!(t.len(), mixes_4core().len());
    }

    #[test]
    fn sweep_mixes_cover_categories() {
        let pcts: Vec<u32> = sweep_mixes().iter().map(|m| m.intensive_pct).collect();
        assert!(pcts.contains(&25));
        assert!(pcts.contains(&50));
        assert!(pcts.contains(&75));
        assert!(pcts.contains(&100));
    }

    #[test]
    fn table1_renders() {
        let t = table1_config(&eng(), &SimConfig::default());
        assert!(t.render().contains("DDR3"));
        assert!(t.len() > 10);
    }

    fn smoke_cfg() -> SimConfig {
        let mut cfg = SimConfig::fast_test();
        cfg.warmup_instructions = 10_000;
        cfg.target_instructions = 25_000;
        cfg.epoch_cpu_cycles = 50_000;
        cfg.instr_feed_interval = 10_000;
        cfg
    }

    #[test]
    fn fig1_smoke() {
        let t = fig1_motivation(&eng(), &smoke_cfg());
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("libquantum"));
    }

    #[test]
    fn fig2_smoke() {
        let mut cfg = smoke_cfg();
        cfg.target_instructions = 15_000;
        let t = fig2_equal_blp_loss(&eng(), &cfg);
        // 3 benchmarks x 4 budgets.
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn ext1_energy_smoke() {
        // One mix is enough to exercise the energy plumbing, but the
        // table shape needs all four policies; use a tiny config.
        let mut cfg = smoke_cfg();
        cfg.target_instructions = 10_000;
        cfg.warmup_instructions = 5_000;
        let t = ext1_energy(&eng(), &cfg);
        assert_eq!(t.len(), 4);
        assert!(t.render().contains("DBP"));
    }

    #[test]
    fn registry_names_match_binaries_and_are_unique() {
        let exps = all();
        assert_eq!(exps.len(), 23);
        let mut names: Vec<_> = exps.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn renders_are_byte_identical_serial_vs_parallel() {
        // The determinism contract of the whole harness: an experiment
        // rendered through a 1-worker engine and a many-worker engine
        // must produce identical bytes (the CI gate asserts the same for
        // the full quick suite). `diag_interference` additionally pins
        // the latency-anatomy path: per-cycle attribution and histogram
        // merges must not depend on worker scheduling.
        let cfg = smoke_cfg();
        for name in ["fig1_motivation", "diag_interference", "diag_audit"] {
            let exp = all().into_iter().find(|e| e.name == name).expect("registered");
            let serial = (exp.render)(&Engine::with_workers(1), &cfg);
            let parallel = (exp.render)(&Engine::with_workers(4), &cfg);
            assert_eq!(serial, parallel, "{name} must not depend on DBP_JOBS");
        }
    }

    /// The interference-matrix shape the whole diagnostic exists to
    /// show, regression-tested on the Fig. 1 motivation mix: private
    /// banks (equal-BP, and DBP once settled) eliminate cross-core
    /// *bank* interference that the unpartitioned system suffers, while
    /// the shared bus stays contended under every policy.
    #[test]
    fn diag_interference_matrix_sanity() {
        let cfg = smoke_cfg();
        let mix =
            Mix { name: "motivation", intensive_pct: 100, benchmarks: vec!["libquantum", "mcf"] };
        let report_for =
            |combo: Combo| dbp_sim::runner::run_shared_latency(&combo.apply(&cfg), &mix).1;
        let shared = report_for(harness::shared());
        let equal = report_for(harness::equal_bp());
        let dbp = report_for(harness::dbp());

        assert!(shared.total_reads() > 0 && equal.total_reads() > 0 && dbp.total_reads() > 0);
        let shared_bank = shared.bank_interference.off_diagonal_sum();
        assert!(shared_bank > 0, "unpartitioned banks must show cross-core bank interference");
        assert_eq!(
            equal.bank_interference.off_diagonal_sum(),
            0,
            "equal-BP gives each core private banks: cross-core bank entries must vanish"
        );
        assert!(
            dbp.bank_interference.off_diagonal_sum() <= shared_bank / 5,
            "DBP must eliminate nearly all cross-core bank interference (shared {} vs dbp {})",
            shared_bank,
            dbp.bank_interference.off_diagonal_sum()
        );
        assert!(
            equal.bus_interference.off_diagonal_sum() > 0,
            "the data bus stays shared under bank partitioning"
        );
    }
}
