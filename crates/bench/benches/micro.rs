//! Thin bench-target shim: the actual registry lives in
//! [`dbp_bench::micro`] so library tests and the perf-regression gate
//! measure exactly what `cargo bench` measures.

fn main() {
    let mut r = dbp_util::bench::Runner::from_env();
    dbp_bench::micro::register_all(&mut r);
    r.finish();
}
