//! Criterion microbenchmarks: the per-component costs that determine the
//! simulator's cycles-per-second throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use dbp_cache::{Hierarchy, HierarchyConfig};
use dbp_dram::{Command, Dram, DramConfig};
use dbp_memctrl::scheduler::{FrFcfs, Tcm};
use dbp_memctrl::{CtrlConfig, MemRequest, MemoryController};
use dbp_osmem::{ColorSet, FrameAllocator};
use dbp_sim::{SimConfig, System};
use dbp_workloads::{profiles, SyntheticTrace};

fn bench_dram_commands(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(3)); // ACT + RD + PRE
    g.bench_function("act_rd_pre_cycle", |b| {
        let cfg = DramConfig::fast_test();
        b.iter_batched(
            || Dram::new(cfg.clone()),
            |mut d| {
                let mut now = 0;
                let act = Command::activate(0, 0, 0, 1);
                now = d.earliest_issue(&act, now).unwrap();
                d.issue(&act, now);
                let rd = Command::read(0, 0, 0, 1, 0, false);
                now = d.earliest_issue(&rd, now).unwrap();
                d.issue(&rd, now);
                let pre = Command::precharge(0, 0, 0);
                now = d.earliest_issue(&pre, now).unwrap();
                d.issue(&pre, now);
                d
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn filled_controller(sched: Box<dyn dbp_memctrl::Scheduler>) -> MemoryController {
    let mut mc = MemoryController::new(
        Dram::new(DramConfig::fast_test()),
        CtrlConfig::default(),
        sched,
        4,
    );
    for i in 0..32u64 {
        mc.enqueue(MemRequest::demand_read(i, (i % 4) as usize, i * 4096, 0));
    }
    mc
}

fn bench_controller_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller_tick");
    g.throughput(Throughput::Elements(64));
    g.bench_function("frfcfs_32deep", |b| {
        b.iter_batched(
            || filled_controller(Box::new(FrFcfs)),
            |mut mc| {
                let mut done = Vec::new();
                for now in 0..64 {
                    mc.tick(now, &mut done);
                }
                mc
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("tcm_32deep", |b| {
        b.iter_batched(
            || filled_controller(Box::new(Tcm::new(Default::default(), 4))),
            |mut mc| {
                let mut done = Vec::new();
                for now in 0..64 {
                    mc.tick(now, &mut done);
                }
                mc
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_allocator");
    let cfg = DramConfig { rows_per_bank: 256, ..DramConfig::default() };
    g.throughput(Throughput::Elements(1024));
    g.bench_function("alloc_free_1k", |b| {
        b.iter_batched(
            || FrameAllocator::new(&cfg),
            |mut a| {
                let allowed = ColorSet::range(0, 8);
                let mut frames = Vec::with_capacity(1024);
                for _ in 0..1024 {
                    frames.push(a.alloc(&allowed).unwrap());
                }
                for f in frames {
                    a.free(f);
                }
                a
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("hierarchy_stream_4k", |b| {
        b.iter_batched(
            || Hierarchy::new(HierarchyConfig::default()),
            |mut h| {
                for i in 0..4096u64 {
                    h.access(i * 64, i % 5 == 0);
                }
                h
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    use dbp_cpu::TraceSource;
    let mut g = c.benchmark_group("workloads");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("synthetic_mcf_4k_ops", |b| {
        let mut t = SyntheticTrace::new(profiles::by_name("mcf"), 1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..4096 {
                acc ^= t.next_op().addr;
            }
            acc
        });
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000)); // CPU cycles stepped
    g.bench_function("step_100k_cycles_4core", |b| {
        b.iter_batched(
            || {
                let mut cfg = SimConfig::fast_test();
                cfg.warmup_instructions = 0;
                let traces: Vec<Box<dyn dbp_cpu::TraceSource>> = ["mcf", "lbm", "libquantum", "milc"]
                    .iter()
                    .enumerate()
                    .map(|(i, n)| {
                        Box::new(SyntheticTrace::new(profiles::by_name(n), i as u64))
                            as Box<dyn dbp_cpu::TraceSource>
                    })
                    .collect();
                System::new(cfg, traces)
            },
            |mut sys| {
                for _ in 0..100_000 {
                    sys.step();
                }
                sys
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dram_commands,
    bench_controller_tick,
    bench_allocator,
    bench_cache,
    bench_trace_generation,
    bench_end_to_end
);
criterion_main!(benches);
