//! Regression: PAR-BS under the real quick-suite configuration must be
//! byte-identical between the time-skipping and stepped cores.
//!
//! PAR-BS batch formation snapshots the read queues at the first tick
//! where the previous batch has drained — a queue-content-dependent
//! state transition the calendar can only honour through the scheduler's
//! `next_wake`. Before that wake existed, a skipped run formed batches
//! late (marking requests that arrived mid-window) and exactly this mix
//! diverged in the suite's scheduler-landscape table. The smaller
//! 2-core `fast_test` property tests never caught it; only a 4-core
//! quick-suite workload does, so it is pinned here. The full-suite
//! `DBP_NO_SKIP=1` diff leg in ci.sh covers every other (scheduler,
//! mix, policy) combination in release.

use dbp_bench::harness;
use dbp_core::policy::PolicyKind;
use dbp_sim::runner::trace_for;
use dbp_sim::{SchedulerKind, System};
use dbp_workloads::mixes_4core;

#[test]
fn parbs_quick_mix_skip_equals_stepped() {
    let mut cfg = harness::config_for(true);
    cfg.scheduler = SchedulerKind::ParBs(Default::default());
    cfg.policy = PolicyKind::Unpartitioned;
    let mixes = mixes_4core();
    let mix = mixes
        .iter()
        .find(|m| m.name == "mix25-1")
        .expect("the historically diverging mix left the mix set");
    let arm = |skip: bool| {
        let traces = (0..mix.cores()).map(|i| trace_for(mix, i)).collect();
        let mut sys = System::new(cfg.clone(), traces);
        sys.set_time_skip(skip);
        (sys.run(), sys.cycle())
    };
    let skipped = arm(true);
    let stepped = arm(false);
    assert_eq!(skipped.1, stepped.1, "final cycle diverged");
    assert_eq!(skipped.0, stepped.0, "run result diverged");
}
