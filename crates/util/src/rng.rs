//! A seedable pseudo-random number generator: xoshiro256++ state-stepped
//! from a SplitMix64-expanded seed.
//!
//! This is the workspace's *only* source of randomness. Everything —
//! workload generation, property-test case generation, bench-input
//! shuffling — draws from an [`Rng`] constructed with an explicit seed, so
//! every run of the simulator and every test case is replayable from a
//! single `u64`.
//!
//! Algorithms: Blackman & Vigna's xoshiro256++ for the stream (64-bit
//! output, 256-bit state, passes BigCrush) seeded via Steele, Lea &
//! Flood's SplitMix64 so that similar seeds — 0, 1, 2, ... — still yield
//! decorrelated states.

/// One step of SplitMix64: advances `state` and returns the next output.
///
/// Public because the seeding convention (`Rng::seed_from_u64` expands the
/// seed with exactly four SplitMix64 steps) is part of the reproducibility
/// contract documented in `DESIGN.md`.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // SplitMix64 never yields four zeros, but guard the degenerate
        // all-zero state xoshiro cannot escape from anyway.
        debug_assert!(s.iter().any(|&w| w != 0));
        Rng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, from the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform value below `bound`, unbiased via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject the tail of the 2^64 space that does not divide evenly.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform sample from `range` (half-open or inclusive ranges over
    /// the common integer types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges an [`Rng`] can sample uniformly.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.next_below(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty sampling range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = Rng::seed_from_u64(8);
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for SplitMix64 from seed 0 (Vigna's test suite).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn not_constant_and_spread_out() {
        let mut r = Rng::seed_from_u64(1);
        let vals: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        let mut uniq = vals.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "64 draws must all differ");
        // Both halves of the space must be hit.
        assert!(vals.iter().any(|&v| v < u64::MAX / 2));
        assert!(vals.iter().any(|&v| v >= u64::MAX / 2));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
        let v = r.gen_range(3u64..4);
        assert_eq!(v, 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
