//! Zero-dependency testing substrate for the DBP workspace.
//!
//! The tier-1 build must be *hermetic*: `cargo build --release --offline`
//! and `cargo test -q --offline` work with no registry access. This crate
//! replaces the three external crates the seed depended on:
//!
//! - [`rng`] replaces `rand` — a seedable SplitMix64 / xoshiro256++ PRNG
//!   with the handful of sampling methods the simulator actually uses.
//! - [`prop`] replaces `proptest` — seeded case generation, bounded
//!   shrinking on failure, and failure-seed replay via `DBP_PROP_SEED`.
//! - [`bench`] replaces `criterion` — a warmup + N-iteration runner that
//!   reports min / median / p95 and per-element throughput.
//!
//! All three are deliberately small. They exist so the ~60 unit and
//! property tests that validate the water-filling, demand estimation, and
//! DRAM timing logic against the paper (Xie et al., HPCA 2014) compile and
//! run on a network-less machine, forever.

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::Rng;
