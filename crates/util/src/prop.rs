//! A minimal property-based testing harness (in-tree `proptest`
//! replacement).
//!
//! # Model
//!
//! A [`Gen`] builds a random value by *drawing bounded choices* from a
//! [`Source`]. The source records every choice, so a generated case is
//! fully described by its choice log — and **shrinking** is just mutating
//! that log (deleting spans, zeroing and halving entries) and
//! regenerating. Because shrinking operates below the generator, it
//! composes through [`Gen::map`], tuples, vectors, and [`one_of`] with no
//! per-type shrink code, the same way Hypothesis shrinks its byte stream.
//!
//! # Determinism and replay
//!
//! Case generation is seeded deterministically: the same binary produces
//! the same cases on every run and every machine (the build is hermetic;
//! the tests are too). When a property fails, the harness shrinks the
//! case (bounded by [`Config::max_shrink_iters`]) and reports the
//! originating case seed:
//!
//! ```text
//! property failed: ... (replay with DBP_PROP_SEED=1234567890)
//! ```
//!
//! Re-running the test with that environment variable set regenerates
//! exactly the failing case (and only it):
//!
//! ```sh
//! DBP_PROP_SEED=1234567890 cargo test -p dbp-memctrl all_requests_complete
//! ```

use std::fmt::Debug;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{splitmix64, Rng};

/// Outcome of one property evaluation: `Err` carries the failure message.
pub type CaseResult = Result<(), String>;

/// Bounded-choice randomness with recording and replay.
pub struct Source<'a> {
    rng: Rng,
    replay: Option<&'a [u64]>,
    pos: usize,
    log: Vec<u64>,
}

impl<'a> Source<'a> {
    /// A fresh recording source seeded with `seed`.
    pub fn recording(seed: u64) -> Source<'static> {
        Source { rng: Rng::seed_from_u64(seed), replay: None, pos: 0, log: Vec::new() }
    }

    /// A source replaying `log`; draws beyond its end return the minimum
    /// (zero) choice, so any truncated log still generates a valid value.
    pub fn replaying(log: &'a [u64]) -> Source<'a> {
        Source { rng: Rng::seed_from_u64(0), replay: Some(log), pos: 0, log: Vec::new() }
    }

    /// Draw a choice in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn draw(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice bound");
        let c = match self.replay {
            Some(r) if self.pos < r.len() => r[self.pos] % bound,
            Some(_) => 0,
            None => self.rng.next_below(bound),
        };
        self.pos += 1;
        self.log.push(c);
        c
    }

    fn into_log(self) -> Vec<u64> {
        self.log
    }
}

/// A value generator driven by a [`Source`].
pub trait Gen {
    type Value: Clone + Debug;

    /// Produce one value, drawing as many choices as needed.
    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Transform generated values (shrinking still happens on the
    /// underlying choices, so mapped generators shrink for free).
    fn map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        W: Clone + Debug,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Type-erase, for heterogeneous arms in [`one_of`].
    fn boxed(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased generator.
pub type BoxedGen<V> = Box<dyn Gen<Value = V>>;

impl<V: Clone + Debug> Gen for BoxedGen<V> {
    type Value = V;
    fn generate(&self, src: &mut Source) -> V {
        (**self).generate(src)
    }
}

/// See [`Gen::map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, W, F> Gen for Map<G, F>
where
    G: Gen,
    W: Clone + Debug,
    F: Fn(G::Value) -> W,
{
    type Value = W;
    fn generate(&self, src: &mut Source) -> W {
        (self.f)(self.inner.generate(src))
    }
}

/// A generator from a closure over the [`Source`].
pub struct FromFn<V, F> {
    f: F,
    _marker: PhantomData<fn() -> V>,
}

impl<V: Clone + Debug, F: Fn(&mut Source) -> V> Gen for FromFn<V, F> {
    type Value = V;
    fn generate(&self, src: &mut Source) -> V {
        (self.f)(src)
    }
}

/// Build a generator from a closure.
pub fn from_fn<V, F>(f: F) -> FromFn<V, F>
where
    V: Clone + Debug,
    F: Fn(&mut Source) -> V,
{
    FromFn { f, _marker: PhantomData }
}

/// Integer types usable with [`range`].
pub trait ChoiceInt: Copy + Clone + Debug + 'static {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_choice_int {
    ($($t:ty),*) => {$(
        impl ChoiceInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}

impl_choice_int!(u8, u16, u32, u64, usize);

/// Uniform integers in a half-open range; shrinks toward the start.
pub fn range<T: ChoiceInt>(r: core::ops::Range<T>) -> impl Gen<Value = T> {
    let (lo, hi) = (r.start.to_u64(), r.end.to_u64());
    assert!(lo < hi, "empty range");
    from_fn(move |src| T::from_u64(lo + src.draw(hi - lo)))
}

/// Uniform `f64` in a half-open range; shrinks toward the start.
pub fn f64_range(r: core::ops::Range<f64>) -> impl Gen<Value = f64> {
    let (lo, hi) = (r.start, r.end);
    assert!(lo < hi, "empty range");
    from_fn(move |src| lo + src.draw(1 << 53) as f64 * (1.0 / (1u64 << 53) as f64) * (hi - lo))
}

/// Uniform booleans; shrinks toward `false`.
pub fn any_bool() -> impl Gen<Value = bool> {
    from_fn(|src| src.draw(2) == 1)
}

/// A vector of `elem` values with length drawn from `len`; shrinks both
/// the length and the elements.
pub fn vec_of<G: Gen>(elem: G, len: core::ops::Range<usize>) -> impl Gen<Value = Vec<G::Value>> {
    let (lo, hi) = (len.start as u64, len.end as u64);
    assert!(lo < hi, "empty length range");
    from_fn(move |src| {
        let n = lo + src.draw(hi - lo);
        (0..n).map(|_| elem.generate(src)).collect()
    })
}

/// Pick one arm uniformly and generate from it (a `prop_oneof`
/// replacement); shrinks toward the first arm.
///
/// # Panics
///
/// Panics if `arms` is empty.
pub fn one_of<V: Clone + Debug + 'static>(arms: Vec<BoxedGen<V>>) -> impl Gen<Value = V> {
    assert!(!arms.is_empty(), "one_of needs at least one arm");
    from_fn(move |src| {
        let i = src.draw(arms.len() as u64) as usize;
        arms[i].generate(src)
    })
}

macro_rules! impl_tuple_gen {
    ($(($($g:ident / $idx:tt),+);)*) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    )*};
}

impl_tuple_gen! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

/// Runner knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Cases generated per property (proptest's default is 256; ours too).
    pub cases: u32,
    /// Budget of candidate evaluations while shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_shrink_iters: 1024 }
    }
}

impl Config {
    /// A config running `n` cases.
    pub fn cases(n: u32) -> Self {
        Config { cases: n, ..Config::default() }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn run_case<V: Clone>(prop: &impl Fn(V) -> CaseResult, value: V) -> CaseResult {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(p) => Err(panic_message(&*p)),
    }
}

/// Lexicographic shrink measure: fewer choices, then smaller choices.
fn measure(log: &[u64]) -> (usize, u128) {
    (log.len(), log.iter().map(|&v| u128::from(v)).sum())
}

/// Greedy shrink state: the simplest known-failing choice log.
struct Shrinker<'a, G: Gen, P: Fn(G::Value) -> CaseResult> {
    gen: &'a G,
    prop: &'a P,
    attempts: u32,
    budget: u32,
    best_log: Vec<u64>,
    best_val: G::Value,
    best_msg: String,
}

impl<G: Gen, P: Fn(G::Value) -> CaseResult> Shrinker<'_, G, P> {
    fn exhausted(&self) -> bool {
        self.attempts >= self.budget
    }

    /// Regenerate from `cand`; adopt it if it still fails and its
    /// normalized log is strictly simpler (so the greedy walk cannot
    /// cycle). Returns whether it was adopted.
    fn try_adopt(&mut self, cand: &[u64]) -> bool {
        if self.exhausted() {
            return false;
        }
        self.attempts += 1;
        let mut src = Source::replaying(cand);
        let value = self.gen.generate(&mut src);
        let norm = src.into_log();
        if measure(&norm) >= measure(&self.best_log) {
            return false;
        }
        if let Err(msg) = run_case(self.prop, value.clone()) {
            self.best_log = norm;
            self.best_val = value;
            self.best_msg = msg;
            true
        } else {
            false
        }
    }

    /// One pass of span deletions, largest chunks first. Returns whether
    /// anything was deleted.
    fn delete_spans(&mut self) -> bool {
        let mut improved = false;
        let mut chunk = self.best_log.len();
        while chunk >= 1 && !self.exhausted() {
            let mut start = 0;
            while start + chunk <= self.best_log.len() && !self.exhausted() {
                let mut cand = self.best_log.clone();
                cand.drain(start..start + chunk);
                if self.try_adopt(&cand) {
                    improved = true;
                    // The log shrank under us; retry the same position.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        improved
    }

    /// Binary-search each choice toward its minimum. Returns whether any
    /// choice got smaller.
    fn minimize_choices(&mut self) -> bool {
        let mut improved = false;
        let mut i = 0;
        while i < self.best_log.len() && !self.exhausted() {
            let len_before = self.best_log.len();
            let mut lo = 0u64;
            while lo < self.best_log[i] && !self.exhausted() {
                let cur = self.best_log[i];
                let mid = lo + (cur - lo) / 2;
                let mut cand = self.best_log.clone();
                cand[i] = mid;
                if self.try_adopt(&cand) {
                    improved = true;
                    if self.best_log.len() != len_before {
                        // This choice steered structure (e.g. a vec
                        // length); indices shifted, restart outside.
                        return true;
                    }
                } else {
                    lo = mid + 1;
                }
            }
            i += 1;
        }
        improved
    }
}

fn shrink<G: Gen>(
    cfg: Config,
    gen: &G,
    prop: &impl Fn(G::Value) -> CaseResult,
    log: Vec<u64>,
    first_value: G::Value,
    first_msg: String,
) -> (G::Value, String) {
    let mut sh = Shrinker {
        gen,
        prop,
        attempts: 0,
        budget: cfg.max_shrink_iters,
        best_log: log,
        best_val: first_value,
        best_msg: first_msg,
    };
    loop {
        let deleted = sh.delete_spans();
        let minimized = sh.minimize_choices();
        if (!deleted && !minimized) || sh.exhausted() {
            break;
        }
    }
    (sh.best_val, sh.best_msg)
}

fn run_one_seed<G: Gen>(cfg: Config, gen: &G, prop: &impl Fn(G::Value) -> CaseResult, seed: u64) {
    let mut src = Source::recording(seed);
    let value = gen.generate(&mut src);
    if let Err(msg) = run_case(prop, value.clone()) {
        let (shrunk, shrunk_msg) = shrink(cfg, gen, prop, src.into_log(), value.clone(), msg);
        panic!(
            "property failed: {shrunk_msg} (replay with DBP_PROP_SEED={seed})\n\
             \x20 shrunk case: {shrunk:?}\n\
             \x20 original case: {value:?}"
        );
    }
}

/// Check `prop` against `cfg.cases` generated values.
///
/// Generation is deterministic (hermetic builds get hermetic tests).
/// Setting `DBP_PROP_SEED=<seed>` replays a single reported failure case
/// instead of the full run.
///
/// # Panics
///
/// Panics — failing the enclosing `#[test]` — with the shrunk
/// counterexample and its replay seed when the property does not hold.
pub fn check<G: Gen>(cfg: Config, gen: &G, prop: impl Fn(G::Value) -> CaseResult) {
    if let Ok(v) = std::env::var("DBP_PROP_SEED") {
        let seed: u64 =
            v.trim().parse().unwrap_or_else(|_| panic!("DBP_PROP_SEED must be a u64, got {v:?}"));
        run_one_seed(cfg, gen, &prop, seed);
        return;
    }
    // Fixed base: identical cases on every run, every machine.
    let mut state = 0xD8B9_5EED_0000_0001u64;
    for _ in 0..cfg.cases {
        let seed = splitmix64(&mut state);
        run_one_seed(cfg, gen, &prop, seed);
    }
}

/// `proptest`-style asserts for property bodies returning [`CaseResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return Err(format!($($arg)+));
        }
    };
}

/// Equality assert for property bodies; reports both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!($($arg)+));
        }
    }};
}

/// Inequality assert for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), a
            ));
        }
    }};
    ($a:expr, $b:expr, $($arg:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err(format!($($arg)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0u32);
        check(Config::cases(50), &range(0u64..100), |v| {
            count.set(count.get() + 1);
            prop_assert!(v < 100);
            Ok(())
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn generation_is_deterministic() {
        let g = vec_of((range(0u32..10), any_bool()), 1..8);
        let collect = |seed| {
            let mut src = Source::recording(seed);
            g.generate(&mut src)
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(
            (0..20).map(collect).collect::<Vec<_>>(),
            (100..120).map(collect).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn replay_reproduces_recorded_case() {
        let g = vec_of(range(0u64..1000), 1..20);
        let mut src = Source::recording(7);
        let original = g.generate(&mut src);
        let log = src.into_log();
        let mut replay = Source::replaying(&log);
        assert_eq!(g.generate(&mut replay), original);
    }

    #[test]
    fn failing_property_panics_with_replay_seed() {
        let err = catch_unwind(|| {
            check(Config::cases(64), &range(0u64..1000), |v| {
                prop_assert!(v < 990, "v = {v}");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(&*err);
        assert!(msg.contains("DBP_PROP_SEED="), "no replay seed in: {msg}");
    }

    #[test]
    fn shrinking_minimizes_scalar_counterexamples() {
        let err = catch_unwind(|| {
            check(Config::cases(64), &range(0u64..10_000), |v| {
                prop_assert!(v < 500);
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(&*err);
        // The minimal counterexample is exactly the boundary.
        assert!(msg.contains("shrunk case: 500"), "did not shrink to 500: {msg}");
    }

    #[test]
    fn shrinking_minimizes_vec_counterexamples() {
        let g = vec_of(range(0u64..100), 0..30);
        let err = catch_unwind(|| {
            check(Config::cases(64), &g, |v| {
                prop_assert!(v.iter().sum::<u64>() < 150);
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(&*err);
        // A minimal failing vec sums to barely >= 150: at most 3 elements.
        let shrunk = msg
            .lines()
            .find(|l| l.contains("shrunk case:"))
            .unwrap()
            .split("shrunk case:")
            .nth(1)
            .unwrap();
        let elems = shrunk.matches(|c: char| c.is_ascii_digit()).count();
        assert!(elems > 0);
        let commas = shrunk.matches(',').count();
        assert!(commas <= 3, "shrunk vec still large: {shrunk}");
    }

    #[test]
    fn one_of_and_map_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Op {
            A(u32),
            B(bool),
        }
        let g = one_of(vec![range(0u32..7).map(Op::A).boxed(), any_bool().map(Op::B).boxed()]);
        let mut src = Source::recording(3);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match g.generate(&mut src) {
                Op::A(v) => {
                    assert!(v < 7);
                    seen_a = true;
                }
                Op::B(_) => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn tuple_and_float_ranges_in_bounds() {
        let g = (f64_range(1.5..2.5), range(3u8..9), any_bool());
        let mut src = Source::recording(11);
        for _ in 0..200 {
            let (f, i, _) = g.generate(&mut src);
            assert!((1.5..2.5).contains(&f));
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn plain_asserts_are_caught_and_shrunk() {
        let err = catch_unwind(|| {
            check(Config::cases(64), &range(0u64..100), |v| {
                assert!(v < 60, "plain assert, v = {v}");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(&*err);
        assert!(msg.contains("shrunk case: 60"), "bad shrink: {msg}");
    }
}
