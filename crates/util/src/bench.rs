//! A criterion-free micro-bench runner.
//!
//! Each benchmark is `warmup` untimed iterations followed by `iters`
//! timed ones; the report prints min / median / p95 wall time per
//! iteration plus per-element throughput when the benchmark declares how
//! many logical elements one iteration processes.
//!
//! Environment knobs (useful in CI, where `DBP_BENCH_ITERS=5` keeps the
//! suite cheap):
//!
//! - `DBP_BENCH_ITERS`   — timed iterations per benchmark (default 30)
//! - `DBP_BENCH_WARMUP`  — warmup iterations per benchmark (default 5)
//! - `DBP_BENCH_JSON`    — also write the summaries as JSON to this file
//!   (CI uses it to track the perf trajectory across PRs)
//!
//! ```no_run
//! let mut r = dbp_util::bench::Runner::from_env();
//! r.bench("sum_1k", 1024, || (0..1024u64).sum::<u64>());
//! r.finish();
//! ```

use std::hint::black_box;
use std::time::Instant;

/// Iteration counts for one [`Runner`].
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    pub warmup_iters: u32,
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { warmup_iters: 5, iters: 30 }
    }
}

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Summary {
    pub name: String,
    pub min_ns: u128,
    pub median_ns: u128,
    pub p95_ns: u128,
    /// Logical elements processed per iteration (0 = unspecified).
    pub elements: u64,
}

impl Summary {
    /// Millions of elements per second at the median, if declared.
    pub fn melems_per_sec(&self) -> Option<f64> {
        if self.elements == 0 || self.median_ns == 0 {
            return None;
        }
        Some(self.elements as f64 * 1e3 / self.median_ns as f64)
    }
}

/// Human-readable wall time: picks ns/us/ms/s to keep 3-4 significant
/// digits. Shared by the micro-bench report and the experiment-suite
/// timing summary. (The implementation lives in `dbp_obs::table` so the
/// profiler tables can use it too; re-exported here for callers that
/// predate the move.)
pub use dbp_obs::table::fmt_ns;

/// A wall-clock stopwatch for coarse phase timing (suite experiments,
/// whole-run totals) — start it, do the work, read `elapsed_ns`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Nanoseconds since `start`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u128 {
        self.started.elapsed().as_nanos()
    }
}

/// Runs benchmarks and accumulates their [`Summary`] rows.
#[derive(Debug, Default)]
pub struct Runner {
    cfg: BenchConfig,
    results: Vec<Summary>,
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl Runner {
    /// A runner with explicit iteration counts.
    pub fn new(cfg: BenchConfig) -> Self {
        Runner { cfg, results: Vec::new() }
    }

    /// A runner honouring `DBP_BENCH_ITERS` / `DBP_BENCH_WARMUP`.
    pub fn from_env() -> Self {
        Runner::new(BenchConfig {
            warmup_iters: env_u32("DBP_BENCH_WARMUP", BenchConfig::default().warmup_iters),
            iters: env_u32("DBP_BENCH_ITERS", BenchConfig::default().iters),
        })
    }

    /// Time `routine` with a fresh `setup()` value per iteration (the
    /// setup cost is excluded, like criterion's `iter_batched`).
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        elements: u64,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) -> &Summary {
        for _ in 0..self.cfg.warmup_iters {
            black_box(routine(setup()));
        }
        let mut samples: Vec<u128> = Vec::with_capacity(self.cfg.iters as usize);
        for _ in 0..self.cfg.iters.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos());
        }
        samples.sort_unstable();
        let summary = Summary {
            name: name.to_owned(),
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            // Nearest-rank p95.
            p95_ns: samples[(samples.len() * 95).div_ceil(100).saturating_sub(1)],
            elements,
        };
        self.results.push(summary);
        self.results.last().expect("just pushed")
    }

    /// Time `routine` alone (state persists across iterations).
    pub fn bench<T>(
        &mut self,
        name: &str,
        elements: u64,
        mut routine: impl FnMut() -> T,
    ) -> &Summary {
        self.bench_batched(name, elements, || (), |()| routine())
    }

    /// All summaries so far.
    pub fn results(&self) -> &[Summary] {
        &self.results
    }

    /// Render the report table.
    pub fn report(&self) -> String {
        let mut t = dbp_obs::Table::new(["benchmark", "min", "median", "p95", "throughput"]);
        t.align_left(0);
        for s in &self.results {
            let tp = s
                .melems_per_sec()
                .map(|m| format!("{m:.2} Melem/s"))
                .unwrap_or_else(|| "-".to_owned());
            t.row([s.name.clone(), fmt_ns(s.min_ns), fmt_ns(s.median_ns), fmt_ns(s.p95_ns), tp]);
        }
        t.render()
    }

    /// The summaries as a JSON document (one object per benchmark).
    pub fn json_report(&self) -> dbp_obs::Json {
        use dbp_obs::Json;
        Json::obj([(
            "benchmarks",
            Json::arr(self.results.iter().map(|s| {
                let mut pairs = vec![
                    ("name".to_string(), Json::str(&s.name)),
                    ("min_ns".to_string(), Json::uint(s.min_ns as u64)),
                    ("median_ns".to_string(), Json::uint(s.median_ns as u64)),
                    ("p95_ns".to_string(), Json::uint(s.p95_ns as u64)),
                    ("elements".to_string(), Json::uint(s.elements)),
                ];
                if let Some(m) = s.melems_per_sec() {
                    pairs.push(("melems_per_sec".to_string(), Json::num(m)));
                }
                Json::Obj(pairs)
            })),
        )])
    }

    /// Write [`Runner::json_report`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.json_report().to_json())
    }

    /// Print the report to stdout; when `DBP_BENCH_JSON` names a file,
    /// also write [`Runner::json_report`] there. A failed write is a
    /// hard error (`exit(1)`): CI must never mistake a bench run whose
    /// artifact silently vanished for a successful one.
    pub fn finish(&self) {
        print!("{}", self.report());
        if let Ok(path) = std::env::var("DBP_BENCH_JSON") {
            if !path.trim().is_empty() {
                match self.write_json(&path) {
                    Ok(()) => eprintln!("bench: wrote JSON summaries to {path}"),
                    Err(e) => {
                        eprintln!("bench: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_are_ordered_and_named() {
        let mut r = Runner::new(BenchConfig { warmup_iters: 1, iters: 9 });
        r.bench("spin", 64, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let s = &r.results()[0];
        assert_eq!(s.name, "spin");
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns);
        assert!(s.melems_per_sec().is_some());
    }

    #[test]
    fn batched_setup_not_timed_and_report_renders() {
        let mut r = Runner::new(BenchConfig { warmup_iters: 0, iters: 3 });
        r.bench_batched("consume_vec", 0, || vec![1u8; 1024], |v| v.len());
        let report = r.report();
        assert!(report.contains("consume_vec"));
        assert!(report.contains("median"));
        // elements = 0 -> no throughput column value.
        assert!(report.contains(" -"));
    }

    #[test]
    fn env_override_parses() {
        assert_eq!(env_u32("DBP_BENCH_NO_SUCH_VAR", 17), 17);
    }

    #[test]
    fn write_json_surfaces_io_errors() {
        let mut r = Runner::new(BenchConfig { warmup_iters: 0, iters: 1 });
        r.bench("spin", 1, || ());
        assert!(r.write_json("/nonexistent-dir-for-sure/bench.json").is_err());
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210 s");
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn json_report_round_trips() {
        let mut r = Runner::new(BenchConfig { warmup_iters: 0, iters: 3 });
        r.bench("spin", 64, || std::hint::black_box(2u64 + 2));
        r.bench("no_elements", 0, || ());
        let text = r.json_report().to_json();
        let doc = dbp_obs::json::parse(&text).expect("bench JSON must parse");
        let benches = doc.get("benchmarks").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].get("name").and_then(|n| n.as_str()), Some("spin"));
        assert!(benches[0].get("median_ns").and_then(|n| n.as_num()).is_some());
        // elements = 0 -> no throughput key.
        assert!(benches[1].get("melems_per_sec").is_none());
    }
}
