//! Per-thread virtual-to-physical page maps.

use dbp_obs::FxHashMap;

use crate::{Frame, Vpn};

/// A flat page table for one thread.
///
/// Backed by a fixed-seed [`FxHashMap`]: `translate` sits on the
/// simulator's hottest path (every core memory poll), and the fixed seed
/// keeps iteration order reproducible across runs.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    map: FxHashMap<Vpn, Frame>,
}

impl PageTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a mapping.
    pub fn translate(&self, vpn: Vpn) -> Option<Frame> {
        self.map.get(&vpn).copied()
    }

    /// Install (or replace) a mapping, returning the previous frame.
    pub fn map(&mut self, vpn: Vpn, frame: Frame) -> Option<Frame> {
        self.map.insert(vpn, frame)
    }

    /// Remove a mapping, returning the frame if present.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Frame> {
        self.map.remove(&vpn)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.map.len()
    }

    /// Iterate (vpn, frame) pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Frame)> + '_ {
        self.map.iter().map(|(&v, &f)| (v, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut pt = PageTable::new();
        assert_eq!(pt.translate(7), None);
        assert_eq!(pt.map(7, 100), None);
        assert_eq!(pt.translate(7), Some(100));
        assert_eq!(pt.map(7, 200), Some(100));
        assert_eq!(pt.unmap(7), Some(200));
        assert_eq!(pt.resident_pages(), 0);
    }

    #[test]
    fn iter_covers_all_mappings() {
        let mut pt = PageTable::new();
        pt.map(1, 10);
        pt.map(2, 20);
        let mut pairs: Vec<_> = pt.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
    }
}
