//! Color-aware physical frame allocator.

use dbp_dram::{AddressMapper, ColorId, DramConfig};

use crate::{ColorSet, Frame};

/// Per-color free lists over all physical frames.
///
/// Frames are handed out from the *most free* allowed color, which keeps
/// a thread's footprint balanced across its partition (maximising its
/// bank-level parallelism, the property DBP cares about).
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    free: Vec<Vec<Frame>>, // indexed by color
    frame_colors: FrameColorFn,
    total: u64,
    allocated: u64,
}

/// Computes a frame's color arithmetically from the mapper (no per-frame
/// table: configurations can have millions of frames).
#[derive(Debug, Clone)]
struct FrameColorFn {
    mapper: AddressMapper,
}

impl FrameColorFn {
    fn color(&self, frame: Frame) -> ColorId {
        self.mapper.frame_color(frame).expect("allocator requires a page-coloring address layout")
    }
}

impl FrameAllocator {
    /// Build an allocator over every frame of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configured mapping is not page-coloring capable
    /// (frames must have a unique color) or has more than
    /// [`ColorSet::MAX_COLORS`] colors.
    pub fn new(cfg: &DramConfig) -> Self {
        let mapper = AddressMapper::new(cfg);
        let n_colors = mapper.num_colors();
        assert!(n_colors <= ColorSet::MAX_COLORS, "{n_colors} colors exceed ColorSet capacity");
        let total = cfg.total_frames();
        let fc = FrameColorFn { mapper };
        let mut free: Vec<Vec<Frame>> = vec![Vec::new(); n_colors as usize];
        // Push in reverse so that pop() hands out ascending frame numbers,
        // which keeps early allocations in low rows (realistic and
        // deterministic).
        for frame in (0..total).rev() {
            free[fc.color(frame) as usize].push(frame);
        }
        FrameAllocator { free, frame_colors: fc, total, allocated: 0 }
    }

    /// Number of colors.
    pub fn num_colors(&self) -> u32 {
        self.free.len() as u32
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.total
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.allocated
    }

    /// Free frames remaining in `color`.
    pub fn free_in_color(&self, color: ColorId) -> usize {
        self.free[color as usize].len()
    }

    /// The color of `frame`.
    pub fn color_of(&self, frame: Frame) -> ColorId {
        self.frame_colors.color(frame)
    }

    /// Allocate a frame from the allowed set, preferring the color with
    /// the most free frames. Returns `None` when every allowed color is
    /// exhausted.
    pub fn alloc(&mut self, allowed: &ColorSet) -> Option<Frame> {
        let best = allowed
            .iter()
            .filter(|&c| (c as usize) < self.free.len())
            .max_by_key(|&c| self.free[c as usize].len())?;
        let frame = self.free[best as usize].pop()?;
        self.allocated += 1;
        Some(frame)
    }

    /// Allocate from a specific color.
    pub fn alloc_color(&mut self, color: ColorId) -> Option<Frame> {
        let frame = self.free.get_mut(color as usize)?.pop()?;
        self.allocated += 1;
        Some(frame)
    }

    /// Return `frame` to its color's free list.
    pub fn free(&mut self, frame: Frame) {
        debug_assert!(frame < self.total);
        let color = self.frame_colors.color(frame);
        self.free[color as usize].push(frame);
        self.allocated -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DramConfig {
        DramConfig { rows_per_bank: 64, ..DramConfig::default() }
    }

    #[test]
    fn frames_divide_evenly_by_color() {
        let cfg = small_cfg();
        let a = FrameAllocator::new(&cfg);
        let per_color = (cfg.total_frames() / u64::from(a.num_colors())) as usize;
        for c in 0..a.num_colors() {
            assert_eq!(a.free_in_color(c), per_color);
        }
    }

    #[test]
    fn alloc_respects_color_set() {
        let cfg = small_cfg();
        let mut a = FrameAllocator::new(&cfg);
        let allowed = ColorSet::from_iter([3u32, 7]);
        for _ in 0..10 {
            let f = a.alloc(&allowed).unwrap();
            assert!(allowed.contains(a.color_of(f)));
        }
        assert_eq!(a.allocated_frames(), 10);
    }

    #[test]
    fn alloc_balances_across_colors() {
        let cfg = small_cfg();
        let mut a = FrameAllocator::new(&cfg);
        let allowed = ColorSet::range(0, 4);
        let mut counts = [0usize; 4];
        for _ in 0..40 {
            let f = a.alloc(&allowed).unwrap();
            counts[a.color_of(f) as usize] += 1;
        }
        for c in counts {
            assert_eq!(c, 10);
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let cfg = small_cfg();
        let mut a = FrameAllocator::new(&cfg);
        let one = ColorSet::from_iter([0u32]);
        let cap = a.free_in_color(0);
        for _ in 0..cap {
            assert!(a.alloc(&one).is_some());
        }
        assert_eq!(a.alloc(&one), None);
    }

    #[test]
    fn free_recycles() {
        let cfg = small_cfg();
        let mut a = FrameAllocator::new(&cfg);
        let one = ColorSet::from_iter([2u32]);
        let f = a.alloc(&one).unwrap();
        let before = a.free_in_color(2);
        a.free(f);
        assert_eq!(a.free_in_color(2), before + 1);
        assert_eq!(a.allocated_frames(), 0);
    }

    #[test]
    fn empty_set_allocates_nothing() {
        let cfg = small_cfg();
        let mut a = FrameAllocator::new(&cfg);
        assert_eq!(a.alloc(&ColorSet::empty()), None);
    }
}
