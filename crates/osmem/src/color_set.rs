//! Sets of page colors, the allocation unit of bank partitioning.

use dbp_dram::ColorId;

/// A set of colors, stored as a 128-bit mask.
///
/// Configurations in this reproduction never exceed 128 (channel, rank,
/// bank) triples; constructors panic beyond that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ColorSet(u128);

impl ColorSet {
    /// The maximum color id representable.
    pub const MAX_COLORS: u32 = 128;

    /// The empty set.
    pub fn empty() -> Self {
        ColorSet(0)
    }

    /// All colors in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    pub fn all(n: u32) -> Self {
        Self::range(0, n)
    }

    /// Colors in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi > 128` or `lo > hi`.
    pub fn range(lo: u32, hi: u32) -> Self {
        assert!(hi <= Self::MAX_COLORS, "color {hi} out of range");
        assert!(lo <= hi, "inverted range {lo}..{hi}");
        let mut s = ColorSet(0);
        for c in lo..hi {
            s.insert(c);
        }
        s
    }

    /// Insert a color.
    ///
    /// # Panics
    ///
    /// Panics if `color >= 128`.
    pub fn insert(&mut self, color: ColorId) {
        assert!(color < Self::MAX_COLORS, "color {color} out of range");
        self.0 |= 1u128 << color;
    }

    /// Remove a color.
    pub fn remove(&mut self, color: ColorId) {
        if color < Self::MAX_COLORS {
            self.0 &= !(1u128 << color);
        }
    }

    /// Whether `color` is in the set.
    pub fn contains(&self, color: ColorId) -> bool {
        color < Self::MAX_COLORS && self.0 & (1u128 << color) != 0
    }

    /// Number of colors in the set.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate colors in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ColorId> + '_ {
        (0..Self::MAX_COLORS).filter(move |&c| self.contains(c))
    }

    /// Set union.
    pub fn union(&self, other: &ColorSet) -> ColorSet {
        ColorSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ColorSet) -> ColorSet {
        ColorSet(self.0 & other.0)
    }

    /// Colors in `self` but not `other`.
    pub fn difference(&self, other: &ColorSet) -> ColorSet {
        ColorSet(self.0 & !other.0)
    }

    /// Whether the two sets share no color.
    pub fn is_disjoint(&self, other: &ColorSet) -> bool {
        self.0 & other.0 == 0
    }
}

impl FromIterator<ColorId> for ColorSet {
    fn from_iter<I: IntoIterator<Item = ColorId>>(iter: I) -> Self {
        let mut s = ColorSet::empty();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl std::fmt::Display for ColorSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = ColorSet::empty();
        assert!(s.is_empty());
        s.insert(5);
        s.insert(127);
        assert!(s.contains(5));
        assert!(s.contains(127));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
        s.remove(5);
        assert!(!s.contains(5));
    }

    #[test]
    fn range_and_all() {
        assert_eq!(ColorSet::all(32).len(), 32);
        let r = ColorSet::range(4, 8);
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn set_algebra() {
        let a = ColorSet::range(0, 4);
        let b = ColorSet::range(2, 6);
        assert_eq!(a.union(&b), ColorSet::range(0, 6));
        assert_eq!(a.intersection(&b), ColorSet::range(2, 4));
        assert_eq!(a.difference(&b), ColorSet::range(0, 2));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn from_iterator() {
        let s: ColorSet = [3u32, 1, 4].into_iter().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn display_lists_members() {
        let s = ColorSet::from_iter([2u32, 9]);
        assert_eq!(s.to_string(), "{2,9}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_beyond_capacity_panics() {
        let mut s = ColorSet::empty();
        s.insert(128);
    }
}
