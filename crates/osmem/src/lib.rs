//! OS physical-memory substrate: page-coloring allocation and migration.
//!
//! Bank partitioning is an OS/architecture co-design: the memory
//! controller never moves data between banks; instead the OS restricts
//! which physical frames a thread may receive, and the frame number
//! determines the (channel, rank, bank) — the frame's **color** — under
//! the page-coloring address layout (see `dbp_dram::MappingScheme`).
//!
//! This crate provides:
//!
//! - [`ColorSet`] — a set of colors a thread may allocate from.
//! - [`FrameAllocator`] — per-color free lists over the physical frames.
//! - [`PageTable`] — per-thread virtual-to-physical page maps.
//! - [`MemoryManager`] — the facade the simulator uses: translation with
//!   allocate-on-first-touch, partition updates, and **page migration**
//!   (eager at repartition time, or lazy on next touch) with the copied
//!   pages reported so the simulator can charge their DRAM traffic.
//!
//! # Example
//!
//! ```
//! use dbp_dram::DramConfig;
//! use dbp_osmem::{ColorSet, MemoryManager, MigrationMode};
//!
//! let cfg = DramConfig::default();
//! let mut mm = MemoryManager::new(&cfg, 2, MigrationMode::Lazy);
//! // Thread 0 confined to colors {0,1}; thread 1 gets the rest.
//! let n = mm.num_colors();
//! mm.set_partition(0, ColorSet::from_iter([0, 1]));
//! mm.set_partition(1, ColorSet::range(2, n));
//! let t = mm.translate(0, 0xdead_b000);
//! let color = mm.mapper().frame_color(t.pa >> 12).unwrap();
//! assert!(color < 2);
//! ```

pub mod allocator;
pub mod color_set;
pub mod manager;
pub mod page_table;

pub use allocator::FrameAllocator;
pub use color_set::ColorSet;
pub use manager::{MemoryManager, MigrationJob, MigrationMode, OsStats, Translation};
pub use page_table::PageTable;

/// Physical frame number.
pub type Frame = u64;
/// Virtual page number.
pub type Vpn = u64;
/// Thread (core) identifier.
pub type ThreadId = usize;
