//! The memory-manager facade: translation, partition updates, migration.

use dbp_dram::{AddressMapper, DramConfig};

use crate::allocator::FrameAllocator;
use crate::page_table::PageTable;
use crate::{ColorSet, Frame, ThreadId, Vpn};

/// When pages that violate a new partition get moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationMode {
    /// All violating resident pages move at [`MemoryManager::set_partition`]
    /// time.
    Eager,
    /// Violating pages move on the thread's next access to them. This is
    /// the default: it spreads migration traffic over the epoch, matching
    /// how MCP-style repartitioning is deployed.
    #[default]
    Lazy,
}

/// A page copy the simulator must charge to the DRAM model
/// (`page_bytes / line_bytes` reads of the old frame plus as many writes
/// of the new frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationJob {
    pub thread: ThreadId,
    pub vpn: Vpn,
    pub old_frame: Frame,
    pub new_frame: Frame,
}

/// Result of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical byte address.
    pub pa: u64,
    /// Whether this access demand-allocated the page (first touch).
    pub allocated: bool,
    /// A lazy migration triggered by this access, if any.
    pub migration: Option<MigrationJob>,
}

/// Allocation and migration counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Demand allocations.
    pub allocations: u64,
    /// Allocations that fell outside the thread's partition because it was
    /// exhausted.
    pub fallback_allocations: u64,
    /// Pages migrated to honour a partition change.
    pub migrated_pages: u64,
    /// Migrations skipped because the target partition had no free frame.
    pub failed_migrations: u64,
    /// Migrations deferred because the per-epoch budget was exhausted
    /// (the page keeps its old frame until a later epoch).
    pub deferred_migrations: u64,
}

/// Per-thread page tables over a shared color-aware frame allocator.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    mapper: AddressMapper,
    allocator: FrameAllocator,
    tables: Vec<PageTable>,
    partitions: Vec<ColorSet>,
    mode: MigrationMode,
    page_bits: u32,
    stats: OsStats,
    /// Remaining migrations until the next [`MemoryManager::refill_migration_budget`].
    /// `None` = unlimited.
    migration_budget: Option<u64>,
    rec: dbp_obs::Recorder,
}

impl MemoryManager {
    /// Build a manager for `threads` threads, each initially allowed every
    /// color (unpartitioned).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid or its mapping cannot color frames.
    pub fn new(cfg: &DramConfig, threads: usize, mode: MigrationMode) -> Self {
        let mapper = AddressMapper::new(cfg);
        let allocator = FrameAllocator::new(cfg);
        let all = ColorSet::all(allocator.num_colors());
        MemoryManager {
            page_bits: mapper.page_bits(),
            mapper,
            allocator,
            tables: (0..threads).map(|_| PageTable::new()).collect(),
            partitions: vec![all; threads],
            mode,
            stats: OsStats::default(),
            migration_budget: None,
            rec: dbp_obs::Recorder::disabled(),
        }
    }

    /// Hand the manager a telemetry recorder: every allocation fallback
    /// and page migration (with its cause) is emitted as an event.
    pub fn attach_recorder(&mut self, rec: dbp_obs::Recorder) {
        self.rec = rec;
    }

    /// Limit migrations until the next refill. A real migration daemon is
    /// throttled; an unbounded lazy migration of a large footprint would
    /// flood the memory system for entire epochs.
    pub fn refill_migration_budget(&mut self, pages: Option<u64>) {
        self.migration_budget = pages;
    }

    /// Consume one unit of migration budget; `false` means the migration
    /// must be deferred.
    fn take_budget(&mut self, thread: ThreadId) -> bool {
        match &mut self.migration_budget {
            None => true,
            Some(0) => {
                self.stats.deferred_migrations += 1;
                self.rec.emit(dbp_obs::EventKind::MigrationDeferred { thread });
                false
            }
            Some(b) => {
                *b -= 1;
                true
            }
        }
    }

    /// The address mapper (layout) in force.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Number of page colors.
    pub fn num_colors(&self) -> u32 {
        self.allocator.num_colors()
    }

    /// Number of threads managed.
    pub fn num_threads(&self) -> usize {
        self.tables.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }

    /// The partition currently applied to `thread`.
    pub fn partition_of(&self, thread: ThreadId) -> &ColorSet {
        &self.partitions[thread]
    }

    /// Resident pages of `thread`.
    pub fn resident_pages(&self, thread: ThreadId) -> usize {
        self.tables[thread].resident_pages()
    }

    fn alloc_for(&mut self, thread: ThreadId, vpn: Vpn) -> Frame {
        if let Some(f) = self.allocator.alloc(&self.partitions[thread]) {
            self.stats.allocations += 1;
            return f;
        }
        // Partition exhausted: a real OS spills rather than OOM-killing.
        self.stats.allocations += 1;
        self.stats.fallback_allocations += 1;
        self.rec.emit(dbp_obs::EventKind::FallbackAlloc { thread, vpn });
        self.allocator
            .alloc(&ColorSet::all(self.allocator.num_colors()))
            .expect("physical memory exhausted")
    }

    /// Translate `vaddr` for `thread`, demand-allocating on first touch
    /// and performing a lazy migration if the page violates the thread's
    /// current partition.
    pub fn translate(&mut self, thread: ThreadId, vaddr: u64) -> Translation {
        let vpn = vaddr >> self.page_bits;
        let offset = vaddr & ((1 << self.page_bits) - 1);
        if let Some(frame) = self.tables[thread].translate(vpn) {
            let violates = !self.partitions[thread].contains(self.allocator.color_of(frame));
            if violates && self.mode == MigrationMode::Lazy && self.take_budget(thread) {
                if let Some(new_frame) = self.allocator.alloc(&self.partitions[thread]) {
                    self.allocator.free(frame);
                    self.tables[thread].map(vpn, new_frame);
                    self.stats.migrated_pages += 1;
                    self.rec.emit(dbp_obs::EventKind::PageMigration {
                        thread,
                        vpn,
                        old_frame: frame,
                        new_frame,
                        cause: dbp_obs::MigrationCause::Lazy,
                    });
                    return Translation {
                        pa: (new_frame << self.page_bits) | offset,
                        allocated: false,
                        migration: Some(MigrationJob { thread, vpn, old_frame: frame, new_frame }),
                    };
                }
                self.stats.failed_migrations += 1;
                self.rec.emit(dbp_obs::EventKind::MigrationFailed { thread });
            }
            return Translation {
                pa: (frame << self.page_bits) | offset,
                allocated: false,
                migration: None,
            };
        }
        let frame = self.alloc_for(thread, vpn);
        self.tables[thread].map(vpn, frame);
        Translation { pa: (frame << self.page_bits) | offset, allocated: true, migration: None }
    }

    /// Side-effect-free translation probe: `Some(pa)` only when a call to
    /// [`MemoryManager::translate`] would be a pure lookup — the page is
    /// resident and would not trigger a lazy migration (nor any migration
    /// bookkeeping such as budget deferral). `None` means translating now
    /// could mutate state, so a time-skipping caller must not assume the
    /// access repeats identically.
    pub fn peek(&self, thread: ThreadId, vaddr: u64) -> Option<u64> {
        let vpn = vaddr >> self.page_bits;
        let offset = vaddr & ((1 << self.page_bits) - 1);
        let frame = self.tables[thread].translate(vpn)?;
        let violates = !self.partitions[thread].contains(self.allocator.color_of(frame));
        if violates && self.mode == MigrationMode::Lazy {
            return None;
        }
        Some((frame << self.page_bits) | offset)
    }

    /// Apply a new partition to `thread`.
    ///
    /// In [`MigrationMode::Eager`] every violating resident page is moved
    /// now and returned as a [`MigrationJob`]; in lazy mode the returned
    /// vector is empty and pages move on next touch.
    ///
    /// # Panics
    ///
    /// Panics if `colors` is empty.
    pub fn set_partition(&mut self, thread: ThreadId, colors: ColorSet) -> Vec<MigrationJob> {
        assert!(!colors.is_empty(), "a thread partition must contain at least one color");
        self.partitions[thread] = colors;
        if self.mode != MigrationMode::Eager {
            return Vec::new();
        }
        let mut violating: Vec<(Vpn, Frame)> = self.tables[thread]
            .iter()
            .filter(|&(_, f)| !colors.contains(self.allocator.color_of(f)))
            .collect();
        violating.sort_unstable(); // page tables hash-iterate nondeterministically
        let mut jobs = Vec::with_capacity(violating.len());
        for (vpn, old_frame) in violating {
            if !self.take_budget(thread) {
                break;
            }
            match self.allocator.alloc(&colors) {
                Some(new_frame) => {
                    self.allocator.free(old_frame);
                    self.tables[thread].map(vpn, new_frame);
                    self.stats.migrated_pages += 1;
                    self.rec.emit(dbp_obs::EventKind::PageMigration {
                        thread,
                        vpn,
                        old_frame,
                        new_frame,
                        cause: dbp_obs::MigrationCause::Eager,
                    });
                    jobs.push(MigrationJob { thread, vpn, old_frame, new_frame });
                }
                None => {
                    self.stats.failed_migrations += 1;
                    self.rec.emit(dbp_obs::EventKind::MigrationFailed { thread });
                }
            }
        }
        jobs
    }

    /// Spread `thread`'s resident pages evenly across the colors of its
    /// partition, moving at most the remaining migration budget.
    ///
    /// Needed when a partition *grows*: pages allocated under the old,
    /// smaller partition are legal under the new one but concentrated on
    /// few banks, so the thread cannot reach the bank-level parallelism
    /// its new allocation permits — the exact resource DBP grants it.
    /// Colors are only drained while they exceed the per-color average by
    /// a slack of 25 % + 4 pages, so a balanced thread is never churned.
    pub fn rebalance_thread(&mut self, thread: ThreadId) -> Vec<MigrationJob> {
        let part = self.partitions[thread];
        let colors: Vec<_> = part.iter().collect();
        if colors.len() < 2 {
            return Vec::new();
        }
        let mut buckets: Vec<Vec<(Vpn, Frame)>> = vec![Vec::new(); colors.len()];
        let mut outside = 0usize;
        for (vpn, frame) in self.tables[thread].iter() {
            match colors.iter().position(|&c| c == self.allocator.color_of(frame)) {
                Some(k) => buckets[k].push((vpn, frame)),
                None => outside += 1,
            }
        }
        for b in &mut buckets {
            b.sort_unstable(); // deterministic despite hash-order iteration
        }
        let resident: usize = buckets.iter().map(Vec::len).sum::<usize>() + outside;
        let target = resident / colors.len();
        let slack = target / 4 + 4;
        let mut jobs = Vec::new();
        for k in 0..colors.len() {
            while buckets[k].len() > target + slack {
                if !self.take_budget(thread) {
                    return jobs;
                }
                // Receive into the least-loaded color with a free frame.
                let Some(dest) = (0..colors.len())
                    .filter(|&d| d != k && self.allocator.free_in_color(colors[d]) > 0)
                    .min_by_key(|&d| buckets[d].len())
                else {
                    return jobs;
                };
                if buckets[dest].len() + 1 >= buckets[k].len() {
                    break; // no strict improvement left
                }
                let (vpn, old_frame) = buckets[k].pop().expect("bucket over target");
                let new_frame =
                    self.allocator.alloc_color(colors[dest]).expect("checked free frame");
                self.allocator.free(old_frame);
                self.tables[thread].map(vpn, new_frame);
                self.stats.migrated_pages += 1;
                self.rec.emit(dbp_obs::EventKind::PageMigration {
                    thread,
                    vpn,
                    old_frame,
                    new_frame,
                    cause: dbp_obs::MigrationCause::Rebalance,
                });
                buckets[dest].push((vpn, new_frame));
                jobs.push(MigrationJob { thread, vpn, old_frame, new_frame });
            }
        }
        jobs
    }

    /// Instantly remap every violating page of every thread into its
    /// partition, ignoring cost and budget.
    ///
    /// Used at the end of a simulation's warmup phase: measurement starts
    /// from the steady state the OS would have reached, instead of
    /// charging the transition to whichever epoch it straddles.
    ///
    /// Returns the number of pages moved.
    pub fn conform_all(&mut self) -> u64 {
        let saved_budget = self.migration_budget.take();
        let mut moved = 0;
        for thread in 0..self.tables.len() {
            let part = self.partitions[thread];
            let mut violating: Vec<(Vpn, Frame)> = self.tables[thread]
                .iter()
                .filter(|&(_, f)| !part.contains(self.allocator.color_of(f)))
                .collect();
            violating.sort_unstable();
            for (vpn, old_frame) in violating {
                if let Some(new_frame) = self.allocator.alloc(&part) {
                    self.allocator.free(old_frame);
                    self.tables[thread].map(vpn, new_frame);
                    moved += 1;
                    self.rec.emit(dbp_obs::EventKind::PageMigration {
                        thread,
                        vpn,
                        old_frame,
                        new_frame,
                        cause: dbp_obs::MigrationCause::Conform,
                    });
                } else {
                    self.stats.failed_migrations += 1;
                    self.rec.emit(dbp_obs::EventKind::MigrationFailed { thread });
                }
            }
            moved += self.rebalance_thread(thread).len() as u64;
        }
        self.migration_budget = saved_budget;
        moved
    }

    /// Count of `thread`'s resident pages that violate its partition
    /// (non-zero only in lazy mode between repartition and touch).
    pub fn violating_pages(&self, thread: ThreadId) -> usize {
        self.pages_outside(thread, &self.partitions[thread])
    }

    /// Count of `thread`'s resident pages whose frame color falls
    /// outside `colors` — the migration backlog an arbitrary
    /// (hypothetical) partition would create. Read-only: the decision
    /// audit layer uses it to cost shadow-policy plans without touching
    /// placement state.
    pub fn pages_outside(&self, thread: ThreadId, colors: &ColorSet) -> usize {
        self.tables[thread]
            .iter()
            .filter(|&(_, f)| !colors.contains(self.allocator.color_of(f)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig { rows_per_bank: 64, ..DramConfig::default() }
    }

    #[test]
    fn first_touch_allocates_in_partition() {
        let mut mm = MemoryManager::new(&cfg(), 2, MigrationMode::Lazy);
        mm.set_partition(0, ColorSet::from_iter([1u32]));
        let t = mm.translate(0, 0x1234_5678);
        assert!(t.allocated);
        let frame = t.pa >> 12;
        assert_eq!(mm.mapper().frame_color(frame), Some(1));
        // Offset preserved.
        assert_eq!(t.pa & 0xfff, 0x678);
    }

    #[test]
    fn repeat_touch_reuses_frame() {
        let mut mm = MemoryManager::new(&cfg(), 1, MigrationMode::Lazy);
        let a = mm.translate(0, 0x1000);
        let b = mm.translate(0, 0x1040);
        assert!(!b.allocated);
        assert_eq!(a.pa >> 12, b.pa >> 12);
    }

    #[test]
    fn threads_have_separate_address_spaces() {
        let mut mm = MemoryManager::new(&cfg(), 2, MigrationMode::Lazy);
        let a = mm.translate(0, 0x1000);
        let b = mm.translate(1, 0x1000);
        assert_ne!(a.pa >> 12, b.pa >> 12);
    }

    #[test]
    fn eager_repartition_moves_pages() {
        let mut mm = MemoryManager::new(&cfg(), 1, MigrationMode::Eager);
        mm.set_partition(0, ColorSet::from_iter([0u32]));
        for p in 0..8u64 {
            mm.translate(0, p << 12);
        }
        let jobs = mm.set_partition(0, ColorSet::from_iter([5u32]));
        assert_eq!(jobs.len(), 8);
        for j in &jobs {
            assert_eq!(mm.mapper().frame_color(j.new_frame), Some(5));
        }
        assert_eq!(mm.violating_pages(0), 0);
        assert_eq!(mm.stats().migrated_pages, 8);
    }

    #[test]
    fn lazy_repartition_moves_on_touch() {
        let mut mm = MemoryManager::new(&cfg(), 1, MigrationMode::Lazy);
        mm.set_partition(0, ColorSet::from_iter([0u32]));
        mm.translate(0, 0x1000);
        let jobs = mm.set_partition(0, ColorSet::from_iter([3u32]));
        assert!(jobs.is_empty());
        assert_eq!(mm.violating_pages(0), 1);
        let t = mm.translate(0, 0x1000);
        let job = t.migration.expect("touch must migrate");
        assert_eq!(mm.mapper().frame_color(job.new_frame), Some(3));
        assert_eq!(mm.violating_pages(0), 0);
        // Subsequent touches are clean.
        assert!(mm.translate(0, 0x1000).migration.is_none());
    }

    #[test]
    fn peek_is_pure_and_mirrors_translate() {
        let mut mm = MemoryManager::new(&cfg(), 1, MigrationMode::Lazy);
        mm.set_partition(0, ColorSet::from_iter([0u32]));
        // Not resident: peek refuses (translate would demand-allocate).
        assert_eq!(mm.peek(0, 0x1000), None);
        let t = mm.translate(0, 0x1000);
        let stats = *mm.stats();
        // Resident and legal: peek agrees with translate, mutating nothing.
        assert_eq!(mm.peek(0, 0x1040), Some((t.pa & !0xfff) | 0x40));
        assert_eq!(*mm.stats(), stats);
        // Violating under lazy mode: translate would migrate, so peek refuses.
        mm.set_partition(0, ColorSet::from_iter([3u32]));
        assert_eq!(mm.peek(0, 0x1000), None);
        assert_eq!(*mm.stats(), stats);
    }

    #[test]
    fn exhausted_partition_falls_back() {
        let mut mm = MemoryManager::new(&cfg(), 1, MigrationMode::Lazy);
        mm.set_partition(0, ColorSet::from_iter([0u32]));
        // 64 rows x 2 pages per row = 128 frames per color.
        for p in 0..200u64 {
            mm.translate(0, p << 12);
        }
        assert!(mm.stats().fallback_allocations > 0);
        assert_eq!(mm.resident_pages(0), 200);
    }

    #[test]
    fn budget_defers_lazy_migrations() {
        let mut mm = MemoryManager::new(&cfg(), 1, MigrationMode::Lazy);
        mm.set_partition(0, ColorSet::from_iter([0u32]));
        for p in 0..10u64 {
            mm.translate(0, p << 12);
        }
        mm.set_partition(0, ColorSet::from_iter([3u32]));
        mm.refill_migration_budget(Some(4));
        for p in 0..10u64 {
            mm.translate(0, p << 12);
        }
        assert_eq!(mm.stats().migrated_pages, 4);
        assert_eq!(mm.stats().deferred_migrations, 6);
        assert_eq!(mm.violating_pages(0), 6);
        // Refill lets the rest move.
        mm.refill_migration_budget(Some(100));
        for p in 0..10u64 {
            mm.translate(0, p << 12);
        }
        assert_eq!(mm.violating_pages(0), 0);
    }

    #[test]
    fn conform_all_moves_everything_instantly() {
        let mut mm = MemoryManager::new(&cfg(), 2, MigrationMode::Lazy);
        mm.set_partition(0, ColorSet::from_iter([0u32]));
        mm.set_partition(1, ColorSet::from_iter([1u32]));
        for p in 0..5u64 {
            mm.translate(0, p << 12);
            mm.translate(1, p << 12);
        }
        mm.set_partition(0, ColorSet::from_iter([2u32]));
        mm.set_partition(1, ColorSet::from_iter([3u32]));
        mm.refill_migration_budget(Some(0)); // conform ignores the budget
        let moved = mm.conform_all();
        assert_eq!(moved, 10);
        assert_eq!(mm.violating_pages(0), 0);
        assert_eq!(mm.violating_pages(1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one color")]
    fn empty_partition_panics() {
        let mut mm = MemoryManager::new(&cfg(), 1, MigrationMode::Lazy);
        mm.set_partition(0, ColorSet::empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use dbp_util::prop::{check, one_of, range, vec_of, BoxedGen, Config, Gen};
    use dbp_util::{prop_assert, prop_assert_eq};

    fn small_cfg() -> DramConfig {
        DramConfig { rows_per_bank: 64, ..DramConfig::default() }
    }

    /// No two (thread, page) mappings ever share a frame, across any
    /// interleaving of touches and repartitions.
    #[test]
    fn frames_are_never_aliased() {
        let script_gen = vec_of(
            one_of::<(usize, u64, bool)>(vec![
                (range(0usize..3), range(0u64..64)).map(|(t, v)| (t, v, false)).boxed()
                    as BoxedGen<(usize, u64, bool)>,
                (range(0usize..3), range(0u32..16)).map(|(t, c)| (t, u64::from(c), true)).boxed(),
            ]),
            1..80,
        );
        check(Config::cases(32), &script_gen, |script| {
            let mut mm = MemoryManager::new(&small_cfg(), 3, MigrationMode::Lazy);
            for (thread, arg, is_repartition) in script {
                if is_repartition {
                    let mut colors = ColorSet::from_iter([arg as u32]);
                    colors.insert((arg as u32 + 7) % 32);
                    mm.set_partition(thread, colors);
                } else {
                    mm.translate(thread, arg << 12);
                }
            }
            mm.conform_all();
            // Re-translate every resident page (stable now: partitions are
            // conformed) and assert every frame is globally unique.
            let mut seen = std::collections::HashSet::new();
            for t in 0..3 {
                for p in 0..64u64 {
                    let before = mm.resident_pages(t);
                    let tr = mm.translate(t, p << 12);
                    if tr.allocated {
                        // This page was not resident; undo bookkeeping is
                        // unnecessary, the fresh frame just joins the set.
                        prop_assert_eq!(mm.resident_pages(t), before + 1);
                    }
                    let frame = tr.pa >> 12;
                    prop_assert!(seen.insert((frame, ())), "frame {} aliased", frame);
                }
            }
            prop_assert_eq!(mm.stats().failed_migrations, 0);
            Ok(())
        });
    }

    /// Repartition + conform always reaches zero violations.
    #[test]
    fn conform_reaches_fixpoint() {
        let g = (vec_of((range(0usize..2), range(0u64..48)), 1..60), range(0u32..32));
        check(Config::cases(32), &g, |(touches, target_color)| {
            let mut mm = MemoryManager::new(&small_cfg(), 2, MigrationMode::Lazy);
            for (t, p) in touches {
                mm.translate(t, p << 12);
            }
            mm.set_partition(0, ColorSet::from_iter([target_color]));
            mm.set_partition(1, ColorSet::from_iter([(target_color + 1) % 32]));
            mm.refill_migration_budget(Some(3)); // budget must not block conform
            mm.conform_all();
            prop_assert_eq!(mm.violating_pages(0), 0);
            prop_assert_eq!(mm.violating_pages(1), 0);
            Ok(())
        });
    }
}
