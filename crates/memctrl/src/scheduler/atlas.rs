//! ATLAS: Adaptive per-thread Least-Attained-Service scheduling
//! (Kim, Han, Mutlu, Harchol-Balter — HPCA 2010), TCM's predecessor.
//!
//! Threads are ranked each quantum by *attained service* — the data-bus
//! time their requests consumed, exponentially decayed across quanta —
//! and the least-served thread gets the highest priority. Long-run
//! bandwidth hogs therefore sink, short bursts are served quickly. ATLAS
//! improves throughput strongly but is known to be unfair to the most
//! intensive threads (their attained service is always highest), which
//! is exactly what TCM's clustering later fixed.

use dbp_dram::Cycle;

use crate::profiler::{ProfilerState, ThreadProf};
use crate::request::MemRequest;
use crate::scheduler::{row_hit_then_age, Scheduler};

/// ATLAS tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtlasConfig {
    /// Ranking quantum, DRAM cycles (paper: 10 M CPU cycles; scaled down
    /// like TCM's).
    pub quantum: Cycle,
    /// Exponential decay applied to history at each quantum (paper: 0.875).
    pub alpha: f64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig { quantum: 50_000, alpha: 0.875 }
    }
}

/// The ATLAS scheduler state.
#[derive(Debug)]
pub struct Atlas {
    cfg: AtlasConfig,
    /// Decayed attained service per thread.
    score: Vec<f64>,
    /// Rank per thread (lower = served first).
    rank_of: Vec<u32>,
    prev: Vec<ThreadProf>,
    next_quantum: Cycle,
}

impl Atlas {
    /// Build an ATLAS scheduler for `threads` threads.
    pub fn new(cfg: AtlasConfig, threads: usize) -> Self {
        assert!(cfg.quantum > 0, "quantum must be positive");
        assert!((0.0..1.0).contains(&cfg.alpha), "alpha must be in [0,1)");
        Atlas {
            cfg,
            score: vec![0.0; threads],
            rank_of: vec![0; threads],
            prev: vec![ThreadProf::default(); threads],
            next_quantum: cfg.quantum,
        }
    }

    /// The decayed attained service of `thread`.
    pub fn attained(&self, thread: usize) -> f64 {
        self.score[thread]
    }

    /// Current rank of `thread` (lower = higher priority).
    pub fn rank(&self, thread: usize) -> u32 {
        self.rank_of[thread]
    }

    fn requantize(&mut self, prof: &ProfilerState) {
        let n = self.score.len();
        for t in 0..n {
            let cur = prof.cumulative(t);
            let delta = cur.delta(&self.prev[t]);
            self.prev[t] = cur;
            self.score[t] = self.cfg.alpha * self.score[t] + delta.bus_cycles as f64;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.score[a]
                .partial_cmp(&self.score[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for (rank, &t) in order.iter().enumerate() {
            self.rank_of[t] = rank as u32;
        }
    }
}

impl Scheduler for Atlas {
    fn name(&self) -> &'static str {
        "ATLAS"
    }

    fn tick(&mut self, now: Cycle, prof: &ProfilerState, _read_queues: &[Vec<MemRequest>]) {
        if now >= self.next_quantum {
            self.requantize(prof);
            self.next_quantum = now + self.cfg.quantum;
        }
    }

    fn prefer(&self, a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool {
        let (ra, rb) = (self.rank_of[a.thread], self.rank_of[b.thread]);
        if ra != rb {
            return ra < rb;
        }
        row_hit_then_age(a, a_hit, b, b_hit)
    }

    fn next_wake(&self, _now: Cycle, _read_queues: &[Vec<MemRequest>]) -> Option<Cycle> {
        // The quantum boundary re-anchors on the crossing tick and the
        // requantize reads time-dependent profiler state: exact wake.
        Some(self.next_quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof_with_bus(bus: &[u32]) -> ProfilerState {
        let mut p = ProfilerState::new(bus.len(), 8);
        for (t, &b) in bus.iter().enumerate() {
            for _ in 0..b {
                p.on_enqueue(t, 0, false, true);
                p.on_serviced(t, 0, false, None, 4, true);
            }
        }
        p
    }

    #[test]
    fn least_served_thread_ranks_first() {
        let prof = prof_with_bus(&[100, 3, 40]);
        let mut atlas = Atlas::new(AtlasConfig { quantum: 10, alpha: 0.875 }, 3);
        atlas.tick(10, &prof, &[]);
        assert!(atlas.rank(1) < atlas.rank(2));
        assert!(atlas.rank(2) < atlas.rank(0));
        let light = MemRequest::demand_read(0, 1, 0, 9);
        let heavy = MemRequest::demand_read(1, 0, 0, 1);
        assert!(atlas.prefer(&light, false, &heavy, true));
    }

    #[test]
    fn history_decays() {
        let mut atlas = Atlas::new(AtlasConfig { quantum: 10, alpha: 0.5 }, 2);
        // Quantum 1: thread 0 heavy.
        let p1 = prof_with_bus(&[100, 0]);
        atlas.tick(10, &p1, &[]);
        let after_one = atlas.attained(0);
        // Quantum 2: nobody does anything; the old service halves.
        atlas.tick(20, &p1, &[]);
        assert!((atlas.attained(0) - after_one * 0.5).abs() < 1e-9);
    }

    #[test]
    fn same_rank_falls_back_to_frfcfs() {
        let atlas = Atlas::new(AtlasConfig::default(), 2);
        let a = MemRequest::demand_read(0, 0, 0, 5);
        let b = MemRequest::demand_read(1, 1, 0, 1);
        // No quantum yet: all ranks 0 -> row-hit then age.
        assert!(atlas.prefer(&a, true, &b, false));
        assert!(atlas.prefer(&b, false, &a, false));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = Atlas::new(AtlasConfig { quantum: 10, alpha: 1.5 }, 2);
    }
}
