//! First-ready FCFS: the standard throughput-oriented baseline
//! (Rixner et al., ISCA 2000).

use crate::request::MemRequest;
use crate::scheduler::{row_hit_then_age, Scheduler};

/// Row hits first, then oldest.
///
/// Maximises row-buffer reuse but is application-oblivious: a streaming
/// thread's endless row hits starve a random-access thread's conflicts,
/// the unfairness DBP and TCM attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrFcfs;

impl Scheduler for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn prefer(&self, a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool {
        row_hit_then_age(a, a_hit, b, b_hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_beats_older_miss() {
        let old_miss = MemRequest::demand_read(0, 0, 0, 1);
        let young_hit = MemRequest::demand_read(1, 0, 0, 2);
        let s = FrFcfs;
        assert!(s.prefer(&young_hit, true, &old_miss, false));
        assert!(!s.prefer(&old_miss, false, &young_hit, true));
    }

    #[test]
    fn age_breaks_hit_ties() {
        let a = MemRequest::demand_read(0, 0, 0, 1);
        let b = MemRequest::demand_read(1, 0, 0, 2);
        let s = FrFcfs;
        assert!(s.prefer(&a, true, &b, true));
        assert!(s.prefer(&a, false, &b, false));
    }
}
