//! First-come first-served: the simplest (and weakest) baseline.

use crate::request::MemRequest;
use crate::scheduler::Scheduler;

/// Oldest request first, ignoring row-buffer state entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn prefer(&self, a: &MemRequest, _a_hit: bool, b: &MemRequest, _b_hit: bool) -> bool {
        a.older_than(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_row_hits() {
        let old = MemRequest::demand_read(0, 0, 0, 1);
        let young_hit = MemRequest::demand_read(1, 0, 0, 2);
        let s = Fcfs;
        assert!(s.prefer(&old, false, &young_hit, true));
    }
}
