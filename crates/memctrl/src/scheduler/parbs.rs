//! Parallelism-aware batch scheduling in the spirit of PAR-BS
//! (Mutlu & Moscibroda, ISCA 2008).
//!
//! Requests are grouped into batches: when the current batch drains, the
//! oldest `batch_cap` requests per (thread, bank) are marked. Marked
//! requests strictly outrank unmarked ones (no thread can be starved for
//! longer than a batch), and within the batch threads are ranked
//! shortest-job-first (fewest marked requests, by max-per-bank then
//! total), which preserves each thread's bank-level parallelism.

use dbp_dram::Cycle;
use dbp_obs::{FxHashMap, FxHashSet};

use crate::profiler::ProfilerState;
use crate::request::MemRequest;
use crate::scheduler::{row_hit_then_age, Scheduler};

/// PAR-BS tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParBsConfig {
    /// Requests marked per (thread, bank) when a batch forms.
    pub batch_cap: usize,
}

impl Default for ParBsConfig {
    fn default() -> Self {
        ParBsConfig { batch_cap: 5 }
    }
}

/// The PAR-BS scheduler state.
#[derive(Debug)]
pub struct ParBs {
    cfg: ParBsConfig,
    marked: FxHashSet<u64>,
    rank_of: Vec<u32>,
}

impl ParBs {
    /// Build a PAR-BS scheduler for `threads` threads.
    pub fn new(cfg: ParBsConfig, threads: usize) -> Self {
        assert!(cfg.batch_cap > 0, "batch_cap must be positive");
        ParBs { cfg, marked: FxHashSet::default(), rank_of: vec![0; threads] }
    }

    /// Whether a request is in the current batch.
    pub fn is_marked(&self, id: u64) -> bool {
        self.marked.contains(&id)
    }

    /// Number of requests still marked.
    pub fn batch_remaining(&self) -> usize {
        self.marked.len()
    }

    fn form_batch(&mut self, read_queues: &[Vec<MemRequest>]) {
        // Oldest batch_cap per (thread, bank-in-channel).
        let mut per_key: FxHashMap<(usize, u32, u32, u32), Vec<&MemRequest>> = FxHashMap::default();
        for q in read_queues {
            for r in q {
                per_key.entry((r.thread, r.channel, r.rank, r.bank)).or_default().push(r);
            }
        }
        let mut per_thread_total = vec![0u64; self.rank_of.len()];
        let mut per_thread_max = vec![0u64; self.rank_of.len()];
        for ((thread, ..), mut reqs) in per_key {
            reqs.sort_by_key(|a| (a.arrival, a.id));
            let marked = reqs.iter().take(self.cfg.batch_cap);
            let mut count = 0u64;
            for r in marked {
                self.marked.insert(r.id);
                count += 1;
            }
            per_thread_total[thread] += count;
            per_thread_max[thread] = per_thread_max[thread].max(count);
        }
        // Shortest job first: smaller max-per-bank, then smaller total.
        let mut order: Vec<usize> = (0..self.rank_of.len()).collect();
        order.sort_by_key(|&t| (per_thread_max[t], per_thread_total[t], t));
        for (rank, &t) in order.iter().enumerate() {
            self.rank_of[t] = rank as u32;
        }
    }
}

impl Scheduler for ParBs {
    fn name(&self) -> &'static str {
        "PAR-BS"
    }

    fn tick(&mut self, _now: Cycle, _prof: &ProfilerState, read_queues: &[Vec<MemRequest>]) {
        if self.marked.is_empty() && read_queues.iter().any(|q| !q.is_empty()) {
            self.form_batch(read_queues);
        }
    }

    fn prefer(&self, a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool {
        let (ma, mb) = (self.marked.contains(&a.id), self.marked.contains(&b.id));
        if ma != mb {
            return ma;
        }
        let (ra, rb) = (self.rank_of[a.thread], self.rank_of[b.thread]);
        if ma && ra != rb {
            return ra < rb;
        }
        row_hit_then_age(a, a_hit, b, b_hit)
    }

    fn next_wake(&self, now: Cycle, read_queues: &[Vec<MemRequest>]) -> Option<Cycle> {
        // Batch formation anchors on the first tick where the previous
        // batch has drained and a request is waiting, and the marks it
        // takes are a snapshot of the queues *at that tick* — a late
        // formation would mark requests that arrived in between. Force
        // the very next tick to execute whenever formation is pending;
        // that tick forms the batch, so the wake disarms itself.
        if self.marked.is_empty() && read_queues.iter().any(|q| !q.is_empty()) {
            Some(now + 1)
        } else {
            None
        }
    }

    fn on_serviced(&mut self, req: &MemRequest, _now: Cycle) {
        self.marked.remove(&req.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, thread: usize, bank: u32, arrival: Cycle) -> MemRequest {
        let mut r = MemRequest::demand_read(id, thread, 0, arrival);
        r.bank = bank;
        r
    }

    #[test]
    fn batch_marks_oldest_per_thread_bank() {
        let mut s = ParBs::new(ParBsConfig { batch_cap: 2 }, 2);
        let queues = vec![vec![
            req(0, 0, 0, 0),
            req(1, 0, 0, 1),
            req(2, 0, 0, 2), // third to same (thread,bank): unmarked
            req(3, 1, 1, 3),
        ]];
        s.tick(0, &ProfilerState::new(2, 8), &queues);
        assert!(s.is_marked(0));
        assert!(s.is_marked(1));
        assert!(!s.is_marked(2));
        assert!(s.is_marked(3));
    }

    #[test]
    fn marked_beats_unmarked() {
        let mut s = ParBs::new(ParBsConfig { batch_cap: 1 }, 2);
        let queues = vec![vec![req(0, 0, 0, 0), req(1, 0, 0, 5)]];
        s.tick(0, &ProfilerState::new(2, 8), &queues);
        let a = req(0, 0, 0, 0);
        let b = req(1, 0, 0, 5);
        assert!(s.prefer(&a, false, &b, true), "marked miss beats unmarked hit");
    }

    #[test]
    fn shortest_job_ranks_first_within_batch() {
        let mut s = ParBs::new(ParBsConfig { batch_cap: 5 }, 2);
        // Thread 0: 1 request. Thread 1: 4 requests on one bank.
        let queues = vec![vec![
            req(0, 0, 0, 0),
            req(1, 1, 1, 0),
            req(2, 1, 1, 1),
            req(3, 1, 1, 2),
            req(4, 1, 1, 3),
        ]];
        s.tick(0, &ProfilerState::new(2, 8), &queues);
        let a = req(0, 0, 0, 0);
        let b = req(1, 1, 1, 0);
        assert!(s.prefer(&a, false, &b, false));
    }

    #[test]
    fn wake_pends_only_while_formation_is_due() {
        let mut s = ParBs::new(ParBsConfig::default(), 1);
        assert_eq!(s.next_wake(10, &[vec![]]), None, "empty queues: nothing to form");
        let queues = vec![vec![req(0, 0, 0, 0)]];
        assert_eq!(s.next_wake(10, &queues), Some(11), "drained batch + queued request");
        s.tick(11, &ProfilerState::new(1, 8), &queues);
        assert_eq!(s.next_wake(11, &queues), None, "formation disarms the wake");
    }

    #[test]
    fn service_drains_batch_and_reforms() {
        let mut s = ParBs::new(ParBsConfig { batch_cap: 1 }, 1);
        let queues = vec![vec![req(0, 0, 0, 0)]];
        s.tick(0, &ProfilerState::new(1, 8), &queues);
        assert_eq!(s.batch_remaining(), 1);
        s.on_serviced(&req(0, 0, 0, 0), 1);
        assert_eq!(s.batch_remaining(), 0);
        let queues2 = vec![vec![req(5, 0, 0, 9)]];
        s.tick(2, &ProfilerState::new(1, 8), &queues2);
        assert!(s.is_marked(5));
    }
}
