//! BLISS: the Blacklisting memory scheduler (Subramanian, Lee, Seshadri,
//! Rastogi, Mutlu — ICCD 2014), a contemporary low-complexity
//! alternative to full thread ranking.
//!
//! Observation: full per-thread ranking (ATLAS/TCM) is expensive and can
//! over-penalise; most interference comes from threads whose requests are
//! served in long *streaks*. BLISS counts consecutive services per
//! thread; a thread that exceeds `blacklist_threshold` consecutive
//! requests is blacklisted for `clear_interval` cycles. Non-blacklisted
//! requests strictly outrank blacklisted ones; within a class, plain
//! FR-FCFS.

use dbp_dram::Cycle;

use crate::profiler::ProfilerState;
use crate::request::MemRequest;
use crate::scheduler::{row_hit_then_age, Scheduler};

/// BLISS tuning knobs (paper defaults: 4 consecutive requests, clearing
/// every 10 000 cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlissConfig {
    /// Consecutive services that trigger blacklisting.
    pub blacklist_threshold: u32,
    /// Blacklist clearing interval, DRAM cycles.
    pub clear_interval: Cycle,
}

impl Default for BlissConfig {
    fn default() -> Self {
        BlissConfig { blacklist_threshold: 4, clear_interval: 10_000 }
    }
}

/// The BLISS scheduler state.
#[derive(Debug)]
pub struct Bliss {
    cfg: BlissConfig,
    blacklisted: Vec<bool>,
    last_served: Option<usize>,
    streak: u32,
    next_clear: Cycle,
}

impl Bliss {
    /// Build a BLISS scheduler for `threads` threads.
    pub fn new(cfg: BlissConfig, threads: usize) -> Self {
        assert!(cfg.blacklist_threshold > 0 && cfg.clear_interval > 0);
        Bliss {
            cfg,
            blacklisted: vec![false; threads],
            last_served: None,
            streak: 0,
            next_clear: cfg.clear_interval,
        }
    }

    /// Whether `thread` is currently blacklisted.
    pub fn is_blacklisted(&self, thread: usize) -> bool {
        self.blacklisted[thread]
    }
}

impl Scheduler for Bliss {
    fn name(&self) -> &'static str {
        "BLISS"
    }

    fn tick(&mut self, now: Cycle, _prof: &ProfilerState, _read_queues: &[Vec<MemRequest>]) {
        if now >= self.next_clear {
            self.blacklisted.fill(false);
            self.next_clear = now + self.cfg.clear_interval;
        }
    }

    fn prefer(&self, a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool {
        let (ba, bb) = (self.blacklisted[a.thread], self.blacklisted[b.thread]);
        if ba != bb {
            return !ba; // the clean thread wins
        }
        row_hit_then_age(a, a_hit, b, b_hit)
    }

    fn next_wake(&self, _now: Cycle, _read_queues: &[Vec<MemRequest>]) -> Option<Cycle> {
        // `next_clear` re-anchors on whichever tick crosses it, so a late
        // tick would drift the clearing cadence: exact wake required.
        Some(self.next_clear)
    }

    fn on_serviced(&mut self, req: &MemRequest, _now: Cycle) {
        if self.last_served == Some(req.thread) {
            self.streak += 1;
            if self.streak >= self.cfg.blacklist_threshold {
                self.blacklisted[req.thread] = true;
            }
        } else {
            self.last_served = Some(req.thread);
            self.streak = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve(s: &mut Bliss, thread: usize, times: u32) {
        for i in 0..times {
            s.on_serviced(&MemRequest::demand_read(u64::from(i), thread, 0, 0), 0);
        }
    }

    #[test]
    fn streaks_get_blacklisted() {
        let mut s = Bliss::new(BlissConfig::default(), 2);
        serve(&mut s, 0, 3);
        assert!(!s.is_blacklisted(0));
        serve(&mut s, 0, 1);
        assert!(s.is_blacklisted(0));
        assert!(!s.is_blacklisted(1));
    }

    #[test]
    fn interleaved_service_never_blacklists() {
        let mut s = Bliss::new(BlissConfig::default(), 2);
        for _ in 0..20 {
            serve(&mut s, 0, 2);
            serve(&mut s, 1, 2);
        }
        assert!(!s.is_blacklisted(0));
        assert!(!s.is_blacklisted(1));
    }

    #[test]
    fn blacklisted_requests_lose() {
        let mut s = Bliss::new(BlissConfig::default(), 2);
        serve(&mut s, 0, 4);
        let hog = MemRequest::demand_read(0, 0, 0, 1); // old, row hit
        let victim = MemRequest::demand_read(1, 1, 0, 9);
        assert!(s.prefer(&victim, false, &hog, true));
    }

    #[test]
    fn clearing_restores_priority() {
        let mut s = Bliss::new(BlissConfig { blacklist_threshold: 2, clear_interval: 100 }, 2);
        serve(&mut s, 0, 2);
        assert!(s.is_blacklisted(0));
        s.tick(100, &ProfilerState::new(2, 8), &[]);
        assert!(!s.is_blacklisted(0));
    }
}
