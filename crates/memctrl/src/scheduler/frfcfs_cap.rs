//! FR-FCFS with a row-hit streak cap (Mutlu & Moscibroda's FR-FCFS+Cap
//! variant): bounds how long an open-row stream can starve conflicting
//! requests to the same bank.

use dbp_dram::Cycle;

use crate::request::MemRequest;
use crate::scheduler::{row_hit_then_age, Scheduler};

/// Maximum consecutive row hits served per bank before hits lose their
/// priority boost there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrFcfsCapConfig {
    pub cap: u32,
}

impl Default for FrFcfsCapConfig {
    fn default() -> Self {
        FrFcfsCapConfig { cap: 4 }
    }
}

/// FR-FCFS with per-bank streak capping.
#[derive(Debug)]
pub struct FrFcfsCap {
    cfg: FrFcfsCapConfig,
    /// Consecutive row hits served, per (channel, rank, bank) key.
    streaks: dbp_obs::FxHashMap<(u32, u32, u32), u32>,
    /// Decay boundaries already applied (boundary = 256-cycle mark,
    /// including cycle 0). Lets `tick` apply the exact number of decays
    /// elapsed even when the clock jumps over several boundaries.
    boundaries_seen: u64,
}

impl FrFcfsCap {
    /// Build the scheduler.
    pub fn new(cfg: FrFcfsCapConfig) -> Self {
        assert!(cfg.cap > 0, "cap must be positive");
        FrFcfsCap { cfg, streaks: dbp_obs::FxHashMap::default(), boundaries_seen: 0 }
    }

    fn capped(&self, r: &MemRequest) -> bool {
        self.streaks.get(&(r.channel, r.rank, r.bank)).is_some_and(|&s| s >= self.cfg.cap)
    }
}

impl Scheduler for FrFcfsCap {
    fn name(&self) -> &'static str {
        "FR-FCFS+Cap"
    }

    fn prefer(&self, a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool {
        // A row hit on a capped bank loses its boost (treated as a miss).
        let a_eff = a_hit && !self.capped(a);
        let b_eff = b_hit && !self.capped(b);
        row_hit_then_age(a, a_eff, b, b_eff)
    }

    fn on_serviced(&mut self, req: &MemRequest, _now: Cycle) {
        // Count services per bank; decay in tick() releases the cap when
        // the streak breaks. (Exact hit-only counting needs row state the
        // scheduler doesn't see; service counting over-approximates, which
        // only makes the cap slightly stricter.)
        let entry = self.streaks.entry((req.channel, req.rank, req.bank)).or_insert(0);
        *entry = (*entry + 1).min(self.cfg.cap * 4);
    }

    fn tick(
        &mut self,
        now: Cycle,
        _prof: &crate::profiler::ProfilerState,
        _read_queues: &[Vec<MemRequest>],
    ) {
        // Streaks decay every few hundred cycles so a bank is not capped
        // forever after a burst. Decay by the number of 256-cycle
        // boundaries crossed since the last tick, not by one: a
        // time-skipping driver may not tick every boundary, and k
        // successive `saturating_sub(1)` equal one `saturating_sub(k)`.
        let total = now / 256 + 1;
        let k = total - self.boundaries_seen;
        if k > 0 {
            self.boundaries_seen = total;
            let k = u32::try_from(k).unwrap_or(u32::MAX);
            for s in self.streaks.values_mut() {
                *s = s.saturating_sub(k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, thread: usize, bank: u32, arrival: Cycle) -> MemRequest {
        let mut r = MemRequest::demand_read(id, thread, 0, arrival);
        r.bank = bank;
        r
    }

    #[test]
    fn behaves_like_frfcfs_before_cap() {
        let s = FrFcfsCap::new(FrFcfsCapConfig::default());
        let hit = req(0, 0, 0, 9);
        let old_miss = req(1, 1, 0, 1);
        assert!(s.prefer(&hit, true, &old_miss, false));
    }

    #[test]
    fn capped_bank_loses_hit_priority() {
        let mut s = FrFcfsCap::new(FrFcfsCapConfig { cap: 2 });
        for i in 0..2 {
            s.on_serviced(&req(i, 0, 0, 0), 0);
        }
        let hit_on_capped = req(2, 0, 0, 9);
        let old_miss = req(3, 1, 0, 1);
        assert!(
            s.prefer(&old_miss, false, &hit_on_capped, true),
            "age wins once the streak is capped"
        );
        // Another bank is unaffected.
        let hit_other_bank = req(4, 0, 1, 9);
        assert!(s.prefer(&hit_other_bank, true, &old_miss, false));
    }

    #[test]
    fn decay_is_delta_exact_across_jumps() {
        // One tick landing after several skipped boundaries must decay
        // exactly as much as ticking every cycle would have.
        let prof = crate::profiler::ProfilerState::new(1, 8);
        let mut stepped = FrFcfsCap::new(FrFcfsCapConfig { cap: 2 });
        let mut skipped = FrFcfsCap::new(FrFcfsCapConfig { cap: 2 });
        for s in [&mut stepped, &mut skipped] {
            s.tick(0, &prof, &[]);
            for i in 0..6 {
                s.on_serviced(&req(i, 0, 0, 1), 1);
            }
        }
        for now in 1..=700u64 {
            stepped.tick(now, &prof, &[]);
        }
        skipped.tick(700, &prof, &[]);
        assert_eq!(stepped.streaks, skipped.streaks);
    }

    #[test]
    fn streaks_decay_over_time() {
        let mut s = FrFcfsCap::new(FrFcfsCapConfig { cap: 2 });
        for i in 0..2 {
            s.on_serviced(&req(i, 0, 0, 0), 0);
        }
        assert!(s.capped(&req(9, 0, 0, 0)));
        let prof = crate::profiler::ProfilerState::new(1, 8);
        for now in [256u64, 512] {
            s.tick(now, &prof, &[]);
        }
        assert!(!s.capped(&req(9, 0, 0, 0)));
    }
}
