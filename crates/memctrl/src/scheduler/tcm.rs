//! Thread Cluster Memory scheduling (Kim, Papamichael, Mutlu,
//! Harchol-Balter — MICRO 2010), the scheduler the paper composes DBP
//! with (DBP-TCM).
//!
//! Every quantum, threads are split into a **latency-sensitive** cluster
//! (the least memory-intensive threads, up to a bandwidth-share threshold)
//! and a **bandwidth-sensitive** cluster (everyone else):
//!
//! - Latency-sensitive threads are strictly prioritised and ranked by
//!   ascending intensity — they barely use memory, so serving them first
//!   costs the intensive threads almost nothing and helps system
//!   throughput enormously.
//! - Bandwidth-sensitive threads are ranked by **niceness** (high
//!   bank-level parallelism and low row-buffer locality = nice, i.e. such
//!   a thread suffers most from interference and causes least) and the
//!   ranking is **shuffled** periodically so no intensive thread is stuck
//!   at the bottom — this is what gives TCM its fairness.
//!
//! The shuffle implemented here is the rotating variant of the paper's
//! insertion shuffle: every `shuffle_interval` the priority order of the
//! bandwidth cluster rotates by one position, giving each thread equal
//! time at each rank while changing only adjacent positions per step.

use dbp_dram::Cycle;

use crate::profiler::{ProfilerState, ThreadProf};
use crate::request::MemRequest;
use crate::scheduler::{row_hit_then_age, Scheduler};

/// TCM tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcmConfig {
    /// Clustering quantum in DRAM cycles (paper: 1 M CPU cycles).
    pub quantum: Cycle,
    /// Shuffle interval in DRAM cycles (paper: 800).
    pub shuffle_interval: Cycle,
    /// Fraction of total bandwidth usage that may sit in the
    /// latency-sensitive cluster (paper sweeps 2/24 .. 6/24; 4/24 works
    /// well).
    pub cluster_thresh: f64,
}

impl Default for TcmConfig {
    fn default() -> Self {
        TcmConfig {
            // The paper's TCM quantum is 1 M CPU cycles on runs of
            // hundreds of millions of instructions; this reproduction runs
            // a few million instructions per thread, so the quantum is
            // scaled down proportionally to keep several re-clusterings
            // per run.
            quantum: 50_000,
            shuffle_interval: 800,
            cluster_thresh: 4.0 / 24.0,
        }
    }
}

/// The TCM scheduler state.
#[derive(Debug)]
pub struct Tcm {
    cfg: TcmConfig,
    /// Priority rank per thread; lower is served first.
    rank_of: Vec<u32>,
    latency_cluster: Vec<bool>,
    /// Bandwidth-cluster threads in current priority order (front = best).
    bw_order: Vec<usize>,
    /// Cumulative-counter snapshot at the last quantum boundary.
    prev: Vec<ThreadProf>,
    next_quantum: Cycle,
    next_shuffle: Cycle,
    rec: dbp_obs::Recorder,
}

impl Tcm {
    /// Build a TCM scheduler for `threads` threads.
    ///
    /// Until the first quantum completes there is no profile to cluster
    /// on, so all threads start at equal rank (pure FR-FCFS behaviour).
    pub fn new(cfg: TcmConfig, threads: usize) -> Self {
        assert!(cfg.quantum > 0 && cfg.shuffle_interval > 0);
        Tcm {
            cfg,
            rank_of: vec![0; threads],
            latency_cluster: vec![true; threads],
            bw_order: Vec::new(),
            prev: vec![ThreadProf::default(); threads],
            next_quantum: cfg.quantum,
            next_shuffle: cfg.shuffle_interval,
            rec: dbp_obs::Recorder::disabled(),
        }
    }

    /// Whether `thread` is currently in the latency-sensitive cluster.
    pub fn in_latency_cluster(&self, thread: usize) -> bool {
        self.latency_cluster[thread]
    }

    /// Current rank of `thread` (lower = higher priority).
    pub fn rank(&self, thread: usize) -> u32 {
        self.rank_of[thread]
    }

    fn requantize(&mut self, prof: &ProfilerState) {
        let n = self.rank_of.len();
        let window: Vec<ThreadProf> = (0..n)
            .map(|t| {
                let cur = prof.cumulative(t);
                let d = cur.delta(&self.prev[t]);
                self.prev[t] = cur;
                d
            })
            .collect();
        // Intensity: MPKI when instruction counts are available, else raw
        // read counts (proportional under equal-length quanta).
        let intensity = |t: usize| {
            let w = &window[t];
            if w.instructions > 0 {
                w.mpki()
            } else {
                w.reads as f64
            }
        };
        let total_bw: u64 = window.iter().map(|w| w.bus_cycles).sum();
        let mut by_intensity: Vec<usize> = (0..n).collect();
        by_intensity.sort_by(|&a, &b| {
            intensity(a)
                .partial_cmp(&intensity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        // Latency-sensitive cluster: least intensive threads whose summed
        // bandwidth stays below the threshold.
        let budget = self.cfg.cluster_thresh * total_bw as f64;
        let mut used = 0u64;
        self.latency_cluster = vec![false; n];
        let mut ls: Vec<usize> = Vec::new();
        let mut bw: Vec<usize> = Vec::new();
        for &t in &by_intensity {
            if (used + window[t].bus_cycles) as f64 <= budget || window[t].bus_cycles == 0 {
                used += window[t].bus_cycles;
                self.latency_cluster[t] = true;
                ls.push(t);
            } else {
                bw.push(t);
            }
        }
        // Niceness for the bandwidth cluster: blp_rank - rbl_rank.
        let mut blp_sorted = bw.clone();
        blp_sorted.sort_by(|&a, &b| {
            window[a]
                .blp()
                .partial_cmp(&window[b].blp())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut rbl_sorted = bw.clone();
        rbl_sorted.sort_by(|&a, &b| {
            window[a]
                .rbl()
                .partial_cmp(&window[b].rbl())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut niceness = vec![0i64; n];
        for (r, &t) in blp_sorted.iter().enumerate() {
            niceness[t] += r as i64;
        }
        for (r, &t) in rbl_sorted.iter().enumerate() {
            niceness[t] -= r as i64;
        }
        // Nicest first.
        bw.sort_by_key(|&t| (std::cmp::Reverse(niceness[t]), t));
        self.bw_order = bw;
        self.rebuild_ranks(&ls);
        if self.rec.is_enabled() {
            self.rec.emit(dbp_obs::EventKind::TcmCluster {
                latency: ls,
                bandwidth: self.bw_order.clone(),
            });
        }
    }

    fn rebuild_ranks(&mut self, ls: &[usize]) {
        // Latency cluster keeps ranks 0..k (by ascending intensity order
        // as passed in); bandwidth cluster follows in bw_order.
        let mut rank = 0u32;
        for &t in ls {
            self.rank_of[t] = rank;
            rank += 1;
        }
        for &t in &self.bw_order {
            self.rank_of[t] = rank;
            rank += 1;
        }
    }

    fn shuffle(&mut self) {
        if self.bw_order.len() > 1 {
            let head = self.bw_order.remove(0);
            self.bw_order.push(head);
            // Latency-cluster ranks are unchanged; recompute bw ranks.
            let base = (self.rank_of.len() - self.bw_order.len()) as u32;
            for (i, &t) in self.bw_order.iter().enumerate() {
                self.rank_of[t] = base + i as u32;
            }
            if self.rec.is_enabled() {
                self.rec.emit(dbp_obs::EventKind::TcmShuffle { order: self.bw_order.clone() });
            }
        }
    }
}

impl Scheduler for Tcm {
    fn name(&self) -> &'static str {
        "TCM"
    }

    fn attach_recorder(&mut self, rec: dbp_obs::Recorder) {
        self.rec = rec;
    }

    fn tick(&mut self, now: Cycle, prof: &ProfilerState, _read_queues: &[Vec<MemRequest>]) {
        if now >= self.next_quantum {
            self.requantize(prof);
            self.next_quantum = now + self.cfg.quantum;
        }
        if now >= self.next_shuffle {
            self.shuffle();
            self.next_shuffle = now + self.cfg.shuffle_interval;
        }
    }

    fn prefer(&self, a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool {
        let (ra, rb) = (self.rank_of[a.thread], self.rank_of[b.thread]);
        if ra != rb {
            return ra < rb;
        }
        row_hit_then_age(a, a_hit, b, b_hit)
    }

    fn next_wake(&self, _now: Cycle, _read_queues: &[Vec<MemRequest>]) -> Option<Cycle> {
        // Quantum and shuffle boundaries anchor on the tick that crosses
        // them (`next_* = now + interval`) and the requantize snapshot
        // reads time-dependent profiler state, so the driver must tick at
        // exactly these cycles.
        Some(self.next_quantum.min(self.next_shuffle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prof_with(
        reads: &[u64],
        bus: &[u64],
        blp: &[f64],
        rbl_hits: &[(u64, u64)],
    ) -> ProfilerState {
        let n = reads.len();
        let mut p = ProfilerState::new(n, 16);
        for t in 0..n {
            for _ in 0..reads[t] {
                p.on_enqueue(t, t % 16, false, true);
            }
            // Drain them as serviced to move counters; fake bus usage.
            for i in 0..reads[t] {
                let outcome = if i < rbl_hits[t].0 {
                    Some(crate::profiler::RowOutcome::Hit)
                } else if i < rbl_hits[t].0 + rbl_hits[t].1 {
                    Some(crate::profiler::RowOutcome::Conflict)
                } else {
                    None
                };
                p.on_serviced(t, t % 16, false, outcome, 4, true);
            }
            // Manual bus + blp injection via public API is indirect; use
            // instructions to steer intensity instead.
            p.add_instructions(t, 1000);
            let _ = (bus, blp);
        }
        p
    }

    #[test]
    fn low_intensity_threads_get_priority() {
        // Thread 0: 2 reads (low MPKI). Thread 1: 200 reads (high MPKI).
        let prof = prof_with(&[2, 200], &[0, 0], &[0.0, 0.0], &[(0, 0), (0, 0)]);
        let mut tcm =
            Tcm::new(TcmConfig { quantum: 10, shuffle_interval: 1000, ..Default::default() }, 2);
        tcm.tick(10, &prof, &[]);
        assert!(tcm.in_latency_cluster(0));
        assert!(tcm.rank(0) < tcm.rank(1));
        let a = MemRequest::demand_read(0, 0, 0, 100); // thread 0, young
        let b = MemRequest::demand_read(1, 1, 0, 1); // thread 1, old row hit
        assert!(tcm.prefer(&a, false, &b, true), "cluster outranks row hits");
    }

    #[test]
    fn shuffle_rotates_bw_cluster() {
        let prof = prof_with(&[500, 500, 500], &[0, 0, 0], &[0.0; 3], &[(0, 0), (0, 0), (0, 0)]);
        let mut tcm =
            Tcm::new(TcmConfig { quantum: 10, shuffle_interval: 5, cluster_thresh: 0.0 }, 3);
        tcm.tick(10, &prof, &[]);
        let before: Vec<u32> = (0..3).map(|t| tcm.rank(t)).collect();
        tcm.tick(15, &prof, &[]);
        let after: Vec<u32> = (0..3).map(|t| tcm.rank(t)).collect();
        assert_ne!(before, after, "shuffle must change the order");
        // Every thread still has a unique rank.
        let mut sorted = after.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn ranks_are_always_a_permutation() {
        let prof = prof_with(&[5, 100, 40, 7], &[0; 4], &[0.0; 4], &[(0, 0); 4]);
        let mut tcm =
            Tcm::new(TcmConfig { quantum: 10, shuffle_interval: 3, ..Default::default() }, 4);
        for now in (10..200).step_by(3) {
            tcm.tick(now, &prof, &[]);
            let mut ranks: Vec<u32> = (0..4).map(|t| tcm.rank(t)).collect();
            ranks.sort_unstable();
            assert_eq!(ranks, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn same_thread_falls_back_to_row_hit() {
        let tcm = Tcm::new(TcmConfig::default(), 2);
        let a = MemRequest::demand_read(0, 0, 0, 5);
        let b = MemRequest::demand_read(1, 0, 0, 1);
        assert!(tcm.prefer(&a, true, &b, false));
    }
}
