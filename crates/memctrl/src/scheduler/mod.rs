//! Pluggable memory-request schedulers.
//!
//! A scheduler imposes a strict preference order on the read queue each
//! cycle; the controller issues the most-preferred request whose next
//! command is legal. Write scheduling is handled by the controller itself
//! (FR-FCFS within the write queue during drains), matching how scheduling
//! proposals in the literature — including TCM — define their policies
//! over demand reads.

mod atlas;
mod bliss;
mod fcfs;
mod frfcfs;
mod frfcfs_cap;
mod parbs;
mod tcm;

pub use atlas::{Atlas, AtlasConfig};
pub use bliss::{Bliss, BlissConfig};
pub use fcfs::Fcfs;
pub use frfcfs::FrFcfs;
pub use frfcfs_cap::{FrFcfsCap, FrFcfsCapConfig};
pub use parbs::{ParBs, ParBsConfig};
pub use tcm::{Tcm, TcmConfig};

use dbp_dram::Cycle;

use crate::profiler::ProfilerState;
use crate::request::MemRequest;

/// A read-request scheduling policy.
pub trait Scheduler: std::fmt::Debug {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;

    /// Hand the scheduler a telemetry recorder to emit decision events
    /// into (TCM clusterings and shuffles). Schedulers without dynamic
    /// state ignore it, which is the default.
    fn attach_recorder(&mut self, _rec: dbp_obs::Recorder) {}

    /// Per-cycle bookkeeping (quantum boundaries, shuffles, batch
    /// formation). `read_queues` exposes the per-channel read queues.
    fn tick(&mut self, _now: Cycle, _prof: &ProfilerState, _read_queues: &[Vec<MemRequest>]) {}

    /// Whether `a` should be served before `b`. Must be a strict weak
    /// ordering; ties must be broken deterministically (use
    /// [`MemRequest::older_than`] last).
    fn prefer(&self, a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool;

    /// Notification: a request entered a read queue.
    fn on_enqueue(&mut self, _req: &MemRequest) {}

    /// Notification: a read's column command issued.
    fn on_serviced(&mut self, _req: &MemRequest, _now: Cycle) {}

    /// The next cycle at which this scheduler's `tick` must run for
    /// bit-exactness — because it re-reads external state (profiler
    /// snapshots, wall-clock anchors) or snapshots queue contents into
    /// persistent state (PAR-BS batch marks). `read_queues` is the same
    /// per-channel view `tick` receives, so a wake may be conditioned on
    /// queue occupancy. Schedulers whose tick is a pure catch-up over
    /// elapsed time (k skipped decays equal one decay-by-k) may return
    /// `None`: their catch-up is lazy and order-insensitive.
    fn next_wake(&self, _now: Cycle, _read_queues: &[Vec<MemRequest>]) -> Option<Cycle> {
        None
    }
}

/// Shared tie-break: row hits first, then age. Every scheduler bottoms
/// out here so orderings stay total and deterministic.
pub(crate) fn row_hit_then_age(a: &MemRequest, a_hit: bool, b: &MemRequest, b_hit: bool) -> bool {
    match (a_hit, b_hit) {
        (true, false) => true,
        (false, true) => false,
        _ => a.older_than(b),
    }
}
