//! Per-cycle latency attribution: decomposes each demand read's queueing
//! delay into additive components and charges interference cycles to the
//! core holding the contended resource.
//!
//! The controller calls [`Anatomy::attribute_cycle`] once per DRAM cycle
//! (only when telemetry is enabled — a disabled anatomy is a single
//! branch, like the rest of the recorder plumbing). For every *queued*
//! demand read the classifier decides what, this cycle, kept its next
//! command from issuing, with a fixed precedence:
//!
//! 1. its own ACT/PRE issued — intrinsic service or bank-busy;
//! 2. an older request is queued on the same bank — queue wait, charged
//!    to that request's core;
//! 3. someone else's command issued on its bank (or a refresh on its
//!    rank) — queue wait or bank-busy;
//! 4. it heads its bank queue: ask the device ([`Dram::column_gate`] /
//!    [`Dram::timing_ready`]) whether the bank, the bus, or only
//!    command-slot arbitration is in the way.
//!
//! Because a request's column issue removes it from the queue *before*
//! attribution runs, a request can accrue at most one wait-cycle per
//! cycle it spends queued, strictly fewer than its total latency (which
//! also spans CAS + burst). The remainder is the intrinsic component,
//! and the five components sum exactly to `ready_at - arrival` — an
//! invariant asserted in every build profile when the read's column
//! command issues.
//!
//! Interference matrices follow the Blacklisting observation that the
//! request that matters is each core's *oldest* outstanding read: only
//! that request charges blocked cycles to the core holding its bank
//! ([`LatencyReport::bank_interference`]) or the bus
//! (`bus_interference`). With thread-private bank partitions no other
//! core can hold your bank, so the cross-core bank matrix provably
//! zeroes while bus contention stays visible.

use dbp_dram::{ColumnGate, Command, CommandKind, Cycle, Dram, Loc};
use dbp_obs::latency::{LatencyReport, BANK_BUSY, BUS, INTRINSIC, QUEUE_OTHER, QUEUE_SAME};
use dbp_obs::FxHashMap;

use crate::request::{MemRequest, TrafficKind};
use crate::ThreadId;

/// What the controller issued on one channel this cycle, as seen by the
/// attribution pass.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IssuedCmd {
    pub rank: u32,
    /// `None` for a rank-wide refresh.
    pub bank: Option<u32>,
    /// Owning core; `None` for refresh-driven commands.
    pub thread: Option<ThreadId>,
    /// Request id; `None` for refresh-driven commands.
    pub id: Option<u64>,
    pub kind: IssuedKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IssuedKind {
    Activate,
    Precharge,
    /// A read or write column command.
    Column,
    Refresh,
}

impl IssuedKind {
    pub(crate) fn of(kind: CommandKind) -> IssuedKind {
        match kind {
            CommandKind::Activate => IssuedKind::Activate,
            CommandKind::Precharge => IssuedKind::Precharge,
            CommandKind::Read | CommandKind::Write => IssuedKind::Column,
            CommandKind::RefreshRank => IssuedKind::Refresh,
        }
    }
}

/// Why a queued demand read did not advance this cycle.
enum Cause {
    /// Nothing to charge: its own service is in progress.
    Intrinsic,
    /// Waiting behind another queued/issued request owned by `by`.
    /// `bus` marks losses of channel arbitration (vs. bank ordering),
    /// which routes the interference charge to the bus matrix.
    Queue { by: ThreadId, bus: bool },
    /// The bank is unusable (conflict precharge, tRP/tRRD/tFAW tails,
    /// refresh); `by` is the core responsible, if attributable.
    BankBusy { by: Option<ThreadId> },
    /// Only bus-level spacing blocks it.
    Bus { by: Option<ThreadId> },
}

/// The attribution engine. Construct via `Default` (disabled) and call
/// [`Anatomy::enable`] when a live recorder is attached.
#[derive(Debug, Default)]
pub struct Anatomy {
    enabled: bool,
    /// Wait-cycle accumulators per in-flight demand read id:
    /// `[queue_same, queue_other, bank_busy, bus]`.
    waits: FxHashMap<u64, [u64; 4]>,
    /// Core whose column command most recently used each channel's bus.
    bus_owner: Vec<Option<ThreadId>>,
    /// Core that activated the current/most recent row per global bank
    /// (kept across precharge so tRP tails attribute to the old owner).
    row_owner: Vec<Option<ThreadId>>,
    report: LatencyReport,
    // Per-cycle scratch, reused to avoid allocation in the hot loop.
    bank_head: Vec<Option<(Cycle, u64, ThreadId)>>,
    oldest: Vec<Option<(Cycle, u64)>>,
}

impl Anatomy {
    /// Turn the engine on, sized for the machine geometry.
    pub fn enable(&mut self, threads: usize, total_banks: usize, channels: usize) {
        self.enabled = true;
        self.bus_owner = vec![None; channels];
        self.row_owner = vec![None; total_banks];
        self.bank_head = vec![None; total_banks];
        self.oldest = vec![None; threads];
        self.report = LatencyReport::new(threads, total_banks);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The accumulated report (valid while enabled).
    pub fn report(&self) -> &LatencyReport {
        &self.report
    }

    /// Clear the measured report at a measurement-window boundary. The
    /// per-request wait accumulators survive so reads spanning the
    /// boundary still satisfy the sum invariant when they complete.
    pub fn reset_window(&mut self) {
        let (threads, banks) = (self.oldest.len(), self.row_owner.len());
        self.report = LatencyReport::new(threads, banks);
    }

    /// Start tracking a newly enqueued demand read.
    pub fn on_enqueue_read(&mut self, id: u64) {
        if self.enabled {
            self.waits.insert(id, [0; 4]);
        }
    }

    /// Note a row activation on `gbank` by `thread`.
    pub fn note_activate(&mut self, gbank: usize, thread: ThreadId) {
        if self.enabled {
            self.row_owner[gbank] = Some(thread);
        }
    }

    /// Note a column command by `thread` occupying `channel`'s bus.
    pub fn note_column(&mut self, channel: usize, thread: ThreadId) {
        if self.enabled {
            self.bus_owner[channel] = Some(thread);
        }
    }

    /// A demand read's column command issued: close its breakdown.
    ///
    /// # Panics
    ///
    /// Panics in every build profile if the accumulated wait cycles
    /// exceed the total latency — the breakdown must partition it.
    pub fn on_read_issued(&mut self, id: u64, thread: ThreadId, gbank: usize, total: u64) {
        if !self.enabled {
            return;
        }
        let w = self.waits.remove(&id).unwrap_or([0; 4]);
        let waited: u64 = w.iter().sum();
        assert!(waited <= total, "read {id}: waited {waited} cycles but total latency is {total}");
        let mut components = [0u64; 5];
        components[QUEUE_SAME] = w[0];
        components[QUEUE_OTHER] = w[1];
        components[BANK_BUSY] = w[2];
        components[BUS] = w[3];
        components[INTRINSIC] = total - waited;
        self.report.record_read(thread, gbank, total, components);
    }

    /// A writeback's column command issued: record its latency.
    pub fn on_write_issued(&mut self, thread: ThreadId, total: u64) {
        if self.enabled {
            self.report.record_write(thread, total);
        }
    }

    /// Charge one stall cycle to each queued demand read (and, for each
    /// core's oldest read, to the interfering core's matrix entry).
    /// `issued` is what each channel issued this cycle, if anything.
    pub(crate) fn attribute_cycle(
        &mut self,
        now: Cycle,
        dram: &Dram,
        read_q: &[Vec<MemRequest>],
        issued: &[Option<IssuedCmd>],
        closed_page: bool,
    ) {
        let cfg = dram.cfg();
        let (rpc, bpr) = (cfg.ranks_per_channel, cfg.banks_per_rank);
        let gbank_of = |r: &MemRequest| (((r.channel * rpc) + r.rank) * bpr + r.bank) as usize;
        // Pass 1: the oldest queued request per bank (the blocker a
        // younger same-bank request waits behind) and the oldest queued
        // demand read per core (the interference-matrix subject).
        for slot in &mut self.bank_head {
            *slot = None;
        }
        for slot in &mut self.oldest {
            *slot = None;
        }
        for q in read_q {
            for r in q {
                let g = gbank_of(r);
                let key = (r.arrival, r.id);
                if self.bank_head[g].is_none_or(|(a, i, _)| key < (a, i)) {
                    self.bank_head[g] = Some((r.arrival, r.id, r.thread));
                }
                if r.kind == TrafficKind::Demand && self.oldest[r.thread].is_none_or(|o| key < o) {
                    self.oldest[r.thread] = Some(key);
                }
            }
        }
        // Pass 2: classify each queued demand read's stall this cycle.
        for (chi, q) in read_q.iter().enumerate() {
            let ch_issued = issued.get(chi).copied().flatten();
            for r in q {
                if r.kind != TrafficKind::Demand {
                    continue;
                }
                let g = gbank_of(r);
                let cause = self.classify(now, dram, r, g, ch_issued, closed_page);
                let (component, charge) = match cause {
                    Cause::Intrinsic => (None, None),
                    Cause::Queue { by, bus } => {
                        let c = if by == r.thread { 0 } else { 1 };
                        (Some(c), Some((bus, by)))
                    }
                    Cause::BankBusy { by } => (Some(2), by.map(|j| (false, j))),
                    Cause::Bus { by } => (Some(3), by.map(|j| (true, j))),
                };
                if let Some(c) = component {
                    if let Some(w) = self.waits.get_mut(&r.id) {
                        w[c] += 1;
                    }
                }
                if self.oldest[r.thread] == Some((r.arrival, r.id)) {
                    if let Some((bus, holder)) = charge {
                        if bus {
                            self.report.bus_interference.add(r.thread, holder, 1);
                        } else {
                            self.report.bank_interference.add(r.thread, holder, 1);
                        }
                    }
                }
            }
        }
    }

    /// Bulk-equivalent of `count` consecutive [`Anatomy::attribute_cycle`]
    /// calls over `[from, from + count)` in which **nothing issued** on
    /// any channel and the queues did not change.
    ///
    /// Under those preconditions the per-cycle classification is
    /// piecewise-constant with at most one transition per request: a
    /// request behind an older same-bank request (or facing a foreign
    /// open row) keeps the same cause all window, while a bank-gated
    /// request (tRCD tail, refresh recovery, or a closed bank's ACT
    /// spacing) switches to a pure bus/arbitration wait the cycle the
    /// bank-side constraint clears — a boundary the device reports in
    /// one query ([`Dram::read_bank_ready`] / [`Dram::earliest_issue`]).
    pub(crate) fn attribute_span(
        &mut self,
        from: Cycle,
        count: Cycle,
        dram: &Dram,
        read_q: &[Vec<MemRequest>],
    ) {
        if count == 0 {
            return;
        }
        let cfg = dram.cfg();
        let (rpc, bpr) = (cfg.ranks_per_channel, cfg.banks_per_rank);
        let gbank_of = |r: &MemRequest| (((r.channel * rpc) + r.rank) * bpr + r.bank) as usize;
        for slot in &mut self.bank_head {
            *slot = None;
        }
        for slot in &mut self.oldest {
            *slot = None;
        }
        for q in read_q {
            for r in q {
                let g = gbank_of(r);
                let key = (r.arrival, r.id);
                if self.bank_head[g].is_none_or(|(a, i, _)| key < (a, i)) {
                    self.bank_head[g] = Some((r.arrival, r.id, r.thread));
                }
                if r.kind == TrafficKind::Demand && self.oldest[r.thread].is_none_or(|o| key < o) {
                    self.oldest[r.thread] = Some(key);
                }
            }
        }
        let end = from + count;
        for q in read_q {
            for r in q {
                if r.kind != TrafficKind::Demand {
                    continue;
                }
                let g = gbank_of(r);
                // First-segment cause and the cycle (if any) at which it
                // switches to a bus/arbitration wait. Mirrors `classify`
                // with `ch_issued = None` on every cycle of the window.
                let behind_older =
                    self.bank_head[g].is_some_and(|(a, i, _)| (a, i) < (r.arrival, r.id));
                let loc = Loc::new(r.channel, r.rank, r.bank);
                let (first, switch_at) = if behind_older {
                    let (_, _, t) = self.bank_head[g].unwrap();
                    (Cause::Queue { by: t, bus: false }, None)
                } else {
                    match dram.open_row(loc) {
                        Some(row) if row == r.row => {
                            let gate_clears =
                                dram.read_bank_ready(loc).expect("open row must report a gate");
                            let bank_cause = if self.row_owner[g] == Some(r.thread) {
                                Cause::Intrinsic
                            } else {
                                Cause::BankBusy { by: self.row_owner[g] }
                            };
                            (bank_cause, Some(gate_clears))
                        }
                        Some(_) => (Cause::BankBusy { by: self.row_owner[g] }, None),
                        None => {
                            let act = Command::Activate { loc, row: r.row };
                            // No command issued since `from - 1`, so the
                            // channel's same-cycle adjustment can't apply:
                            // this is exactly when `timing_ready` flips.
                            let act_ready = dram
                                .earliest_issue(&act, from)
                                .expect("closed bank accepts an activate");
                            (Cause::BankBusy { by: self.row_owner[g] }, Some(act_ready))
                        }
                    }
                };
                let len1 = switch_at.map_or(count, |b| b.clamp(from, end) - from);
                let bus_after = Cause::Bus { by: self.bus_owner[r.channel as usize] };
                for (len, cause) in [(len1, first), (count - len1, bus_after)] {
                    if len == 0 {
                        continue;
                    }
                    let (component, charge) = match cause {
                        Cause::Intrinsic => (None, None),
                        Cause::Queue { by, bus } => {
                            let c = if by == r.thread { 0 } else { 1 };
                            (Some(c), Some((bus, by)))
                        }
                        Cause::BankBusy { by } => (Some(2), by.map(|j| (false, j))),
                        Cause::Bus { by } => (Some(3), by.map(|j| (true, j))),
                    };
                    if let Some(c) = component {
                        if let Some(w) = self.waits.get_mut(&r.id) {
                            w[c] += len;
                        }
                    }
                    if self.oldest[r.thread] == Some((r.arrival, r.id)) {
                        if let Some((bus, holder)) = charge {
                            if bus {
                                self.report.bus_interference.add(r.thread, holder, len);
                            } else {
                                self.report.bank_interference.add(r.thread, holder, len);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Decide what kept `r` from advancing this cycle (precedence in the
    /// module docs).
    fn classify(
        &self,
        now: Cycle,
        dram: &Dram,
        r: &MemRequest,
        gbank: usize,
        ch_issued: Option<IssuedCmd>,
        closed_page: bool,
    ) -> Cause {
        // 1. Our own ACT/PRE issued: service in progress (a PRE for a row
        // conflict still counts against the bank's previous owner).
        if let Some(ic) = ch_issued {
            if ic.id == Some(r.id) {
                return match ic.kind {
                    IssuedKind::Precharge => Cause::BankBusy { by: self.row_owner[gbank] },
                    _ => Cause::Intrinsic,
                };
            }
        }
        // 2. An older request queued on the same bank goes first.
        if let Some((a, i, t)) = self.bank_head[gbank] {
            if (a, i) < (r.arrival, r.id) {
                return Cause::Queue { by: t, bus: false };
            }
        }
        // 3. Someone else's command landed on our bank (e.g. a draining
        // write, or a younger row-hit read preferred by FR-FCFS), or a
        // refresh took our rank.
        if let Some(ic) = ch_issued {
            if ic.rank == r.rank {
                if ic.kind == IssuedKind::Refresh {
                    return Cause::BankBusy { by: None };
                }
                if ic.bank == Some(r.bank) {
                    return match ic.thread {
                        Some(j) => Cause::Queue { by: j, bus: false },
                        // Refresh-preparation precharge.
                        None => Cause::BankBusy { by: None },
                    };
                }
            }
        }
        // 4. We head our bank's queue: ask the device what gates us.
        let loc = Loc::new(r.channel, r.rank, r.bank);
        match dram.open_row(loc) {
            Some(row) if row == r.row => {
                let rd = Command::Read { loc, column: r.column, auto_pre: closed_page };
                match dram.column_gate(&rd, now) {
                    Some(ColumnGate::Bank) => {
                        // tRCD after our own activate is intrinsic service.
                        if self.row_owner[gbank] == Some(r.thread) {
                            Cause::Intrinsic
                        } else {
                            Cause::BankBusy { by: self.row_owner[gbank] }
                        }
                    }
                    Some(ColumnGate::Bus) => Cause::Bus { by: self.bus_owner[r.channel as usize] },
                    Some(ColumnGate::Ready) | None => self.arbitration_loss(r, ch_issued),
                }
            }
            // Another row is open: conflict, blamed on whoever opened it
            // (the diagonal is allowed — own-thread conflicts count too,
            // but only off-diagonals are cross-core interference).
            Some(_) => Cause::BankBusy { by: self.row_owner[gbank] },
            None => {
                let act = Command::Activate { loc, row: r.row };
                if dram.timing_ready(&act, now) {
                    self.arbitration_loss(r, ch_issued)
                } else {
                    // tRP tail, tRRD/tFAW spacing, or refresh window.
                    Cause::BankBusy { by: self.row_owner[gbank] }
                }
            }
        }
    }

    /// The device was ready but the command slot went elsewhere (or the
    /// controller was draining writes).
    fn arbitration_loss(&self, r: &MemRequest, ch_issued: Option<IssuedCmd>) -> Cause {
        match ch_issued {
            Some(IssuedCmd { thread: Some(j), .. }) => Cause::Queue { by: j, bus: true },
            // A refresh-driven command won the slot.
            Some(_) => Cause::BankBusy { by: None },
            // Nothing issued at all (e.g. a write drain with no issuable
            // write): the channel slot was effectively held by whoever
            // last used the bus.
            None => Cause::Bus { by: self.bus_owner[r.channel as usize] },
        }
    }
}
