//! DRAM memory controller with pluggable request schedulers.
//!
//! The controller owns the per-channel read and write queues, the refresh
//! machinery, and the per-thread profiling counters that both the TCM
//! scheduler and the Dynamic Bank Partitioning policy consume (memory
//! intensity, row-buffer locality, bank-level parallelism).
//!
//! Scheduling follows the standard greedy model: each DRAM cycle and
//! channel, the controller considers every queued request, derives the
//! next command each needs (ACT, PRE, or a column command), filters to
//! those legal *this* cycle, and issues the one the active
//! [`Scheduler`] prefers.
//!
//! Provided schedulers:
//!
//! - [`scheduler::Fcfs`] — oldest first.
//! - [`scheduler::FrFcfs`] — row hits first, then oldest (the classic
//!   high-throughput baseline).
//! - [`scheduler::ParBs`] — batch-based fairness scheduling in the spirit
//!   of PAR-BS (Mutlu & Moscibroda, ISCA 2008).
//! - [`scheduler::Tcm`] — Thread Cluster Memory scheduling (Kim et al.,
//!   MICRO 2010): latency-sensitive/bandwidth-sensitive clustering with
//!   niceness-based shuffling, the scheduler DBP composes with.
//!
//! # Example
//!
//! ```
//! use dbp_dram::{Dram, DramConfig};
//! use dbp_memctrl::{CtrlConfig, MemoryController, MemRequest, TrafficKind};
//! use dbp_memctrl::scheduler::FrFcfs;
//!
//! let dram = Dram::new(DramConfig::fast_test());
//! let mut mc = MemoryController::new(dram, CtrlConfig::default(), Box::new(FrFcfs), 1);
//! let req = MemRequest::demand_read(0, 0, 0x40, 0);
//! assert!(mc.can_accept(0, false));
//! mc.enqueue(req);
//! let mut done = Vec::new();
//! for now in 0..200 {
//!     mc.tick(now, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! ```

pub mod anatomy;
pub mod controller;
pub mod profiler;
pub mod request;
pub mod scheduler;

pub use anatomy::Anatomy;
pub use controller::{Completion, CtrlConfig, CtrlStats, MemoryController};
pub use profiler::{ProfilerState, ThreadProf};
pub use request::{MemRequest, TrafficKind};
pub use scheduler::Scheduler;

/// Thread (core) identifier.
pub type ThreadId = usize;
