//! The memory controller: queues, write drains, refresh, and the per-cycle
//! greedy command issue driven by a [`Scheduler`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dbp_dram::{Command, CommandKind, Cycle, Dram, Loc, RowPolicy};
use dbp_obs::latency::LatencyReport;

use crate::anatomy::{Anatomy, IssuedCmd, IssuedKind};
use crate::profiler::{ProfilerState, RowOutcome};
use crate::request::{MemRequest, TrafficKind};
use crate::scheduler::{row_hit_then_age, Scheduler};
use crate::ThreadId;

/// Controller sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlConfig {
    /// Read-queue capacity per channel.
    pub read_q_cap: usize,
    /// Write-queue capacity per channel.
    pub write_q_cap: usize,
    /// Enter write-drain mode at this write-queue occupancy.
    pub write_hi: usize,
    /// Leave write-drain mode at this occupancy.
    pub write_lo: usize,
}

impl Default for CtrlConfig {
    fn default() -> Self {
        CtrlConfig { read_q_cap: 64, write_q_cap: 64, write_hi: 48, write_lo: 16 }
    }
}

/// A finished demand read, reported from [`MemoryController::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id the request was enqueued with.
    pub id: u64,
    pub thread: ThreadId,
}

/// Controller-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtrlStats {
    pub enq_reads: u64,
    pub enq_writes: u64,
    pub completed_reads: u64,
    pub cmd_act: u64,
    pub cmd_pre: u64,
    pub cmd_rd: u64,
    pub cmd_wr: u64,
    pub cmd_ref: u64,
    /// Cycles any channel spent in write-drain mode.
    pub drain_cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRead {
    ready_at: Cycle,
    id: u64,
    thread: ThreadId,
    arrival: Cycle,
}

impl Ord for PendingRead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready_at, self.id).cmp(&(other.ready_at, other.id))
    }
}

impl PartialOrd for PendingRead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Candidate command kind for a queued request, given its bank's current
/// open row: a column access (row hit), a precharge (row conflict), or an
/// activate (row closed). Timing legality depends only on this triple —
/// never on the specific row or column — which is what makes the
/// per-(bank, kind) candidate table below exact.
const KIND_COL: u8 = 0;
const KIND_PRE: u8 = 1;
const KIND_ACT: u8 = 2;

/// One (rank, bank, kind) candidate class and the queue slots behind it.
#[derive(Debug, Clone)]
struct Pair {
    rank: u32,
    bank: u32,
    kind: u8,
    /// Exact earliest cycle this class's command can issue, as of the
    /// last refresh (`valid`). Device timing state changes only when a
    /// command issues on the channel, so the value stays exact until the
    /// table is marked stale; `Cycle::MAX` when the device returns no
    /// legal time (cannot happen while `kind` matches the bank state).
    t_legal: Cycle,
    valid: bool,
    /// Queue indices (unsorted) of the member requests.
    members: Vec<u32>,
}

/// Per-(channel, queue) index of candidate classes, maintained
/// incrementally on enqueue / issue so that command-issue scans and the
/// time-skip calendar are O(distinct (bank, kind) classes) instead of
/// O(queue depth x timing queries).
#[derive(Debug, Clone, Default)]
struct CandTable {
    pairs: Vec<Pair>,
    /// Set when a command issued on this channel: every `t_legal` must be
    /// recomputed (lazily, at next use) against the new device state.
    stale: bool,
}

/// A multi-channel memory controller in front of one [`Dram`] device.
#[derive(Debug)]
pub struct MemoryController {
    dram: Dram,
    cfg: CtrlConfig,
    sched: Box<dyn Scheduler>,
    read_q: Vec<Vec<MemRequest>>,
    write_q: Vec<Vec<MemRequest>>,
    /// Candidate-class index per channel, one per queue, mirroring
    /// `read_q` / `write_q` exactly (see [`CandTable`]).
    cand_r: Vec<CandTable>,
    cand_w: Vec<CandTable>,
    /// Reusable (queue index, kind) gather buffer for `pick`.
    scratch: Vec<(u32, u8)>,
    draining: Vec<bool>,
    pending: BinaryHeap<Reverse<PendingRead>>,
    prof: ProfilerState,
    stats: CtrlStats,
    closed_page: bool,
    anat: Anatomy,
    /// Host self-profiler (wall-clock spans; distinct from `prof`, the
    /// DRAM-side per-thread profiling the policies consume). Disabled by
    /// default: every span/counter call is one branch.
    host_prof: dbp_obs::Prof,
    ctr_enq: dbp_obs::prof::Counter,
    ctr_cmds: dbp_obs::prof::Counter,
    ctr_idle: dbp_obs::prof::Counter,
    ctr_blocked: dbp_obs::prof::Counter,
    /// Memoised queue/refresh scan of [`MemoryController::next_event`]:
    /// `(computed_at, at)`. Every scan input — queue contents, DRAM bank
    /// timing, refresh deadlines, drain hysteresis — changes only when a
    /// request is enqueued or a command issues, so the absolute event
    /// time stays exact until one of those invalidates it (or `at`
    /// arrives and the clamp to `now + 1` could move it).
    queue_event: std::cell::Cell<Option<(Cycle, Cycle)>>,
}

impl MemoryController {
    /// Build a controller for `threads` threads over `dram`.
    pub fn new(dram: Dram, cfg: CtrlConfig, sched: Box<dyn Scheduler>, threads: usize) -> Self {
        assert!(cfg.write_lo < cfg.write_hi && cfg.write_hi <= cfg.write_q_cap);
        let channels = dram.cfg().channels as usize;
        let total_banks = dram.cfg().total_banks() as usize;
        let closed_page = dram.cfg().row_policy == RowPolicy::Closed;
        MemoryController {
            read_q: vec![Vec::with_capacity(cfg.read_q_cap); channels],
            write_q: vec![Vec::with_capacity(cfg.write_q_cap); channels],
            cand_r: vec![CandTable::default(); channels],
            cand_w: vec![CandTable::default(); channels],
            scratch: Vec::new(),
            draining: vec![false; channels],
            pending: BinaryHeap::new(),
            prof: ProfilerState::new(threads, total_banks),
            stats: CtrlStats::default(),
            closed_page,
            anat: Anatomy::default(),
            host_prof: dbp_obs::Prof::disabled(),
            ctr_enq: dbp_obs::prof::Counter::default(),
            ctr_cmds: dbp_obs::prof::Counter::default(),
            ctr_idle: dbp_obs::prof::Counter::default(),
            ctr_blocked: dbp_obs::prof::Counter::default(),
            queue_event: std::cell::Cell::new(None),
            dram,
            cfg,
            sched,
        }
    }

    /// Attach a host self-profiler: wall-clock spans around scheduling /
    /// issue / anatomy, plus the work counters that size ROADMAP item 1
    /// (`memctrl/idle_ticks` is the wasted-poll number the event
    /// calendar would skip, `memctrl/blocked_ticks` the polls with work
    /// in flight but no issuable command). Observation-only: attaching
    /// changes no scheduling decision.
    pub fn attach_profiler(&mut self, prof: &dbp_obs::Prof) {
        self.host_prof = prof.clone();
        self.ctr_enq = prof.counter("memctrl/requests_enqueued");
        self.ctr_cmds = prof.counter("memctrl/commands_issued");
        self.ctr_idle = prof.counter("memctrl/idle_ticks");
        self.ctr_blocked = prof.counter("memctrl/blocked_ticks");
        self.dram.attach_profiler(prof);
    }

    /// The underlying device (read-only).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The active scheduler's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Forward a telemetry recorder to the scheduler so it can emit
    /// decision events (e.g. TCM clusterings), and switch on per-request
    /// latency anatomy when the recorder is live. Disabled anatomy costs
    /// one branch per tick.
    pub fn attach_recorder(&mut self, rec: dbp_obs::Recorder) {
        if rec.is_enabled() {
            let c = self.dram.cfg();
            self.anat.enable(
                self.prof.num_threads(),
                c.total_banks() as usize,
                c.channels as usize,
            );
        }
        self.sched.attach_recorder(rec);
    }

    /// The accumulated latency anatomy (`None` unless a live recorder was
    /// attached).
    pub fn latency_report(&self) -> Option<&LatencyReport> {
        self.anat.is_enabled().then(|| self.anat.report())
    }

    /// Drop latency anatomy gathered so far (measurement-window reset).
    pub fn reset_latency(&mut self) {
        if self.anat.is_enabled() {
            self.anat.reset_window();
        }
    }

    /// Profiling state (shared with partitioning policies).
    pub fn prof(&self) -> &ProfilerState {
        &self.prof
    }

    /// Mutable profiling state (for instruction feeds and epoch taking).
    pub fn prof_mut(&mut self) -> &mut ProfilerState {
        &mut self.prof
    }

    /// Controller counters.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Queue occupancy of `channel`.
    pub fn queue_len(&self, channel: u32, write: bool) -> usize {
        if write {
            self.write_q[channel as usize].len()
        } else {
            self.read_q[channel as usize].len()
        }
    }

    /// Total requests in flight (queued or awaiting data return).
    pub fn in_flight(&self) -> usize {
        self.read_q.iter().map(Vec::len).sum::<usize>()
            + self.write_q.iter().map(Vec::len).sum::<usize>()
            + self.pending.len()
    }

    fn global_bank(&self, r: &MemRequest) -> usize {
        let c = self.dram.cfg();
        ((r.channel * c.ranks_per_channel + r.rank) * c.banks_per_rank + r.bank) as usize
    }

    /// Whether a request for `channel` can be accepted right now.
    pub fn can_accept(&self, channel: u32, is_write: bool) -> bool {
        if is_write {
            self.write_q[channel as usize].len() < self.cfg.write_q_cap
        } else {
            self.read_q[channel as usize].len() < self.cfg.read_q_cap
        }
    }

    /// Decode the channel a physical address routes to (for admission
    /// checks before building a request).
    pub fn channel_of(&self, addr: u64) -> u32 {
        self.dram.mapper().decode(addr).channel
    }

    /// Enqueue a request. The DRAM coordinates are decoded here.
    ///
    /// # Panics
    ///
    /// Panics if the target queue is full — call
    /// [`MemoryController::can_accept`] first.
    pub fn enqueue(&mut self, mut req: MemRequest) {
        let d = self.dram.mapper().decode(req.addr);
        req.channel = d.channel;
        req.rank = d.rank;
        req.bank = d.bank;
        req.row = d.row;
        req.column = d.column;
        assert!(self.can_accept(d.channel, req.is_write), "queue full on channel {}", d.channel);
        let gbank = self.global_bank(&req);
        self.queue_event.set(None);
        self.ctr_enq.incr();
        self.prof.on_enqueue(req.thread, gbank, req.is_write, req.kind != TrafficKind::Migration);
        let chi = d.channel as usize;
        let is_write = req.is_write;
        if is_write {
            self.stats.enq_writes += 1;
            self.write_q[chi].push(req);
        } else {
            self.stats.enq_reads += 1;
            self.sched.on_enqueue(&req);
            if req.kind == TrafficKind::Demand {
                self.anat.on_enqueue_read(req.id);
            }
            self.read_q[chi].push(req);
        }
        let idx = if is_write { self.write_q[chi].len() } else { self.read_q[chi].len() } - 1;
        self.cand_insert(chi, is_write, idx);
    }

    /// Advance one DRAM cycle: complete returned data, sample profiling,
    /// run the scheduler, and issue at most one command per channel.
    ///
    /// Finished demand reads are appended to `completed`.
    ///
    /// Dispatches once on whether the host profiler is live so the
    /// `PROF = false` monomorphisation carries no span guards at all.
    pub fn tick(&mut self, now: Cycle, completed: &mut Vec<Completion>) {
        if self.host_prof.is_enabled() {
            self.tick_impl::<true>(now, completed);
        } else {
            self.tick_impl::<false>(now, completed);
        }
    }

    fn tick_impl<const PROF: bool>(&mut self, now: Cycle, completed: &mut Vec<Completion>) {
        let _tick = PROF.then(|| self.host_prof.span("memctrl/tick"));
        // `in_flight` walks every queue, so only pay for it when the
        // idle/blocked counters are live.
        let watch_polls = PROF && self.ctr_idle.is_enabled();
        let in_flight_at_start = if watch_polls { self.in_flight() } else { 0 };
        while let Some(&Reverse(p)) = self.pending.peek() {
            if p.ready_at > now {
                break;
            }
            self.pending.pop();
            self.prof.on_read_complete(p.thread, p.ready_at - p.arrival);
            self.stats.completed_reads += 1;
            completed.push(Completion { id: p.id, thread: p.thread });
        }
        self.prof.sample_blp();
        {
            let _s = PROF.then(|| self.host_prof.span("memctrl/sched"));
            self.sched.tick(now, &self.prof, &self.read_q);
        }
        let channels = self.dram.cfg().channels;
        // When the memoised queue/refresh calendar proves no command can
        // become legal before `at`, the scan is skipped wholesale; only
        // the per-tick drain bookkeeping (which the stepped tick would
        // have run after `try_refresh` found nothing) remains.
        let scannable = !matches!(self.queue_event.get(), Some((_, at)) if now < at);
        let any_issued;
        if self.anat.is_enabled() {
            // Issue first, then attribute: a request whose column command
            // went out this cycle has left the queue, so it accrues no
            // wait for its final cycle and the components stay strictly
            // below the total latency (the remainder is intrinsic).
            let issued: Vec<Option<IssuedCmd>> = {
                let _s = PROF.then(|| self.host_prof.span("memctrl/issue"));
                (0..channels)
                    .map(|ch| {
                        if scannable {
                            self.issue_channel(ch, now)
                        } else {
                            self.tick_drain(ch);
                            None
                        }
                    })
                    .collect()
            };
            any_issued = issued.iter().any(Option::is_some);
            let _s = PROF.then(|| self.host_prof.span("memctrl/anatomy"));
            let MemoryController { dram, read_q, anat, closed_page, .. } = self;
            anat.attribute_cycle(now, dram, read_q, &issued, *closed_page);
        } else if scannable {
            let _s = PROF.then(|| self.host_prof.span("memctrl/issue"));
            let mut any = false;
            for ch in 0..channels {
                any |= self.issue_channel(ch, now).is_some();
            }
            any_issued = any;
        } else {
            for ch in 0..channels {
                self.tick_drain(ch);
            }
            any_issued = false;
        }
        if any_issued {
            self.queue_event.set(None);
        }
        if watch_polls {
            if in_flight_at_start == 0 {
                self.ctr_idle.incr();
            } else if !any_issued {
                self.ctr_blocked.incr();
            }
        }
    }

    /// The next DRAM cycle strictly after `now` at which this controller
    /// might act — complete a read, issue any command (including refresh
    /// work), or hit a scheduler boundary that must tick exactly —
    /// assuming nothing is enqueued in between.
    ///
    /// This is the controller's contribution to the time-skip calendar.
    /// It may be *earlier* than the true next action (an extra tick is a
    /// no-op identical to the stepped core), never later. All inputs are
    /// static while no command issues, so one query covers the window.
    pub fn next_event(&mut self, now: Cycle) -> Cycle {
        let mut at = Cycle::MAX;
        if let Some(&Reverse(p)) = self.pending.peek() {
            at = at.min(p.ready_at);
        }
        if let Some(w) = self.sched.next_wake(now, &self.read_q) {
            at = at.min(w.max(now + 1));
        }
        at.min(self.queue_event(now))
    }

    /// The queue/refresh half of [`MemoryController::next_event`]: the
    /// earliest cycle after `now` at which a queued request's next
    /// command becomes timing-legal or the refresh machinery can act.
    /// Memoised — see the `queue_event` field for why the cached
    /// absolute time stays exact until an enqueue or an issued command.
    fn queue_event(&mut self, now: Cycle) -> Cycle {
        if let Some((computed_at, at)) = self.queue_event.get() {
            if now >= computed_at && now < at {
                return at;
            }
        }
        let mut at = Cycle::MAX;
        let (channels, ranks) = (self.dram.cfg().channels, self.dram.cfg().ranks_per_channel);
        for ch in 0..channels {
            // Refresh urgency is constant inside the window: it flips ON
            // only at a deadline (a calendar entry below) and OFF only
            // when the REF issues (an executed tick).
            let mut urgent: u64 = 0;
            for rank in 0..ranks {
                let deadline = self.dram.refresh_deadline(ch, rank);
                if now < deadline {
                    // Urgency flips at the deadline tick.
                    at = at.min(deadline);
                } else {
                    urgent |= 1 << rank;
                    // Already urgent: wake when the refresh machinery can
                    // act (the REF itself, or a precharge clearing the way).
                    let rf = Command::RefreshRank { channel: ch, rank };
                    match self.dram.earliest_issue(&rf, now + 1) {
                        Some(t) => at = at.min(t),
                        None => {
                            for bank in self.dram.open_banks(ch, rank) {
                                let pre = Command::precharge(ch, rank, bank);
                                if let Some(t) = self.dram.earliest_issue(&pre, now + 1) {
                                    at = at.min(t);
                                }
                            }
                        }
                    }
                }
            }
            // A queued request wakes the controller when its next command
            // first becomes timing-legal — but only requests in the queue
            // the drain mode would actually serve can issue, and an
            // urgent rank admits no new activates (both mirror
            // `issue_channel`/`pick`, and both are static inside the
            // window: queue contents and write-queue length only change
            // at executed ticks, so the hysteresis settles at the first
            // skipped tick exactly as `skip_ticks` replays it).
            let chi = ch as usize;
            let wlen = self.write_q[chi].len();
            let draining = if self.draining[chi] {
                wlen > self.cfg.write_lo
            } else {
                wlen >= self.cfg.write_hi
            };
            let use_writes = draining || (self.read_q[chi].is_empty() && wlen > 0);
            // Timing legality depends on (bank, command kind), never on
            // the row or column, so the candidate table answers for every
            // queued request with one cached query per class.
            self.cand_refresh(chi, use_writes, now + 1);
            let table = if use_writes { &self.cand_w[chi] } else { &self.cand_r[chi] };
            for p in &table.pairs {
                if p.kind == KIND_ACT && urgent & (1 << p.rank) != 0 {
                    continue; // rank is waiting for refresh: no new rows
                }
                if p.t_legal != Cycle::MAX {
                    // A class may have become legal at an already-executed
                    // cycle (its `t_legal` was cached before `now`); the
                    // wake-up itself must still land strictly after `now`.
                    at = at.min(p.t_legal.max(now + 1));
                }
            }
        }
        self.queue_event.set(Some((now, at)));
        at
    }

    /// Bulk-equivalent of `count` consecutive [`MemoryController::tick`]
    /// calls over `[from, from + count)` during which — guaranteed by the
    /// caller's calendar ([`MemoryController::next_event`]) — no data
    /// returns, no command can issue, nothing is enqueued, and no
    /// scheduler exact-wake boundary is crossed. The per-cycle counter
    /// and sampling effects of those ticks are replicated in O(queued
    /// requests), independent of `count`; scheduler-internal decay
    /// catches up lazily from elapsed-cycle deltas at the next real tick.
    pub fn skip_ticks(&mut self, from: Cycle, count: Cycle) {
        if count == 0 {
            return;
        }
        let _s = self.host_prof.is_enabled().then(|| self.host_prof.span("memctrl/skip"));
        debug_assert!(
            self.pending.peek().is_none_or(|&Reverse(p)| p.ready_at >= from + count),
            "skip window crosses a pending completion"
        );
        self.prof.sample_blp_n(count);
        // Write-drain hysteresis: with static queues it settles at the
        // first skipped tick; replicate that flip, then charge the window.
        for chi in 0..self.draining.len() {
            let wlen = self.write_q[chi].len();
            if self.draining[chi] {
                if wlen <= self.cfg.write_lo {
                    self.draining[chi] = false;
                }
            } else if wlen >= self.cfg.write_hi {
                self.draining[chi] = true;
            }
            if self.draining[chi] {
                self.stats.drain_cycles += count;
            }
        }
        if self.anat.is_enabled() {
            let MemoryController { dram, read_q, anat, .. } = self;
            anat.attribute_span(from, count, dram, read_q);
        }
        if self.host_prof.is_enabled() && self.ctr_idle.is_enabled() {
            // Skipped cycles are still simulated time: count them against
            // the same idle/blocked denominators the stepped core uses.
            if self.in_flight() == 0 {
                self.ctr_idle.add(count);
            } else {
                self.ctr_blocked.add(count);
            }
        }
    }

    /// Per-tick write-drain hysteresis update and drain-cycle charge —
    /// the part of [`MemoryController::issue_channel`] that must run on
    /// every tick even when the calendar proves nothing can issue.
    fn tick_drain(&mut self, ch: u32) {
        let chi = ch as usize;
        let wlen = self.write_q[chi].len();
        if self.draining[chi] {
            if wlen <= self.cfg.write_lo {
                self.draining[chi] = false;
            }
        } else if wlen >= self.cfg.write_hi {
            self.draining[chi] = true;
        }
        if self.draining[chi] {
            self.stats.drain_cycles += 1;
        }
    }

    fn issue_channel(&mut self, ch: u32, now: Cycle) -> Option<IssuedCmd> {
        // Ranks with an overdue refresh: no new activates; push toward REF.
        let mut urgent: u64 = 0;
        for rank in 0..self.dram.cfg().ranks_per_channel {
            if self.dram.refresh_urgent(ch, rank, now) {
                urgent |= 1 << rank;
            }
        }
        if urgent != 0 {
            if let Some(ic) = self.try_refresh(ch, now, urgent) {
                return Some(ic);
            }
        }
        self.tick_drain(ch);
        let chi = ch as usize;
        let use_writes =
            self.draining[chi] || (self.read_q[chi].is_empty() && !self.write_q[chi].is_empty());
        self.issue_from(ch, now, use_writes, urgent)
    }

    /// Consume the cycle with refresh work if needed; reports what issued.
    fn try_refresh(&mut self, ch: u32, now: Cycle, urgent: u64) -> Option<IssuedCmd> {
        for rank in 0..self.dram.cfg().ranks_per_channel {
            if urgent & (1 << rank) == 0 {
                continue;
            }
            let rf = Command::RefreshRank { channel: ch, rank };
            match self.dram.earliest_issue(&rf, now) {
                Some(at) if at == now => {
                    self.dram.issue(&rf, now);
                    // REF needs every bank closed, so no kinds change.
                    self.cand_mark_stale(ch as usize);
                    self.stats.cmd_ref += 1;
                    self.ctr_cmds.incr();
                    return Some(IssuedCmd {
                        rank,
                        bank: None,
                        thread: None,
                        id: None,
                        kind: IssuedKind::Refresh,
                    });
                }
                Some(_) => {} // precharged but mid-timing: just wait
                None => {
                    // Precharge open banks so the REF can go.
                    for bank in self.dram.open_banks(ch, rank) {
                        let pre = Command::precharge(ch, rank, bank);
                        if self.dram.can_issue(&pre, now) {
                            self.dram.issue(&pre, now);
                            self.cand_mark_stale(ch as usize);
                            self.cand_rekind_bank(ch as usize, rank, bank);
                            self.stats.cmd_pre += 1;
                            self.ctr_cmds.incr();
                            return Some(IssuedCmd {
                                rank,
                                bank: Some(bank),
                                thread: None,
                                id: None,
                                kind: IssuedKind::Precharge,
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// Classify queue slot `idx` by its bank's current open row and add it
    /// to the matching candidate class (creating the class if new). The
    /// new class's `t_legal` is computed lazily at first use.
    fn cand_insert(&mut self, chi: usize, is_write: bool, idx: usize) {
        let q = if is_write { &self.write_q[chi] } else { &self.read_q[chi] };
        let r = &q[idx];
        let (rank, bank, row) = (r.rank, r.bank, r.row);
        let loc = Loc::new(r.channel, rank, bank);
        let kind = match self.dram.open_row(loc) {
            Some(open) if open == row => KIND_COL,
            Some(_) => KIND_PRE,
            None => KIND_ACT,
        };
        let table = if is_write { &mut self.cand_w[chi] } else { &mut self.cand_r[chi] };
        match table.pairs.iter_mut().find(|p| p.rank == rank && p.bank == bank && p.kind == kind) {
            Some(p) => p.members.push(idx as u32),
            None => table.pairs.push(Pair {
                rank,
                bank,
                kind,
                t_legal: 0,
                valid: false,
                members: vec![idx as u32],
            }),
        }
    }

    /// Mirror `Vec::swap_remove(idx)` on the candidate table: drop the
    /// member at `idx` and relabel the member that held the last queue
    /// slot (`old_len - 1`) as `idx`.
    fn cand_remove(&mut self, chi: usize, is_write: bool, idx: usize, old_len: usize) {
        let table = if is_write { &mut self.cand_w[chi] } else { &mut self.cand_r[chi] };
        let idx = idx as u32;
        let last = (old_len - 1) as u32;
        for pi in 0..table.pairs.len() {
            let p = &mut table.pairs[pi];
            if let Some(mi) = p.members.iter().position(|&m| m == idx) {
                p.members.swap_remove(mi);
                if p.members.is_empty() {
                    table.pairs.swap_remove(pi);
                }
                break;
            }
        }
        if last != idx {
            'outer: for p in &mut table.pairs {
                for m in &mut p.members {
                    if *m == last {
                        *m = idx;
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Re-classify every queued request targeting (`rank`, `bank`) on
    /// channel `chi`, in both queues — called after a command changed that
    /// bank's open row (activate, precharge, or an auto-precharging
    /// column access).
    fn cand_rekind_bank(&mut self, chi: usize, rank: u32, bank: u32) {
        for is_write in [false, true] {
            let table = if is_write { &mut self.cand_w[chi] } else { &mut self.cand_r[chi] };
            let mut moved: Vec<u32> = Vec::new();
            table.pairs.retain(|p| {
                if p.rank == rank && p.bank == bank {
                    moved.extend(&p.members);
                    false
                } else {
                    true
                }
            });
            for m in moved {
                self.cand_insert(chi, is_write, m as usize);
            }
        }
    }

    /// Mark both of a channel's candidate tables timing-stale (a command
    /// issued there, so every cached `t_legal` must be re-derived).
    fn cand_mark_stale(&mut self, chi: usize) {
        self.cand_r[chi].stale = true;
        self.cand_w[chi].stale = true;
    }

    /// Recompute any invalidated `t_legal` values in one table, querying
    /// the device once per candidate class with `from` as the earliest
    /// admissible cycle. Values computed at an earlier `from` stay exact
    /// for later queries (constraint deadlines are absolute between
    /// issues), so legality at `now >= from` is just `t_legal <= now`.
    fn cand_refresh(&mut self, chi: usize, is_write: bool, from: Cycle) {
        let MemoryController { dram, read_q, write_q, cand_r, cand_w, closed_page, .. } = self;
        let (table, q) = if is_write {
            (&mut cand_w[chi], &write_q[chi])
        } else {
            (&mut cand_r[chi], &read_q[chi])
        };
        if table.stale {
            for p in &mut table.pairs {
                p.valid = false;
            }
            table.stale = false;
        }
        for p in &mut table.pairs {
            if p.valid {
                continue;
            }
            let r = &q[p.members[0] as usize];
            let loc = Loc::new(r.channel, p.rank, p.bank);
            let cmd = match p.kind {
                KIND_COL => {
                    if is_write {
                        Command::Write { loc, column: r.column, auto_pre: *closed_page }
                    } else {
                        Command::Read { loc, column: r.column, auto_pre: *closed_page }
                    }
                }
                KIND_PRE => Command::Precharge { loc },
                _ => Command::Activate { loc, row: r.row },
            };
            p.t_legal = dram.earliest_issue(&cmd, from).unwrap_or(Cycle::MAX);
            p.valid = true;
        }
    }

    /// Find the most-preferred request whose next command is legal now;
    /// returns (index, command, is_row_hit).
    ///
    /// Driven by the candidate table: one cached timing answer per
    /// (bank, kind) class admits or rejects every member at once, so
    /// only the members of *legal* classes are visited. Visiting them in
    /// ascending queue order makes the first-strictly-better-wins scan
    /// byte-identical to a flat walk of the whole queue (checked against
    /// one in debug builds).
    fn pick(
        &mut self,
        ch: u32,
        now: Cycle,
        is_write: bool,
        urgent: u64,
    ) -> Option<(usize, Command, bool)> {
        let chi = ch as usize;
        self.cand_refresh(chi, is_write, now);
        let MemoryController {
            cand_r, cand_w, read_q, write_q, sched, closed_page, scratch, ..
        } = self;
        let (table, queue) =
            if is_write { (&cand_w[chi], &write_q[chi]) } else { (&cand_r[chi], &read_q[chi]) };
        scratch.clear();
        for p in &table.pairs {
            if p.t_legal > now {
                continue;
            }
            if p.kind == KIND_ACT && urgent & (1 << p.rank) != 0 {
                continue; // rank is waiting for refresh: no new rows
            }
            for &m in &p.members {
                scratch.push((m, p.kind));
            }
        }
        scratch.sort_unstable();
        let mut best: Option<(usize, u8, bool)> = None;
        for &(m, kind) in scratch.iter() {
            let i = m as usize;
            let r = &queue[i];
            let hit = kind == KIND_COL;
            let better = match &best {
                None => true,
                Some((bi, _, bhit)) => {
                    if is_write {
                        row_hit_then_age(r, hit, &queue[*bi], *bhit)
                    } else {
                        sched.prefer(r, hit, &queue[*bi], *bhit)
                    }
                }
            };
            if better {
                best = Some((i, kind, hit));
            }
        }
        let res = best.map(|(i, kind, hit)| {
            let r = &queue[i];
            let loc = Loc::new(ch, r.rank, r.bank);
            let cmd = match kind {
                KIND_COL => {
                    if is_write {
                        Command::Write { loc, column: r.column, auto_pre: *closed_page }
                    } else {
                        Command::Read { loc, column: r.column, auto_pre: *closed_page }
                    }
                }
                KIND_PRE => Command::Precharge { loc },
                _ => Command::Activate { loc, row: r.row },
            };
            (i, cmd, hit)
        });
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            res,
            self.pick_flat(ch, now, is_write, urgent),
            "candidate table diverged from the flat queue scan"
        );
        res
    }

    /// The original exhaustive queue walk `pick` replicates — kept (debug
    /// builds only) as the reference the candidate table is checked
    /// against on every single pick.
    #[cfg(debug_assertions)]
    fn pick_flat(
        &self,
        ch: u32,
        now: Cycle,
        is_write: bool,
        urgent: u64,
    ) -> Option<(usize, Command, bool)> {
        let queue = if is_write { &self.write_q[ch as usize] } else { &self.read_q[ch as usize] };
        let mut best: Option<(usize, Command, bool)> = None;
        for (i, r) in queue.iter().enumerate() {
            let loc = Loc::new(ch, r.rank, r.bank);
            let (cmd, hit) = match self.dram.open_row(loc) {
                Some(row) if row == r.row => {
                    let cmd = if is_write {
                        Command::Write { loc, column: r.column, auto_pre: self.closed_page }
                    } else {
                        Command::Read { loc, column: r.column, auto_pre: self.closed_page }
                    };
                    (cmd, true)
                }
                Some(_) => (Command::Precharge { loc }, false),
                None => {
                    if urgent & (1 << r.rank) != 0 {
                        continue; // rank is waiting for refresh: no new rows
                    }
                    (Command::Activate { loc, row: r.row }, false)
                }
            };
            if !self.dram.can_issue(&cmd, now) {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bi, _, bhit)) => {
                    if is_write {
                        row_hit_then_age(r, hit, &queue[*bi], *bhit)
                    } else {
                        self.sched.prefer(r, hit, &queue[*bi], *bhit)
                    }
                }
            };
            if better {
                best = Some((i, cmd, hit));
            }
        }
        best
    }

    fn issue_from(
        &mut self,
        ch: u32,
        now: Cycle,
        is_write: bool,
        urgent: u64,
    ) -> Option<IssuedCmd> {
        let (i, cmd, _hit) = self.pick(ch, now, is_write, urgent)?;
        let chi = ch as usize;
        // First-action classification (demand and write-back traffic only).
        let (thread, req_id, classified, tracked) = {
            let q = if is_write { &self.write_q[chi] } else { &self.read_q[chi] };
            (q[i].thread, q[i].id, q[i].classified, q[i].kind != TrafficKind::Migration)
        };
        if !classified && tracked {
            let outcome = match cmd.kind() {
                CommandKind::Read | CommandKind::Write => RowOutcome::Hit,
                CommandKind::Activate => RowOutcome::Miss,
                CommandKind::Precharge => RowOutcome::Conflict,
                CommandKind::RefreshRank => unreachable!("pick never returns REF"),
            };
            self.prof.classify(thread, outcome);
            let q = if is_write { &mut self.write_q[chi] } else { &mut self.read_q[chi] };
            q[i].classified = true;
        }
        let res = self.dram.issue(&cmd, now);
        self.cand_mark_stale(chi);
        self.ctr_cmds.incr();
        match cmd.kind() {
            CommandKind::Activate => self.stats.cmd_act += 1,
            CommandKind::Precharge => self.stats.cmd_pre += 1,
            CommandKind::Read => self.stats.cmd_rd += 1,
            CommandKind::Write => self.stats.cmd_wr += 1,
            CommandKind::RefreshRank => {}
        }
        let loc = cmd.loc().expect("pick never returns REF");
        // Row-state changes re-classify the bank's queued candidates.
        if matches!(cmd.kind(), CommandKind::Activate | CommandKind::Precharge) {
            self.cand_rekind_bank(chi, loc.rank, loc.bank);
        }
        let issued = IssuedCmd {
            rank: loc.rank,
            bank: Some(loc.bank),
            thread: Some(thread),
            id: Some(req_id),
            kind: IssuedKind::of(cmd.kind()),
        };
        if cmd.is_column() {
            let (req, old_len) = if is_write {
                let n = self.write_q[chi].len();
                (self.write_q[chi].swap_remove(i), n)
            } else {
                let n = self.read_q[chi].len();
                (self.read_q[chi].swap_remove(i), n)
            };
            self.cand_remove(chi, is_write, i, old_len);
            if self.closed_page {
                // The auto-precharge closed the row under the survivors.
                self.cand_rekind_bank(chi, loc.rank, loc.bank);
            }
            let gbank = self.global_bank(&req);
            let t_burst = self.dram.cfg().timing.t_burst;
            self.prof.on_serviced(
                req.thread,
                gbank,
                req.is_write,
                None,
                t_burst,
                req.kind != TrafficKind::Migration,
            );
            self.anat.note_column(chi, req.thread);
            let data_end = res.data_ready_at.expect("column commands return data");
            if req.is_write {
                if req.kind == TrafficKind::Writeback {
                    self.anat.on_write_issued(req.thread, data_end - req.arrival);
                }
            } else {
                self.sched.on_serviced(&req, now);
                if req.kind == TrafficKind::Demand {
                    self.anat.on_read_issued(req.id, req.thread, gbank, data_end - req.arrival);
                    self.pending.push(Reverse(PendingRead {
                        ready_at: data_end,
                        id: req.id,
                        thread: req.thread,
                        arrival: req.arrival,
                    }));
                }
            }
        } else if cmd.kind() == CommandKind::Activate {
            let gbank = ((loc.channel * self.dram.cfg().ranks_per_channel + loc.rank)
                * self.dram.cfg().banks_per_rank
                + loc.bank) as usize;
            self.anat.note_activate(gbank, thread);
        }
        Some(issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Fcfs, FrFcfs};
    use dbp_dram::DramConfig;

    fn mc(sched: Box<dyn Scheduler>, threads: usize) -> MemoryController {
        MemoryController::new(
            Dram::new(DramConfig::fast_test()),
            CtrlConfig::default(),
            sched,
            threads,
        )
    }

    fn run(mc: &mut MemoryController, cycles: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in 0..cycles {
            mc.tick(now, &mut done);
        }
        done
    }

    #[test]
    fn single_read_completes() {
        let mut m = mc(Box::new(FrFcfs), 1);
        m.enqueue(MemRequest::demand_read(7, 0, 0x40, 0));
        let done = run(&mut m, 50);
        assert_eq!(done, vec![Completion { id: 7, thread: 0 }]);
        assert_eq!(m.stats().cmd_act, 1);
        assert_eq!(m.stats().cmd_rd, 1);
        // ACT(0) -> RD(tRCD=2) -> data at 2+CL+BURST=6.
        assert!(m.prof().epoch(0).avg_read_latency() >= 6.0);
    }

    #[test]
    fn row_hit_classified_and_served_without_activate() {
        let cfg = DramConfig::fast_test();
        let row_bytes = u64::from(cfg.row_bytes);
        let mut m = mc(Box::new(FrFcfs), 1);
        m.enqueue(MemRequest::demand_read(0, 0, 0, 0));
        // Same row, different column (within the same page/row).
        m.enqueue(MemRequest::demand_read(1, 0, 64, 0));
        let done = run(&mut m, 60);
        assert_eq!(done.len(), 2);
        assert_eq!(m.stats().cmd_act, 1, "second read must reuse the open row");
        assert_eq!(m.prof().epoch(0).row_hits, 1);
        assert_eq!(m.prof().epoch(0).row_misses, 1);
        let _ = row_bytes;
    }

    #[test]
    fn row_conflict_precharges_and_classifies() {
        let cfg = DramConfig::fast_test();
        let mut m = mc(Box::new(Fcfs), 1);
        // Two different rows of the same bank: row stride is
        // row_bytes * banks (page-coloring layout, 1 channel 1 rank).
        let same_bank_next_row = u64::from(cfg.row_bytes) * u64::from(cfg.banks_per_rank);
        m.enqueue(MemRequest::demand_read(0, 0, 0, 0));
        m.enqueue(MemRequest::demand_read(1, 0, same_bank_next_row, 0));
        let done = run(&mut m, 100);
        assert_eq!(done.len(), 2);
        assert_eq!(m.prof().epoch(0).row_conflicts, 1);
        assert!(m.stats().cmd_pre >= 1);
        assert_eq!(m.stats().cmd_act, 2);
    }

    #[test]
    fn frfcfs_prefers_hit_over_older_conflict() {
        let cfg = DramConfig::fast_test();
        let same_bank_next_row = u64::from(cfg.row_bytes) * u64::from(cfg.banks_per_rank);
        let mut m = mc(Box::new(FrFcfs), 2);
        // Open row 0 via thread 0.
        m.enqueue(MemRequest::demand_read(0, 0, 0, 0));
        let mut done = Vec::new();
        for now in 0..20 {
            m.tick(now, &mut done);
        }
        assert_eq!(done.len(), 1);
        // Now enqueue an older conflict (thread 1) and a younger hit
        // (thread 0). FR-FCFS serves the hit first.
        m.enqueue(MemRequest::demand_read(10, 1, same_bank_next_row, 20));
        m.enqueue(MemRequest::demand_read(11, 0, 128, 21));
        for now in 20..120 {
            m.tick(now, &mut done);
        }
        assert_eq!(done.len(), 3);
        assert_eq!(done[1].id, 11, "row hit must bypass the older conflict");
        assert_eq!(done[2].id, 10);
    }

    #[test]
    fn writes_drain_at_watermark() {
        let mut m = mc(Box::new(FrFcfs), 1);
        let hi = m.cfg.write_hi;
        for i in 0..hi as u64 {
            m.enqueue(MemRequest::writeback(i, 0, i * 4096, 0));
        }
        run(&mut m, 500);
        assert!(m.stats().cmd_wr as usize >= hi - m.cfg.write_lo);
        assert!(m.stats().drain_cycles > 0);
    }

    #[test]
    fn reads_alone_do_not_trigger_drain_but_idle_writes_go() {
        let mut m = mc(Box::new(FrFcfs), 1);
        // A single write, below the watermark: issued opportunistically
        // because no reads are pending.
        m.enqueue(MemRequest::writeback(0, 0, 0x40, 0));
        run(&mut m, 100);
        assert_eq!(m.stats().cmd_wr, 1);
        assert_eq!(m.stats().drain_cycles, 0);
    }

    #[test]
    fn refresh_issues_when_due() {
        let mut m = mc(Box::new(FrFcfs), 1);
        let t_refi = Cycle::from(m.dram().cfg().timing.t_refi);
        run(&mut m, t_refi + 50);
        assert!(m.stats().cmd_ref >= 1);
    }

    #[test]
    fn refresh_precharges_open_rows_first() {
        let mut m = mc(Box::new(FrFcfs), 1);
        let t_refi = Cycle::from(m.dram().cfg().timing.t_refi);
        // Keep a row open right up to the refresh deadline.
        m.enqueue(MemRequest::demand_read(0, 0, 0, 0));
        let mut done = Vec::new();
        for now in 0..t_refi + 100 {
            m.tick(now, &mut done);
        }
        assert!(m.stats().cmd_ref >= 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = mc(Box::new(FrFcfs), 1);
        let cap = m.cfg.read_q_cap;
        for i in 0..cap as u64 {
            assert!(m.can_accept(0, false));
            m.enqueue(MemRequest::demand_read(i, 0, i * 4096, 0));
        }
        assert!(!m.can_accept(0, false));
    }

    #[test]
    #[should_panic(expected = "queue full")]
    fn enqueue_past_capacity_panics() {
        let mut m = mc(Box::new(FrFcfs), 1);
        for i in 0..=m.cfg.read_q_cap as u64 {
            m.enqueue(MemRequest::demand_read(i, 0, i * 4096, 0));
        }
    }

    #[test]
    fn closed_page_policy_precharges_after_access() {
        let mut dram_cfg = DramConfig::fast_test();
        dram_cfg.row_policy = RowPolicy::Closed;
        let mut m =
            MemoryController::new(Dram::new(dram_cfg), CtrlConfig::default(), Box::new(FrFcfs), 1);
        m.enqueue(MemRequest::demand_read(0, 0, 0, 0));
        run(&mut m, 50);
        assert_eq!(m.dram().open_row(Loc::new(0, 0, 0)), None);
    }

    #[test]
    fn migration_reads_do_not_complete_to_cores() {
        let mut m = mc(Box::new(FrFcfs), 1);
        m.enqueue(MemRequest::migration(0, 0, 0x40, false, 0));
        let done = run(&mut m, 100);
        assert!(done.is_empty());
        assert_eq!(m.stats().cmd_rd, 1);
    }

    #[test]
    fn blp_visible_for_parallel_banks() {
        let cfg = DramConfig::fast_test();
        let mut m = mc(Box::new(FrFcfs), 1);
        // 4 requests to 4 different banks (consecutive pages).
        for b in 0..4u64 {
            m.enqueue(MemRequest::demand_read(b, 0, b * u64::from(cfg.page_bytes), 0));
        }
        let mut done = Vec::new();
        m.tick(0, &mut done);
        assert!(m.prof().epoch(0).blp_accum >= 4, "all four banks outstanding");
    }

    #[test]
    fn per_thread_attribution() {
        let mut m = mc(Box::new(FrFcfs), 2);
        m.enqueue(MemRequest::demand_read(0, 0, 0, 0));
        m.enqueue(MemRequest::demand_read(1, 1, 4096, 0));
        run(&mut m, 60);
        assert_eq!(m.prof().epoch(0).served_reads, 1);
        assert_eq!(m.prof().epoch(1).served_reads, 1);
    }

    /// The host self-profiler is observation-only: identical completions
    /// and stats with it attached, work counters that reconcile with the
    /// controller's own counters, and exact-sum span aggregates.
    #[test]
    fn host_profiler_counts_work_without_perturbing() {
        let ticks = 200;
        let feed = |m: &mut MemoryController| {
            for i in 0..6u64 {
                m.enqueue(MemRequest::demand_read(i, 0, i * 4096, 0));
            }
        };
        let mut plain = mc(Box::new(FrFcfs), 1);
        feed(&mut plain);
        let done_plain = run(&mut plain, ticks);

        let prof = dbp_obs::Prof::enabled();
        let mut profiled = mc(Box::new(FrFcfs), 1);
        profiled.attach_profiler(&prof);
        feed(&mut profiled);
        let done_prof = run(&mut profiled, ticks);

        assert_eq!(done_plain, done_prof);
        assert_eq!(plain.stats(), profiled.stats());

        let snap = prof.snapshot(); // asserts exact-sum
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(get("memctrl/requests_enqueued"), 6);
        let s = profiled.stats();
        assert_eq!(
            get("memctrl/commands_issued"),
            s.cmd_act + s.cmd_pre + s.cmd_rd + s.cmd_wr + s.cmd_ref
        );
        // Six reads drain quickly; most of the 200 polls find nothing.
        assert!(get("memctrl/idle_ticks") > 0);
        assert!(get("dram/timing_queries") >= get("memctrl/commands_issued"));
        let tick = snap.spans.iter().find(|s| s.name == "memctrl/tick").expect("tick span");
        assert_eq!(tick.count, ticks);
        let names: Vec<&str> = tick.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["memctrl/issue", "memctrl/sched"]);
    }
}

#[cfg(test)]
mod anatomy_tests {
    use super::*;
    use crate::scheduler::FrFcfs;
    use dbp_dram::DramConfig;
    use dbp_obs::{Recorder, RecorderConfig};

    /// A controller with latency anatomy switched on.
    fn mc_recorded(threads: usize) -> MemoryController {
        let mut m = MemoryController::new(
            Dram::new(DramConfig::fast_test()),
            CtrlConfig::default(),
            Box::new(FrFcfs),
            threads,
        );
        m.attach_recorder(Recorder::new(RecorderConfig::default()));
        m
    }

    fn run(m: &mut MemoryController, cycles: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in 0..cycles {
            m.tick(now, &mut done);
        }
        done
    }

    /// Same-bank row stride for the fast_test page-coloring layout
    /// (1 channel, 1 rank).
    fn same_bank_stride() -> u64 {
        let c = DramConfig::fast_test();
        u64::from(c.row_bytes) * u64::from(c.banks_per_rank)
    }

    /// The tentpole invariant: for every profiled read the five latency
    /// components sum *exactly* (u64 equality) to `ready_at - arrival`.
    /// `LatencyReport::record_read` asserts this per request in every
    /// build profile; here we additionally check the aggregate identity
    /// on a contended multi-core workload.
    #[test]
    fn breakdown_components_sum_exactly_to_total_latency() {
        let mut m = mc_recorded(4);
        let stride = same_bank_stride();
        let mut id = 0;
        for burst in 0..6u64 {
            for t in 0..4usize {
                // All four cores fight over bank 0 with distinct rows,
                // plus a second stream on different banks for bus load.
                m.enqueue(MemRequest::demand_read(id, t, (burst * 4 + t as u64) * stride, 0));
                id += 1;
                m.enqueue(MemRequest::demand_read(id, t, 4096 * (t as u64 + 1), 0));
                id += 1;
            }
        }
        let done = run(&mut m, 5_000);
        assert_eq!(done.len(), 48, "all reads complete");
        let rep = m.latency_report().expect("recorder attached");
        assert_eq!(rep.total_reads(), 48);
        for core in &rep.cores {
            let component_sum: u64 = core.components.iter().sum();
            assert_eq!(
                component_sum,
                core.read.sum(),
                "per-core components must partition the summed read latency"
            );
        }
        // Heavy same-bank contention must show up as non-intrinsic time.
        let waited: u64 =
            rep.cores.iter().flat_map(|c| c.components[..dbp_obs::latency::INTRINSIC].iter()).sum();
        assert!(waited > 0, "contended workload must record wait cycles");
    }

    /// Attribution is observation-only: an enabled recorder changes no
    /// scheduling decision, completion, or counter.
    #[test]
    fn enabled_recorder_does_not_change_behaviour() {
        let build = |rec: Option<Recorder>| {
            let mut m = MemoryController::new(
                Dram::new(DramConfig::fast_test()),
                CtrlConfig::default(),
                Box::new(FrFcfs),
                2,
            );
            if let Some(r) = rec {
                m.attach_recorder(r);
            }
            let stride = same_bank_stride();
            for i in 0..10u64 {
                m.enqueue(MemRequest::demand_read(i, (i % 2) as usize, i * stride / 2, 0));
                m.enqueue(MemRequest::writeback(100 + i, (i % 2) as usize, i * 4096, 0));
            }
            m
        };
        let mut plain = build(None);
        let mut recorded = build(Some(Recorder::new(RecorderConfig::default())));
        let done_plain = run(&mut plain, 4_000);
        let done_rec = run(&mut recorded, 4_000);
        assert_eq!(done_plain, done_rec);
        assert_eq!(plain.stats(), recorded.stats());
        assert!(plain.latency_report().is_none());
        assert!(recorded.latency_report().is_some());
    }

    /// Cross-core same-bank conflicts charge the bank interference
    /// matrix; core-private banks keep it clean.
    #[test]
    fn bank_interference_requires_shared_banks() {
        // Shared: both cores hammer bank 0 with alternating rows.
        let mut shared = mc_recorded(2);
        let stride = same_bank_stride();
        for i in 0..8u64 {
            shared.enqueue(MemRequest::demand_read(i, (i % 2) as usize, i * stride, 0));
        }
        run(&mut shared, 4_000);
        let rep = shared.latency_report().unwrap();
        assert!(
            rep.bank_interference.off_diagonal_sum() > 0,
            "alternating-row conflicts must charge cross-core bank interference"
        );

        // Private: each core owns its own bank (consecutive pages map to
        // different banks under page coloring).
        let mut private = mc_recorded(2);
        let page = u64::from(DramConfig::fast_test().page_bytes);
        for i in 0..8u64 {
            let t = (i % 2) as usize;
            private.enqueue(MemRequest::demand_read(i, t, t as u64 * page + (i / 2) * 64, 0));
        }
        run(&mut private, 4_000);
        let rep = private.latency_report().unwrap();
        assert_eq!(
            rep.bank_interference.off_diagonal_sum(),
            0,
            "core-private banks must not show cross-core bank interference"
        );
    }

    /// Satellite: writeback drains are profiled into the write histogram.
    #[test]
    fn writeback_latency_is_recorded() {
        let mut m = mc_recorded(1);
        for i in 0..20u64 {
            m.enqueue(MemRequest::writeback(i, 0, i * 4096, 0));
        }
        run(&mut m, 2_000);
        let rep = m.latency_report().unwrap();
        assert_eq!(rep.cores[0].write.count(), 20);
        assert!(rep.cores[0].write.min() > 0);
        assert_eq!(rep.cores[0].read.count(), 0);
    }

    /// Migration traffic is invisible to the anatomy: it belongs to the
    /// repartitioning machinery, not to any core's demand stream.
    #[test]
    fn migration_traffic_is_not_profiled() {
        let mut m = mc_recorded(1);
        m.enqueue(MemRequest::migration(0, 0, 0x40, false, 0));
        m.enqueue(MemRequest::migration(1, 0, 0x80, true, 0));
        run(&mut m, 500);
        let rep = m.latency_report().unwrap();
        assert_eq!(rep.total_reads(), 0);
        assert_eq!(rep.cores[0].write.count(), 0);
    }

    /// A measurement-window reset drops the report but keeps in-flight
    /// accumulators, so spanning reads still satisfy the sum invariant
    /// (record_read would panic otherwise).
    #[test]
    fn window_reset_keeps_inflight_reads_sum_exact() {
        let mut m = mc_recorded(2);
        let stride = same_bank_stride();
        for i in 0..8u64 {
            m.enqueue(MemRequest::demand_read(i, (i % 2) as usize, i * stride, 0));
        }
        let mut done = Vec::new();
        m.tick(0, &mut done); // accrue some wait cycles
        m.tick(1, &mut done);
        m.reset_latency();
        for now in 2..4_000 {
            m.tick(now, &mut done);
        }
        assert_eq!(done.len(), 8);
        let rep = m.latency_report().unwrap();
        // All eight reads issued after the reset, so all land in the
        // post-reset report with exact breakdowns.
        assert_eq!(rep.total_reads(), 8);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::scheduler::{Fcfs, FrFcfs, ParBs, Tcm};
    use dbp_dram::DramConfig;
    use dbp_util::prop::{any_bool, check, range, vec_of, CaseResult, Config};
    use dbp_util::{prop_assert, prop_assert_eq};

    fn build(sched_idx: usize, threads: usize, recorded: bool) -> MemoryController {
        let sched: Box<dyn Scheduler> = match sched_idx {
            0 => Box::new(Fcfs),
            1 => Box::new(FrFcfs),
            2 => Box::new(ParBs::new(Default::default(), threads)),
            _ => Box::new(Tcm::new(Default::default(), threads)),
        };
        let mut mc = MemoryController::new(
            Dram::new(DramConfig::fast_test()),
            CtrlConfig { read_q_cap: 16, write_q_cap: 16, write_hi: 12, write_lo: 4 },
            sched,
            threads,
        );
        if recorded {
            mc.attach_recorder(dbp_obs::Recorder::new(Default::default()));
        }
        mc
    }

    /// Conservation: under any scheduler and any admissible request
    /// stream, every demand read eventually completes exactly once, and
    /// every accepted request is serviced.
    /// Feed-then-drain driver; returns (completions, enqueued reads).
    fn drive(
        mc: &mut MemoryController,
        reqs: &[(usize, u64, bool)],
    ) -> Result<(Vec<Completion>, u64), String> {
        let mut done = Vec::new();
        let mut now: Cycle = 0;
        let mut enq_reads = 0u64;
        let mut id = 0u64;
        let mut queue: std::collections::VecDeque<_> = reqs.iter().copied().collect();
        // Feed requests as capacity allows, then drain.
        while !queue.is_empty() || mc.in_flight() > 0 {
            if let Some(&(thread, page, is_write)) = queue.front() {
                let addr = page << 12;
                let ch = mc.channel_of(addr);
                if mc.can_accept(ch, is_write) {
                    queue.pop_front();
                    let req = if is_write {
                        MemRequest::writeback(id, thread, addr, now)
                    } else {
                        enq_reads += 1;
                        MemRequest::demand_read(id, thread, addr, now)
                    };
                    id += 1;
                    mc.enqueue(req);
                }
            }
            mc.tick(now, &mut done);
            now += 1;
            prop_assert!(now < 500_000, "livelock: {} in flight", mc.in_flight());
        }
        Ok((done, enq_reads))
    }

    fn conservation_holds(sched_idx: usize, reqs: Vec<(usize, u64, bool)>) -> CaseResult {
        let mut mc = build(sched_idx, 4, false);
        let (done, enq_reads) = drive(&mut mc, &reqs)?;
        prop_assert_eq!(done.len() as u64, enq_reads, "every read completes");
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, enq_reads, "no duplicate completions");
        // Row classification is complete and consistent.
        let mut classified = 0;
        for t in 0..4 {
            let p = mc.prof().cumulative(t);
            classified += p.row_hits + p.row_misses + p.row_conflicts;
        }
        prop_assert_eq!(classified, mc.stats().cmd_rd + mc.stats().cmd_wr);

        // Latency anatomy is observation-only: re-running with a live
        // recorder changes no completion or counter, profiles every
        // demand read, and every breakdown sums exactly to its total
        // (record_read asserts per request in all build profiles).
        let mut rec = build(sched_idx, 4, true);
        let (done_rec, _) = drive(&mut rec, &reqs)?;
        prop_assert_eq!(&done_rec, &done, "recorder must not perturb completions");
        prop_assert_eq!(rec.stats(), mc.stats(), "recorder must not perturb counters");
        let rep = rec.latency_report().expect("recorder attached");
        prop_assert_eq!(rep.total_reads(), enq_reads, "every demand read profiled");
        for core in &rep.cores {
            prop_assert_eq!(
                core.components.iter().sum::<u64>(),
                core.read.sum(),
                "components partition the summed latency"
            );
        }
        Ok(())
    }

    #[test]
    fn all_requests_complete_under_any_scheduler() {
        let g = (
            range(0usize..4),
            // 512 pages fit fast_test capacity
            vec_of((range(0usize..4), range(0u64..512), any_bool()), 1..40),
        );
        check(Config::cases(32), &g, |(sched_idx, reqs)| conservation_holds(sched_idx, reqs));
    }

    /// Regression: the shrunk counterexample recorded by the old proptest
    /// harness in `proptest-regressions/controller.txt` — a single FCFS
    /// demand read to the highest admissible page of the fast_test
    /// geometry (the original shrink reported page 512, one past the
    /// current 0..512 generator range; 511 is the boundary it pins).
    #[test]
    fn regression_single_read_highest_page_fcfs() {
        conservation_holds(0, vec![(0, 511, false)]).unwrap();
    }

    fn build_any(idx: usize, recorded: bool) -> MemoryController {
        use crate::scheduler::{Atlas, Bliss, FrFcfsCap};
        let sched: Box<dyn Scheduler> = match idx {
            0 => Box::new(Fcfs),
            1 => Box::new(FrFcfs),
            2 => Box::new(FrFcfsCap::new(Default::default())),
            3 => Box::new(ParBs::new(Default::default(), 4)),
            4 => Box::new(Atlas::new(Default::default(), 4)),
            5 => Box::new(Bliss::new(Default::default(), 4)),
            _ => Box::new(Tcm::new(Default::default(), 4)),
        };
        let mut mc = MemoryController::new(
            Dram::new(DramConfig::fast_test()),
            CtrlConfig { read_q_cap: 16, write_q_cap: 16, write_hi: 12, write_lo: 4 },
            sched,
            4,
        );
        if recorded {
            mc.attach_recorder(dbp_obs::Recorder::new(Default::default()));
        }
        mc
    }

    /// Tentpole gate at the controller level: draining a queue by jumping
    /// from `next_event` to `next_event` (with `skip_ticks` replicating
    /// the window) must be bit-exact with ticking every cycle — same
    /// completions in the same order, same counters (including
    /// drain_cycles and BLP samples), and the same per-rank refresh
    /// deadlines (i.e. exactly the same REF count per rank, even when a
    /// jump would otherwise cross `refresh_due`).
    fn skip_equals_stepped(
        sched_idx: usize,
        recorded: bool,
        reqs: &[(usize, u64, bool)],
    ) -> CaseResult {
        let feed = |mc: &mut MemoryController| {
            let mut id = 0u64;
            for &(thread, page, is_write) in reqs {
                let addr = page << 12;
                let ch = mc.channel_of(addr);
                if !mc.can_accept(ch, is_write) {
                    continue;
                }
                let req = if is_write {
                    MemRequest::writeback(id, thread, addr, 0)
                } else {
                    MemRequest::demand_read(id, thread, addr, 0)
                };
                id += 1;
                mc.enqueue(req);
            }
        };
        let mut stepped = build_any(sched_idx, recorded);
        feed(&mut stepped);
        let mut done_s = Vec::new();
        let mut now: Cycle = 0;
        while stepped.in_flight() > 0 {
            prop_assert!(now < 500_000, "stepped livelock");
            stepped.tick(now, &mut done_s);
            now += 1;
        }

        let mut skipped = build_any(sched_idx, recorded);
        feed(&mut skipped);
        let mut done_k = Vec::new();
        let mut now: Cycle = 0;
        let mut jumped = false;
        while skipped.in_flight() > 0 {
            prop_assert!(now < 500_000, "skipped livelock");
            skipped.tick(now, &mut done_k);
            let next = skipped.next_event(now).max(now + 1);
            if next > now + 1 {
                skipped.skip_ticks(now + 1, next - (now + 1));
                jumped = true;
            }
            now = next;
        }
        prop_assert!(jumped || reqs.is_empty(), "the skipping drive must actually jump");
        prop_assert_eq!(&done_k, &done_s, "completions must match exactly");
        prop_assert_eq!(skipped.stats(), stepped.stats(), "counters must match");
        for t in 0..4 {
            prop_assert_eq!(
                stepped.prof().cumulative(t),
                skipped.prof().cumulative(t),
                "thread {} profile must match",
                t
            );
        }
        let c = stepped.dram().cfg().clone();
        for ch in 0..c.channels {
            for rank in 0..c.ranks_per_channel {
                prop_assert_eq!(
                    stepped.dram().refresh_deadline(ch, rank),
                    skipped.dram().refresh_deadline(ch, rank),
                    "REF count must match on channel {} rank {}",
                    ch,
                    rank
                );
            }
        }
        if recorded {
            let (a, b) = (
                stepped.latency_report().expect("recorded"),
                skipped.latency_report().expect("recorded"),
            );
            prop_assert_eq!(a.total_reads(), b.total_reads());
            for (ca, cb) in a.cores.iter().zip(&b.cores) {
                prop_assert_eq!(&ca.components, &cb.components, "stall attribution must match");
            }
            prop_assert_eq!(
                a.bus_interference.off_diagonal_sum(),
                b.bus_interference.off_diagonal_sum()
            );
            prop_assert_eq!(
                a.bank_interference.off_diagonal_sum(),
                b.bank_interference.off_diagonal_sum()
            );
        }
        Ok(())
    }

    #[test]
    fn time_skipping_is_bit_exact_under_any_scheduler() {
        let g = (
            range(0usize..7),
            any_bool(),
            vec_of((range(0usize..4), range(0u64..512), any_bool()), 1..40),
        );
        check(Config::cases(32), &g, |(sched_idx, recorded, reqs)| {
            skip_equals_stepped(sched_idx, recorded, &reqs)
        });
    }

    /// A refresh deadline inside an otherwise-idle stretch must still
    /// fire exactly: with empty queues a naive jump would sail past
    /// `refresh_due`, but the calendar clamps to the deadline, the REF
    /// issues on exactly the same cycle as in the stepped core, and the
    /// per-rank deadline advances identically.
    #[test]
    fn refresh_fires_exactly_across_jumps() {
        let mut stepped = build_any(1, false);
        let mut skipped = build_any(1, false);
        let mut done = Vec::new();
        let horizon: Cycle = 1_000; // five fast_test tREFI periods
        for now in 0..horizon {
            stepped.tick(now, &mut done);
        }
        let mut now: Cycle = 0;
        let mut ticked = 0u64;
        while now < horizon {
            skipped.tick(now, &mut done);
            ticked += 1;
            let next = skipped.next_event(now).max(now + 1).min(horizon);
            skipped.skip_ticks(now + 1, next - (now + 1));
            now = next;
        }
        assert!(done.is_empty());
        assert_eq!(stepped.stats(), skipped.stats());
        assert!(stepped.stats().cmd_ref >= 4, "horizon spans several tREFI");
        assert!(
            ticked < 2 * stepped.stats().cmd_ref + 4,
            "idle stretches must be skipped, not stepped ({ticked} ticks)"
        );
        assert_eq!(stepped.dram().refresh_deadline(0, 0), skipped.dram().refresh_deadline(0, 0));
    }
}
