//! Memory requests as seen by the controller.

use dbp_dram::Cycle;

use crate::ThreadId;

/// Why the request exists — used for accounting, not prioritisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// A core's demand load (the only kind that produces a completion).
    Demand,
    /// A dirty-line write-back from a cache.
    Writeback,
    /// Page-migration copy traffic caused by repartitioning.
    Migration,
}

/// One request in a controller queue.
///
/// The DRAM coordinates are decoded at enqueue time by the controller;
/// `row`/`bank` etc. are cached here so schedulers can compare requests
/// without re-decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id (assigned by the creator; echoed in completions).
    pub id: u64,
    pub thread: ThreadId,
    /// Physical byte address.
    pub addr: u64,
    pub is_write: bool,
    pub kind: TrafficKind,
    /// DRAM cycle the request entered the queue.
    pub arrival: Cycle,
    // Decoded coordinates (filled by the controller at enqueue).
    pub channel: u32,
    pub rank: u32,
    pub bank: u32,
    pub row: u32,
    pub column: u32,
    /// Whether the row-hit/miss/conflict classification happened.
    pub classified: bool,
}

impl MemRequest {
    /// A demand read with undeCoded coordinates (the controller decodes).
    pub fn demand_read(id: u64, thread: ThreadId, addr: u64, arrival: Cycle) -> Self {
        Self::new(id, thread, addr, false, TrafficKind::Demand, arrival)
    }

    /// A write-back.
    pub fn writeback(id: u64, thread: ThreadId, addr: u64, arrival: Cycle) -> Self {
        Self::new(id, thread, addr, true, TrafficKind::Writeback, arrival)
    }

    /// Migration copy traffic (`is_write` selects the copy direction).
    pub fn migration(id: u64, thread: ThreadId, addr: u64, is_write: bool, arrival: Cycle) -> Self {
        Self::new(id, thread, addr, is_write, TrafficKind::Migration, arrival)
    }

    fn new(
        id: u64,
        thread: ThreadId,
        addr: u64,
        is_write: bool,
        kind: TrafficKind,
        arrival: Cycle,
    ) -> Self {
        MemRequest {
            id,
            thread,
            addr,
            is_write,
            kind,
            arrival,
            channel: 0,
            rank: 0,
            bank: 0,
            row: 0,
            column: 0,
            classified: false,
        }
    }

    /// Stable tie-break: older first, then lower id.
    pub fn older_than(&self, other: &MemRequest) -> bool {
        (self.arrival, self.id) < (other.arrival, other.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_tag_kind() {
        assert_eq!(MemRequest::demand_read(1, 0, 0, 0).kind, TrafficKind::Demand);
        assert!(MemRequest::writeback(1, 0, 0, 0).is_write);
        assert_eq!(MemRequest::migration(1, 0, 0, true, 0).kind, TrafficKind::Migration);
    }

    #[test]
    fn age_tiebreak_uses_id() {
        let a = MemRequest::demand_read(1, 0, 0, 5);
        let b = MemRequest::demand_read(2, 0, 0, 5);
        let c = MemRequest::demand_read(0, 0, 0, 6);
        assert!(a.older_than(&b));
        assert!(b.older_than(&c));
        assert!(!c.older_than(&a));
    }
}
