//! Per-thread run-time memory profiling.
//!
//! These counters are the measurement half of the paper: DBP's demand
//! estimator and TCM's clustering both consume the per-epoch memory
//! intensity (MPKI), row-buffer locality (RBL), and bank-level parallelism
//! (BLP) collected here.
//!
//! BLP is sampled the way the TCM/DBP literature defines it: on every DRAM
//! cycle in which a thread has at least one outstanding read, accumulate
//! the number of distinct banks holding its reads; BLP is the average.

/// Epoch counters for one thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadProf {
    /// Demand reads enqueued (the thread's LLC-miss read traffic).
    pub reads: u64,
    /// Writes enqueued on the thread's behalf (write-backs, migration).
    pub writes: u64,
    /// Reads serviced (column command issued).
    pub served_reads: u64,
    /// Writes serviced.
    pub served_writes: u64,
    /// First-service classification: open row matched.
    pub row_hits: u64,
    /// First-service classification: bank was closed.
    pub row_misses: u64,
    /// First-service classification: another row was open.
    pub row_conflicts: u64,
    /// Data-bus cycles consumed (attained bandwidth service).
    pub bus_cycles: u64,
    /// Sum of read queueing+service latencies, DRAM cycles.
    pub read_latency_sum: u64,
    /// Completed demand reads (for average latency).
    pub reads_completed: u64,
    /// Instructions retired this epoch (fed by the simulator).
    pub instructions: u64,
    /// Sum over sampled cycles of banks holding this thread's reads.
    pub blp_accum: u64,
    /// Sampled cycles in which the thread had outstanding reads.
    pub blp_cycles: u64,
}

impl ThreadProf {
    /// Memory intensity: demand reads (LLC misses) per kilo-instruction.
    /// Falls back to 0 when no instruction count was fed.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.reads as f64 * 1000.0 / self.instructions as f64
    }

    /// Row-buffer locality: fraction of serviced requests that hit the
    /// open row.
    pub fn rbl(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Average bank-level parallelism while the thread had outstanding
    /// reads.
    pub fn blp(&self) -> f64 {
        if self.blp_cycles == 0 {
            return 0.0;
        }
        self.blp_accum as f64 / self.blp_cycles as f64
    }

    /// Average read latency (queueing + service), DRAM cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            return 0.0;
        }
        self.read_latency_sum as f64 / self.reads_completed as f64
    }

    /// Fieldwise difference `self - prev`; lets a consumer (e.g. TCM's
    /// quantum) maintain its own window over the cumulative counters.
    pub fn delta(&self, prev: &ThreadProf) -> ThreadProf {
        ThreadProf {
            reads: self.reads - prev.reads,
            writes: self.writes - prev.writes,
            served_reads: self.served_reads - prev.served_reads,
            served_writes: self.served_writes - prev.served_writes,
            row_hits: self.row_hits - prev.row_hits,
            row_misses: self.row_misses - prev.row_misses,
            row_conflicts: self.row_conflicts - prev.row_conflicts,
            bus_cycles: self.bus_cycles - prev.bus_cycles,
            read_latency_sum: self.read_latency_sum - prev.read_latency_sum,
            reads_completed: self.reads_completed - prev.reads_completed,
            instructions: self.instructions - prev.instructions,
            blp_accum: self.blp_accum - prev.blp_accum,
            blp_cycles: self.blp_cycles - prev.blp_cycles,
        }
    }

    fn accumulate(&mut self, other: &ThreadProf) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.served_reads += other.served_reads;
        self.served_writes += other.served_writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.bus_cycles += other.bus_cycles;
        self.read_latency_sum += other.read_latency_sum;
        self.reads_completed += other.reads_completed;
        self.instructions += other.instructions;
        self.blp_accum += other.blp_accum;
        self.blp_cycles += other.blp_cycles;
    }
}

/// Row-buffer outcome of a request's first service attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    Hit,
    Miss,
    Conflict,
}

/// Live profiling state for all threads in one controller.
#[derive(Debug, Clone)]
pub struct ProfilerState {
    epoch: Vec<ThreadProf>,
    cumulative: Vec<ThreadProf>,
    /// Outstanding read count per (thread, global bank).
    bank_counts: Vec<u32>,
    /// Banks with outstanding reads, per thread.
    nonzero_banks: Vec<u32>,
    total_banks: usize,
}

impl ProfilerState {
    /// State for `threads` threads over `total_banks` banks.
    pub fn new(threads: usize, total_banks: usize) -> Self {
        ProfilerState {
            epoch: vec![ThreadProf::default(); threads],
            cumulative: vec![ThreadProf::default(); threads],
            bank_counts: vec![0; threads * total_banks],
            nonzero_banks: vec![0; threads],
            total_banks,
        }
    }

    /// Number of threads tracked.
    pub fn num_threads(&self) -> usize {
        self.epoch.len()
    }

    /// This epoch's counters for `thread`.
    pub fn epoch(&self, thread: usize) -> &ThreadProf {
        &self.epoch[thread]
    }

    /// Whole-run counters for `thread` (epoch totals already folded in,
    /// excluding the still-open epoch).
    pub fn cumulative(&self, thread: usize) -> ThreadProf {
        let mut c = self.cumulative[thread];
        c.accumulate(&self.epoch[thread]);
        c
    }

    /// Record an enqueued request.
    ///
    /// `tracked` must be false for background traffic (page-migration
    /// copies): counting those as the thread's demand behaviour would
    /// corrupt its MPKI/BLP profile — and, worse, feed back into the
    /// partitioning policy that caused the migration.
    pub fn on_enqueue(&mut self, thread: usize, global_bank: usize, is_write: bool, tracked: bool) {
        if !tracked {
            return;
        }
        if is_write {
            self.epoch[thread].writes += 1;
            return;
        }
        self.epoch[thread].reads += 1;
        let slot = thread * self.total_banks + global_bank;
        if self.bank_counts[slot] == 0 {
            self.nonzero_banks[thread] += 1;
        }
        self.bank_counts[slot] += 1;
    }

    /// Record a request's first-attempt row outcome (called once per
    /// request, when the controller first acts on it).
    pub fn classify(&mut self, thread: usize, outcome: RowOutcome) {
        let p = &mut self.epoch[thread];
        match outcome {
            RowOutcome::Hit => p.row_hits += 1,
            RowOutcome::Miss => p.row_misses += 1,
            RowOutcome::Conflict => p.row_conflicts += 1,
        }
    }

    /// Record a serviced request (column command issued) and optionally
    /// its first-attempt row outcome if not yet classified.
    ///
    /// `tracked` must match the value passed at enqueue. Untracked
    /// (migration) traffic still charges the thread's attained bandwidth
    /// — the copies are real bus usage the thread caused — but does not
    /// touch its demand counters.
    pub fn on_serviced(
        &mut self,
        thread: usize,
        global_bank: usize,
        is_write: bool,
        outcome: Option<RowOutcome>,
        t_burst: u32,
        tracked: bool,
    ) {
        let p = &mut self.epoch[thread];
        p.bus_cycles += u64::from(t_burst);
        if !tracked {
            return;
        }
        if let Some(o) = outcome {
            self.classify(thread, o);
        }
        let p = &mut self.epoch[thread];
        if is_write {
            p.served_writes += 1;
        } else {
            p.served_reads += 1;
            let slot = thread * self.total_banks + global_bank;
            debug_assert!(self.bank_counts[slot] > 0);
            self.bank_counts[slot] -= 1;
            if self.bank_counts[slot] == 0 {
                self.nonzero_banks[thread] -= 1;
            }
        }
    }

    /// Record a completed demand read and its total latency.
    pub fn on_read_complete(&mut self, thread: usize, latency: u64) {
        self.epoch[thread].read_latency_sum += latency;
        self.epoch[thread].reads_completed += 1;
    }

    /// Per-cycle BLP sampling.
    pub fn sample_blp(&mut self) {
        for (t, p) in self.epoch.iter_mut().enumerate() {
            let n = self.nonzero_banks[t];
            if n > 0 {
                p.blp_accum += u64::from(n);
                p.blp_cycles += 1;
            }
        }
    }

    /// Bulk-equivalent of `count` consecutive [`Self::sample_blp`] calls.
    ///
    /// Valid only while queue occupancy is static (no enqueue/service in
    /// the window): `nonzero_banks` is then constant, so `count` samples
    /// each add the same `n`.
    pub fn sample_blp_n(&mut self, count: u64) {
        for (t, p) in self.epoch.iter_mut().enumerate() {
            let n = self.nonzero_banks[t];
            if n > 0 {
                p.blp_accum += u64::from(n) * count;
                p.blp_cycles += count;
            }
        }
    }

    /// Feed retired-instruction deltas from the cores.
    pub fn add_instructions(&mut self, thread: usize, delta: u64) {
        self.epoch[thread].instructions += delta;
    }

    /// Close the epoch: return its per-thread counters and reset them
    /// (live queue state is preserved).
    pub fn take_epoch(&mut self) -> Vec<ThreadProf> {
        let snapshot = self.epoch.clone();
        for (c, e) in self.cumulative.iter_mut().zip(&snapshot) {
            c.accumulate(e);
        }
        for e in &mut self.epoch {
            *e = ThreadProf::default();
        }
        snapshot
    }

    /// Total attained bus cycles this epoch across threads.
    pub fn total_bus_cycles(&self) -> u64 {
        self.epoch.iter().map(|p| p.bus_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blp_counts_distinct_banks() {
        let mut p = ProfilerState::new(1, 8);
        p.on_enqueue(0, 0, false, true);
        p.on_enqueue(0, 1, false, true);
        p.on_enqueue(0, 1, false, true); // same bank, still 2 distinct
        p.sample_blp();
        assert_eq!(p.epoch(0).blp_accum, 2);
        p.on_serviced(0, 1, false, None, 4, true);
        p.sample_blp();
        assert_eq!(p.epoch(0).blp_accum, 4); // still banks {0,1}
        p.on_serviced(0, 1, false, None, 4, true);
        p.sample_blp();
        assert_eq!(p.epoch(0).blp_accum, 5); // bank 1 drained
        assert!((p.epoch(0).blp() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_threads_do_not_sample() {
        let mut p = ProfilerState::new(2, 4);
        p.on_enqueue(0, 0, false, true);
        p.sample_blp();
        assert_eq!(p.epoch(0).blp_cycles, 1);
        assert_eq!(p.epoch(1).blp_cycles, 0);
    }

    #[test]
    fn writes_do_not_affect_blp() {
        let mut p = ProfilerState::new(1, 4);
        p.on_enqueue(0, 2, true, true);
        p.sample_blp();
        assert_eq!(p.epoch(0).blp_cycles, 0);
        assert_eq!(p.epoch(0).writes, 1);
    }

    #[test]
    fn rbl_from_classification() {
        let mut p = ProfilerState::new(1, 4);
        for _ in 0..3 {
            p.on_enqueue(0, 0, false, true);
        }
        p.on_serviced(0, 0, false, Some(RowOutcome::Miss), 4, true);
        p.on_serviced(0, 0, false, Some(RowOutcome::Hit), 4, true);
        p.on_serviced(0, 0, false, Some(RowOutcome::Hit), 4, true);
        assert!((p.epoch(0).rbl() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_uses_fed_instructions() {
        let mut p = ProfilerState::new(1, 4);
        for _ in 0..10 {
            p.on_enqueue(0, 0, false, true);
        }
        p.add_instructions(0, 2000);
        assert!((p.epoch(0).mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn take_epoch_resets_but_keeps_queue_state() {
        let mut p = ProfilerState::new(1, 4);
        p.on_enqueue(0, 0, false, true);
        let snap = p.take_epoch();
        assert_eq!(snap[0].reads, 1);
        assert_eq!(p.epoch(0).reads, 0);
        // The outstanding request still counts toward BLP.
        p.sample_blp();
        assert_eq!(p.epoch(0).blp_accum, 1);
        // Cumulative view includes both epochs.
        assert_eq!(p.cumulative(0).reads, 1);
        assert_eq!(p.cumulative(0).blp_accum, 1);
    }

    #[test]
    fn avg_latency() {
        let mut p = ProfilerState::new(1, 4);
        p.on_read_complete(0, 100);
        p.on_read_complete(0, 200);
        assert!((p.epoch(0).avg_read_latency() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_yield_zero_not_nan() {
        // Misses without retired instructions (a thread stalled the whole
        // epoch): MPKI must be 0.0, not a division by zero.
        let stalled = ThreadProf { reads: 50, row_misses: 50, ..ThreadProf::default() };
        assert_eq!(stalled.mpki(), 0.0);
        assert!(stalled.mpki().is_finite());

        // BLP pressure recorded but never sampled (epoch ended between
        // enqueue and the first sample tick).
        let unsampled = ThreadProf { blp_accum: 7, ..ThreadProf::default() };
        assert_eq!(unsampled.blp(), 0.0);
        assert!(unsampled.blp().is_finite());

        // No serviced reads at all: RBL has no classified accesses.
        let idle = ThreadProf { instructions: 10_000, ..ThreadProf::default() };
        assert_eq!(idle.rbl(), 0.0);
        assert!(idle.rbl().is_finite());

        // Latency accumulated but no read completed (in-flight at epoch
        // boundary): average latency must stay finite.
        let in_flight = ThreadProf { read_latency_sum: 400, ..ThreadProf::default() };
        assert_eq!(in_flight.avg_read_latency(), 0.0);
        assert!(in_flight.avg_read_latency().is_finite());
    }
}
