//! Synthetic SPEC CPU2006-like workloads.
//!
//! The paper evaluates on SPEC CPU2006 multiprogrammed mixes; those traces
//! are proprietary, so this crate substitutes **parameterised synthetic
//! generators**. The substitution is sound for this particular paper:
//! every policy under study (DBP, equal bank partitioning, MCP, TCM)
//! makes its decisions from exactly three per-thread statistics — memory
//! intensity (MPKI), row-buffer locality (RBL), and bank-level
//! parallelism (BLP) — plus the address/bank layout. The generators are
//! therefore built to hit *calibrated targets* for those three statistics
//! (see [`profiles`] for the per-benchmark values, taken from the
//! published characterisations in the TCM/MCP line of work), which
//! exercises the same policy decision paths as the real traces.
//!
//! - [`profiles`] — the benchmark table (`mcf`-like, `libquantum`-like …).
//! - [`generator`] — the trace generator ([`SyntheticTrace`]).
//! - [`mixes`] — the paper-style 4-core workload mixes, grouped by the
//!   fraction of memory-intensive applications.

pub mod generator;
pub mod mixes;
pub mod profiles;

pub use generator::SyntheticTrace;
pub use mixes::{mixes_4core, mixes_8core, scale_mix, Mix};
pub use profiles::{BenchmarkProfile, IntensityClass};
