//! The multiprogrammed workload mixes of the evaluation.
//!
//! The paper groups its 4-core mixes by the fraction of memory-intensive
//! applications (0 %, 25 %, 50 %, 75 %, 100 %); bank partitioning matters
//! most when several intensive applications collide, while the mixed
//! categories stress the non-intensive grouping rule and TCM's clustering.

use crate::profiles::{by_name, BenchmarkProfile};

/// A named multiprogrammed workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// Mix identifier, e.g. `"mix50-1"`.
    pub name: &'static str,
    /// Percentage of memory-intensive applications (the category).
    pub intensive_pct: u32,
    /// Benchmark names, one per core.
    pub benchmarks: Vec<&'static str>,
}

impl Mix {
    /// Resolve the benchmark profiles.
    pub fn profiles(&self) -> Vec<&'static BenchmarkProfile> {
        self.benchmarks.iter().map(|n| by_name(n)).collect()
    }

    /// Number of cores this mix occupies.
    pub fn cores(&self) -> usize {
        self.benchmarks.len()
    }
}

fn mix(name: &'static str, pct: u32, benchmarks: &[&'static str]) -> Mix {
    Mix { name, intensive_pct: pct, benchmarks: benchmarks.to_vec() }
}

/// The 15 four-core mixes used throughout the reproduction.
pub fn mixes_4core() -> Vec<Mix> {
    vec![
        // 0% intensive: partitioning should at least not hurt.
        mix("mix0-1", 0, &["povray", "gobmk", "hmmer", "namd"]),
        mix("mix0-2", 0, &["gcc", "sjeng", "calculix", "perlbench"]),
        // 25% intensive.
        mix("mix25-1", 25, &["mcf", "povray", "gobmk", "namd"]),
        mix("mix25-2", 25, &["libquantum", "gcc", "sjeng", "hmmer"]),
        mix("mix25-3", 25, &["lbm", "astar", "calculix", "perlbench"]),
        // 50% intensive.
        mix("mix50-1", 50, &["mcf", "libquantum", "povray", "gobmk"]),
        mix("mix50-2", 50, &["lbm", "omnetpp", "gcc", "sjeng"]),
        mix("mix50-3", 50, &["milc", "soplex", "hmmer", "namd"]),
        mix("mix50-4", 50, &["GemsFDTD", "bwaves", "astar", "calculix"]),
        // 75% intensive.
        mix("mix75-1", 75, &["mcf", "lbm", "libquantum", "povray"]),
        mix("mix75-2", 75, &["milc", "leslie3d", "omnetpp", "gcc"]),
        mix("mix75-3", 75, &["soplex", "sphinx3", "bwaves", "sjeng"]),
        // 100% intensive.
        mix("mix100-1", 100, &["mcf", "lbm", "libquantum", "milc"]),
        mix("mix100-2", 100, &["soplex", "GemsFDTD", "omnetpp", "bwaves"]),
        mix("mix100-3", 100, &["mcf", "libquantum", "leslie3d", "sphinx3"]),
    ]
}

/// Dedicated 8-core mixes (for the core-count study and larger-CMP
/// experiments): same category structure as the 4-core set, drawn from
/// the same benchmark pool without per-mix repetition.
pub fn mixes_8core() -> Vec<Mix> {
    vec![
        mix(
            "mix8-25",
            25,
            &["mcf", "libquantum", "gcc", "astar", "povray", "gobmk", "namd", "sjeng"],
        ),
        mix(
            "mix8-50",
            50,
            &["mcf", "lbm", "libquantum", "milc", "gcc", "hmmer", "calculix", "perlbench"],
        ),
        mix(
            "mix8-75",
            75,
            &["mcf", "lbm", "libquantum", "milc", "soplex", "GemsFDTD", "povray", "namd"],
        ),
        mix(
            "mix8-100",
            100,
            &["mcf", "lbm", "libquantum", "milc", "soplex", "GemsFDTD", "omnetpp", "bwaves"],
        ),
    ]
}

/// Scale a mix to `cores` cores by repeating its benchmark list.
///
/// Used by the core-count sensitivity study (each repetition gets its own
/// seed downstream, so repeated benchmarks do not share address streams).
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn scale_mix(mix: &Mix, cores: usize) -> Mix {
    assert!(cores > 0, "cannot scale to zero cores");
    let benchmarks: Vec<&'static str> =
        (0..cores).map(|i| mix.benchmarks[i % mix.benchmarks.len()]).collect();
    Mix { name: mix.name, intensive_pct: mix.intensive_pct, benchmarks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::IntensityClass;

    #[test]
    fn all_mixes_resolve_and_are_4core() {
        for m in mixes_4core() {
            assert_eq!(m.cores(), 4, "{}", m.name);
            assert_eq!(m.profiles().len(), 4);
        }
    }

    #[test]
    fn intensive_fraction_matches_category() {
        for m in mixes_4core() {
            let intensive =
                m.profiles().iter().filter(|p| p.class() == IntensityClass::High).count() as u32;
            assert_eq!(intensive * 25, m.intensive_pct, "{}", m.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = mixes_4core().iter().map(|m| m.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn category_coverage() {
        let mixes = mixes_4core();
        for pct in [0, 25, 50, 75, 100] {
            assert!(mixes.iter().any(|m| m.intensive_pct == pct), "no mix in category {pct}%");
        }
    }

    #[test]
    fn eight_core_mixes_resolve() {
        for m in mixes_8core() {
            assert_eq!(m.cores(), 8, "{}", m.name);
            let intensive =
                m.profiles().iter().filter(|p| p.class() == IntensityClass::High).count() as u32;
            assert_eq!(intensive * 100 / 8, m.intensive_pct, "{}", m.name);
        }
    }

    #[test]
    fn scaling_repeats_benchmarks() {
        let m = &mixes_4core()[0];
        let m8 = scale_mix(m, 8);
        assert_eq!(m8.cores(), 8);
        assert_eq!(m8.benchmarks[4], m.benchmarks[0]);
    }
}
