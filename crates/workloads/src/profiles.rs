//! The benchmark table: per-benchmark memory-behaviour targets.
//!
//! Values approximate the published SPEC CPU2006 characterisations used
//! across the memory-scheduling literature (TCM, MCP, and the bank
//! partitioning papers): `libquantum` is the canonical single-stream
//! high-locality application, `mcf` the canonical high-MLP random-access
//! one, `povray`/`gamess` the canonical compute-bound ones, and so on.
//! What matters for reproducing the paper is the *class structure* —
//! intensity tiers and the RBL/BLP spread within the intensive tier — not
//! the third significant digit.

/// Memory-intensity tier (the mix taxonomy of the evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntensityClass {
    /// MPKI >= 10: dominated by DRAM behaviour.
    High,
    /// 1 <= MPKI < 10: sensitive but not dominated.
    Medium,
    /// MPKI < 1: essentially compute-bound.
    Low,
}

/// Target memory behaviour of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC-like, suffix-free).
    pub name: &'static str,
    /// Target demand-read misses per kilo-instruction.
    pub mpki: f64,
    /// Target row-buffer locality in [0, 1).
    pub rbl: f64,
    /// Target bank-level parallelism (concurrent access streams).
    pub blp: f64,
    /// Working-set size in 4 KiB pages.
    pub footprint_pages: u64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
}

impl BenchmarkProfile {
    /// The intensity tier this profile falls into.
    pub fn class(&self) -> IntensityClass {
        if self.mpki >= 10.0 {
            IntensityClass::High
        } else if self.mpki >= 1.0 {
            IntensityClass::Medium
        } else {
            IntensityClass::Low
        }
    }
}

const fn p(
    name: &'static str,
    mpki: f64,
    rbl: f64,
    blp: f64,
    footprint_pages: u64,
    write_frac: f64,
) -> BenchmarkProfile {
    BenchmarkProfile { name, mpki, rbl, blp, footprint_pages, write_frac }
}

/// The full benchmark table.
pub const PROFILES: &[BenchmarkProfile] = &[
    // High intensity (MPKI >= 10).
    p("mcf", 35.0, 0.25, 5.5, 8192, 0.15),
    p("lbm", 30.0, 0.85, 4.0, 8192, 0.40),
    p("libquantum", 25.0, 0.97, 1.2, 8192, 0.25),
    p("soplex", 21.0, 0.60, 3.2, 6144, 0.20),
    p("bwaves", 19.0, 0.88, 2.8, 8192, 0.25),
    p("milc", 18.0, 0.65, 3.0, 6144, 0.30),
    p("GemsFDTD", 16.0, 0.55, 4.2, 8192, 0.30),
    p("leslie3d", 15.0, 0.75, 3.5, 6144, 0.30),
    p("omnetpp", 12.0, 0.30, 2.6, 4096, 0.20),
    p("sphinx3", 11.0, 0.72, 2.2, 4096, 0.10),
    // Medium intensity (1 <= MPKI < 10).
    p("wrf", 7.0, 0.68, 2.3, 4096, 0.25),
    p("zeusmp", 6.0, 0.60, 2.8, 4096, 0.30),
    p("cactusADM", 5.5, 0.45, 2.4, 4096, 0.30),
    p("astar", 4.5, 0.35, 1.8, 2048, 0.15),
    p("gcc", 3.2, 0.50, 2.0, 2048, 0.25),
    p("bzip2", 2.8, 0.52, 1.6, 2048, 0.20),
    p("hmmer", 1.6, 0.42, 1.4, 1024, 0.20),
    p("h264ref", 1.3, 0.78, 1.2, 1024, 0.15),
    // Low intensity (MPKI < 1).
    p("perlbench", 0.8, 0.55, 1.3, 1024, 0.20),
    p("tonto", 0.6, 0.60, 1.2, 1024, 0.20),
    p("gobmk", 0.55, 0.45, 1.2, 512, 0.15),
    p("sjeng", 0.4, 0.40, 1.1, 512, 0.10),
    p("calculix", 0.35, 0.65, 1.1, 512, 0.15),
    p("namd", 0.2, 0.60, 1.0, 512, 0.10),
    p("povray", 0.08, 0.70, 1.0, 256, 0.10),
    p("gamess", 0.05, 0.70, 1.0, 256, 0.10),
];

/// Look up a profile by name.
///
/// # Panics
///
/// Panics if `name` is not in [`PROFILES`] — benchmark names in mixes are
/// static and a typo is a programming error.
pub fn by_name(name: &str) -> &'static BenchmarkProfile {
    PROFILES.iter().find(|b| b.name == name).unwrap_or_else(|| panic!("unknown benchmark {name:?}"))
}

/// All profiles in `class`.
pub fn by_class(class: IntensityClass) -> Vec<&'static BenchmarkProfile> {
    PROFILES.iter().filter(|b| b.class() == class).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PROFILES.iter().map(|b| b.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn classes_are_populated() {
        assert!(by_class(IntensityClass::High).len() >= 8);
        assert!(by_class(IntensityClass::Medium).len() >= 6);
        assert!(by_class(IntensityClass::Low).len() >= 6);
    }

    #[test]
    fn values_are_sane() {
        for b in PROFILES {
            assert!(b.mpki > 0.0, "{}", b.name);
            assert!((0.0..1.0).contains(&b.rbl), "{}", b.name);
            assert!(b.blp >= 1.0, "{}", b.name);
            assert!(b.footprint_pages > 0, "{}", b.name);
            assert!((0.0..0.9).contains(&b.write_frac), "{}", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("mcf").class(), IntensityClass::High);
        assert_eq!(by_name("povray").class(), IntensityClass::Low);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        by_name("doom-eternal");
    }

    #[test]
    fn canonical_shapes() {
        // libquantum: streaming — near-unit BLP, extreme RBL.
        let lq = by_name("libquantum");
        assert!(lq.rbl > 0.9 && lq.blp < 2.0);
        // mcf: random — low RBL, high BLP.
        let mcf = by_name("mcf");
        assert!(mcf.rbl < 0.4 && mcf.blp > 4.0);
    }
}
