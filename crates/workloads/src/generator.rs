//! The synthetic trace generator.
//!
//! Produces an infinite access stream hitting the profile's MPKI / RBL /
//! BLP targets:
//!
//! - **MPKI**: accesses stride through a footprint much larger than the
//!   private caches, so essentially every access is an LLC miss; the
//!   compute gap between accesses is sized so misses-per-kilo-instruction
//!   matches the target (corrected for the store fraction, since MPKI
//!   counts demand reads).
//! - **BLP**: the generator maintains `round(blp)` independent streams in
//!   disjoint address regions and emits one access from each back-to-back
//!   (a *burst*), so a window-limited core naturally keeps that many
//!   misses to distinct pages — hence banks — in flight.
//! - **RBL**: each stream walks runs of consecutive lines within one page
//!   (geometric run length with mean `1/(1-rbl)`), then advances to the
//!   next page of its region (wrapping); consecutive same-page lines hit
//!   the open row. Sequential page advance matters: it keeps each
//!   stream's position rotating through the banks in lockstep with its
//!   siblings, so a thread's streams occupy *distinct* banks at any
//!   instant — the same property real streaming kernels (multiple arrays
//!   walked at a common index) have. Low-RBL profiles get short runs, so
//!   their accesses are effectively random at row granularity regardless.

use dbp_cpu::{TraceOp, TraceSource};
use dbp_util::Rng;

use crate::profiles::BenchmarkProfile;

/// Lines per 4 KiB page at 64 B lines.
const LINES_PER_PAGE: u64 = 64;
const PAGE_BITS: u32 = 12;
const LINE_BITS: u32 = 6;

#[derive(Debug, Clone)]
struct Stream {
    /// First page of this stream's region.
    base_vpn: u64,
    /// Pages in the region.
    region_pages: u64,
    vpn: u64,
    line: u64,
    run_left: u32,
}

/// An infinite trace targeting a [`BenchmarkProfile`].
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    profile: BenchmarkProfile,
    streams: Vec<Stream>,
    burst_pos: usize,
    /// Mean compute gap carried by the first access of each burst.
    burst_gap: f64,
    rng: Rng,
}

impl SyntheticTrace {
    /// Build a generator for `profile`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile's footprint is too small to give each stream
    /// at least one page.
    pub fn new(profile: &BenchmarkProfile, seed: u64) -> Self {
        let k = (profile.blp.round() as usize).max(1);
        let region_pages = profile.footprint_pages / k as u64;
        assert!(region_pages > 0, "footprint too small for {} streams", k);
        // Regions are spaced out so streams never share a page.
        let streams = (0..k as u64)
            .map(|i| Stream {
                base_vpn: i * region_pages,
                region_pages,
                vpn: i * region_pages,
                line: 0,
                run_left: 0,
            })
            .collect();
        // Each access should represent `1000 / apki` instructions, where
        // apki is scaled so the *read* MPKI matches the target despite a
        // write_frac share of stores.
        let apki = profile.mpki / (1.0 - profile.write_frac).max(0.05);
        let per_access_gap = (1000.0 / apki).max(0.0);
        SyntheticTrace {
            profile: *profile,
            streams,
            burst_pos: 0,
            burst_gap: per_access_gap * k as f64 - (k as f64 - 1.0),
            rng: Rng::seed_from_u64(seed ^ 0x5EED_0000),
        }
    }

    /// The profile this trace targets.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    fn sample_run(&mut self) -> u32 {
        // Geometric with continue-probability rbl, capped at a page.
        let mut run = 1u32;
        while (run as u64) < LINES_PER_PAGE && self.rng.gen_bool(self.profile.rbl) {
            run += 1;
        }
        run
    }
}

impl TraceSource for SyntheticTrace {
    fn next_op(&mut self) -> TraceOp {
        let k = self.streams.len();
        // The first access of each burst carries the burst's compute gap,
        // jittered +/-50% for arrival-time variety; the rest follow
        // back-to-back so their misses overlap (BLP).
        let gap = if self.burst_pos == 0 {
            let jitter = 0.5 + self.rng.gen_f64();
            (self.burst_gap * jitter).round().max(0.0) as u32
        } else {
            0
        };
        let run = if self.streams[self.burst_pos].run_left == 0
            || self.streams[self.burst_pos].line >= LINES_PER_PAGE
        {
            Some(self.sample_run())
        } else {
            None
        };
        // Runs start at a random line (with room to complete), so short-run
        // profiles touch different lines on successive laps of their region
        // and keep missing the caches.
        let start = run
            .map(|r| self.rng.gen_range(0..=(LINES_PER_PAGE - u64::from(r).min(LINES_PER_PAGE))));
        let s = &mut self.streams[self.burst_pos];
        if let (Some(r), Some(start)) = (run, start) {
            // Advance to the next page of the region, wrapping around.
            let next = (s.vpn + 1 - s.base_vpn) % s.region_pages;
            s.vpn = s.base_vpn + next;
            s.line = start;
            s.run_left = r;
        }
        let addr = (s.vpn << PAGE_BITS) | (s.line << LINE_BITS);
        s.line += 1;
        s.run_left -= 1;
        self.burst_pos = (self.burst_pos + 1) % k;
        let is_write = self.rng.gen_bool(self.profile.write_frac);
        TraceOp { gap, addr, is_write }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::by_name;

    fn collect(name: &str, n: usize) -> Vec<TraceOp> {
        let mut t = SyntheticTrace::new(by_name(name), 42);
        (0..n).map(|_| t.next_op()).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = collect("mcf", 1000);
        let mut t = SyntheticTrace::new(by_name("mcf"), 42);
        let b: Vec<TraceOp> = (0..1000).map(|_| t.next_op()).collect();
        assert_eq!(a, b);
        let mut t2 = SyntheticTrace::new(by_name("mcf"), 43);
        let c: Vec<TraceOp> = (0..1000).map(|_| t2.next_op()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn apki_matches_target() {
        for name in ["mcf", "libquantum", "povray", "gcc"] {
            let prof = by_name(name);
            let ops = collect(name, 20_000);
            let instructions: u64 = ops.iter().map(|o| u64::from(o.gap) + 1).sum();
            let reads = ops.iter().filter(|o| !o.is_write).count() as f64;
            let read_mpki = reads * 1000.0 / instructions as f64;
            let err = (read_mpki - prof.mpki).abs() / prof.mpki;
            assert!(
                err < 0.15,
                "{name}: generated read MPKI {read_mpki:.2} vs target {:.2}",
                prof.mpki
            );
        }
    }

    #[test]
    fn run_structure_matches_rbl() {
        // Average same-page run length ~ 1/(1-rbl).
        for name in ["libquantum", "mcf"] {
            let prof = by_name(name);
            let ops = collect(name, 50_000);
            // Count per-stream page-run lengths by tracking page changes
            // per region.
            let k = prof.blp.round() as usize;
            let mut runs = 0u64;
            let mut accesses = 0u64;
            let mut last_page: Vec<Option<u64>> = vec![None; k];
            for (i, op) in ops.iter().enumerate() {
                let stream = i % k;
                let page = op.addr >> 12;
                accesses += 1;
                if last_page[stream] != Some(page) {
                    runs += 1;
                    last_page[stream] = Some(page);
                }
            }
            let mean_run = accesses as f64 / runs as f64;
            let target = (1.0 / (1.0 - prof.rbl)).min(64.0);
            let err = (mean_run - target).abs() / target;
            assert!(err < 0.2, "{name}: mean run {mean_run:.2} vs target {target:.2}");
        }
    }

    #[test]
    fn streams_occupy_disjoint_regions() {
        let prof = by_name("mcf");
        let k = prof.blp.round() as u64;
        let region = prof.footprint_pages / k;
        let ops = collect("mcf", 10_000);
        for (i, op) in ops.iter().enumerate() {
            let stream = (i % k as usize) as u64;
            let vpn = op.addr >> 12;
            assert!(vpn >= stream * region && vpn < (stream + 1) * region);
        }
    }

    #[test]
    fn write_fraction_approximates_target() {
        let prof = by_name("lbm");
        let ops = collect("lbm", 20_000);
        let wf = ops.iter().filter(|o| o.is_write).count() as f64 / ops.len() as f64;
        assert!((wf - prof.write_frac).abs() < 0.05);
    }

    #[test]
    fn footprint_is_respected() {
        let prof = by_name("sjeng");
        let ops = collect("sjeng", 20_000);
        let max_vpn = ops.iter().map(|o| o.addr >> 12).max().unwrap();
        assert!(max_vpn < prof.footprint_pages);
    }
}
