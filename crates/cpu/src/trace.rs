//! Instruction-trace abstraction consumed by the core model.

/// One trace record: `gap` compute instructions followed by one memory
/// access to virtual address `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Compute instructions preceding the access.
    pub gap: u32,
    /// Virtual byte address of the access.
    pub addr: u64,
    /// Whether the access is a store.
    pub is_write: bool,
}

/// An unbounded instruction stream.
///
/// Sources must be infinite: the simulator runs every thread until a fixed
/// instruction count, so finite traces should replay (see
/// [`ReplaySource`]).
pub trait TraceSource {
    /// Produce the next record.
    fn next_op(&mut self) -> TraceOp;
}

impl<F: FnMut() -> TraceOp> TraceSource for F {
    fn next_op(&mut self) -> TraceOp {
        self()
    }
}

/// Replays a finite recorded trace forever.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl ReplaySource {
    /// Wrap a recorded trace.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "a replay trace must contain at least one op");
        ReplaySource { ops, pos: 0 }
    }

    /// Length of one replay iteration.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for ReplaySource {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_wraps_around() {
        let mut s = ReplaySource::new(vec![
            TraceOp { gap: 1, addr: 0, is_write: false },
            TraceOp { gap: 2, addr: 64, is_write: true },
        ]);
        assert_eq!(s.next_op().addr, 0);
        assert_eq!(s.next_op().addr, 64);
        assert_eq!(s.next_op().addr, 0);
    }

    #[test]
    fn closures_are_sources() {
        let mut n = 0u64;
        let mut src = move || {
            n += 64;
            TraceOp { gap: 0, addr: n, is_write: false }
        };
        assert_eq!(TraceSource::next_op(&mut src).addr, 64);
        assert_eq!(TraceSource::next_op(&mut src).addr, 128);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_replay_panics() {
        let _ = ReplaySource::new(vec![]);
    }
}
