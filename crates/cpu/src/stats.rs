//! Per-core execution counters.

/// Counters accumulated by [`crate::Core`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles ticked.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Loads dispatched to the memory system.
    pub loads: u64,
    /// Stores dispatched to the memory system.
    pub stores: u64,
    /// Cycles in which nothing retired while work was in flight.
    pub retire_stall_cycles: u64,
    /// Cycles dispatch stopped because the window was full.
    pub window_full_cycles: u64,
    /// Cycles dispatch stopped because the memory system said retry.
    pub mem_retry_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.retired as f64 / self.cycles as f64
    }

    /// Memory accesses per kilo-instruction (loads + stores).
    pub fn apki(&self) -> f64 {
        if self.retired == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 * 1000.0 / self.retired as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_apki() {
        let s = CoreStats { cycles: 100, retired: 250, loads: 20, stores: 5, ..Default::default() };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.apki() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn zero_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.apki(), 0.0);
    }
}
