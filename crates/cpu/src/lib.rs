//! Trace-driven core model with ROB-limited memory-level parallelism.
//!
//! Each core consumes an infinite stream of [`trace::TraceOp`]s — "`gap`
//! compute instructions, then one memory access" — and models an
//! out-of-order window abstractly:
//!
//! - Compute instructions dispatch and retire at up to `width` per cycle.
//! - Loads occupy the window until their data returns; retirement is
//!   in-order, so an outstanding load at the window head stalls the core.
//! - Dispatch stalls when the window (`rob`) is full, which naturally
//!   bounds the core's achievable memory-level parallelism.
//! - Stores complete immediately (an ideal store buffer); their DRAM
//!   traffic is modelled by the cache hierarchy's write-backs.
//!
//! This is the standard abstraction used by memory-scheduling studies
//! (USIMM-style): faithful enough to expose bank-level parallelism and
//! latency sensitivity, cheap enough to sweep hundreds of configurations.

pub mod core_model;
pub mod stats;
pub mod trace;

pub use core_model::{Core, CoreConfig, IdleState, MemIssue};
pub use stats::CoreStats;
pub use trace::{ReplaySource, TraceOp, TraceSource};
