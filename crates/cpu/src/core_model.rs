//! The abstract out-of-order core.

use std::collections::VecDeque;

use crate::stats::CoreStats;
use crate::trace::{TraceOp, TraceSource};

/// Core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer (instruction window) capacity.
    pub rob: u64,
    /// Dispatch/retire width, instructions per cycle.
    pub width: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig { rob: 128, width: 4 }
    }
}

/// How the memory system answered a just-dispatched access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemIssue {
    /// Satisfied after `latency` CPU cycles (cache hit, or a posted store).
    Done { latency: u32 },
    /// A DRAM round-trip is in flight; [`Core::complete`] will be called
    /// with the access's load id.
    Pending,
    /// Resources exhausted (MSHRs, controller queue); retry next cycle.
    Retry,
}

/// What the next [`Core::tick`] would do, assuming no completion arrives
/// and no timer fires first: either it can make progress on its own
/// (`Active`), or it is provably stuck until an external event
/// (`Blocked`), reported with the events that could unstick it. Drives
/// the time-skipping core: a `Blocked` core's ticks are no-ops except
/// for stall counters, which [`Core::skip_cycles`] advances in bulk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleState {
    /// The next tick makes progress without external input.
    Active,
    /// Nothing happens until a timer fires, a DRAM completion arrives,
    /// or a repeated memory poll stops returning [`MemIssue::Retry`].
    Blocked {
        /// Lower bound on the earliest `done_at` timer among in-flight
        /// loads, if any: the core must tick at (or before) that cycle.
        /// May be stale-early after a DRAM completion cleared the timer
        /// it tracked — waking early is a no-op tick, never an error.
        timer: Option<u64>,
        /// The memory poll `(vaddr, is_write)` the next tick would
        /// repeat. The caller must prove it keeps returning `Retry`
        /// throughout a skipped window. `None` when the window is full
        /// (the tick polls nothing).
        mem_poll: Option<(u64, bool)>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Load {
    seq: u64,
    id: u64,
    done_at: Option<u64>,
    done: bool,
}

#[derive(Debug, Clone, Copy)]
struct PendingOp {
    seq: u64,
    addr: u64,
    is_write: bool,
}

/// One core: consumes a trace, exposes per-cycle [`Core::tick`].
///
/// Sequence numbers count instructions. `dispatched - retired` is the
/// window occupancy; loads sit in `inflight` until their data arrives and
/// block retirement while at the window head.
pub struct Core {
    cfg: CoreConfig,
    source: Box<dyn TraceSource>,
    /// Seq of the next instruction to dispatch.
    dispatched: u64,
    /// Seq of the next instruction to retire.
    retired: u64,
    /// Stream position: seq the next fetched trace op starts from.
    stream_pos: u64,
    pending: Option<PendingOp>,
    inflight: VecDeque<Load>,
    /// Earliest armed `done_at` among `inflight` (`u64::MAX` when none):
    /// lets `tick` skip the timer sweep until one can actually fire. May
    /// go stale-early when `complete` clears a timer — the sweep then
    /// simply finds nothing and re-derives the true minimum.
    next_timer: u64,
    next_load_id: u64,
    stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cfg", &self.cfg)
            .field("dispatched", &self.dispatched)
            .field("retired", &self.retired)
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

impl Core {
    /// Build a core reading from `source`.
    pub fn new(cfg: CoreConfig, source: Box<dyn TraceSource>) -> Self {
        assert!(cfg.rob > 0 && cfg.width > 0, "rob and width must be positive");
        Core {
            cfg,
            source,
            dispatched: 0,
            retired: 0,
            stream_pos: 0,
            pending: None,
            inflight: VecDeque::new(),
            next_timer: u64::MAX,
            next_load_id: 0,
            stats: CoreStats::default(),
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Upper bound on instructions retired in one tick (the pipeline
    /// width). Time-skipping uses it to fence a forwarded compute window
    /// off any retired-instruction threshold observed by the run loop.
    pub fn max_retire_per_cycle(&self) -> u64 {
        u64::from(self.cfg.width)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Outstanding (not yet completed) loads — the core's instantaneous
    /// memory-level parallelism.
    pub fn outstanding_loads(&self) -> usize {
        self.inflight.iter().filter(|l| !l.done).count()
    }

    /// Mark the load identified by `load_id` complete (DRAM data arrived).
    pub fn complete(&mut self, load_id: u64) {
        for l in &mut self.inflight {
            if l.id == load_id {
                l.done = true;
                l.done_at = None;
                return;
            }
        }
        debug_assert!(false, "completion for unknown load {load_id}");
    }

    /// Classify what the next tick would do (pure; mirrors the control
    /// flow of [`Core::tick`] without running it).
    pub fn idle_state(&self) -> IdleState {
        if self.dispatched > self.retired {
            match self.inflight.front() {
                Some(front) if front.seq == self.retired => {
                    if front.done {
                        // Width-limited leftover: it retires next tick.
                        return IdleState::Active;
                    }
                    // Head-of-window load outstanding: retire is blocked.
                }
                // A compute gap (or no load at all) retires next tick.
                _ => return IdleState::Active,
            }
        }
        // `next_timer` is a maintained lower bound on the sweep's answer
        // (exact unless a completion cleared the tracked timer), so the
        // O(inflight) sweep is avoided on this per-skip-attempt path.
        let timer = (self.next_timer != u64::MAX).then_some(self.next_timer);
        if self.dispatched - self.retired >= self.cfg.rob {
            return IdleState::Blocked { timer, mem_poll: None };
        }
        match self.pending {
            // Next tick fetches from the trace (mutates the source).
            None => IdleState::Active,
            // Compute instructions before the memory op dispatch freely.
            Some(p) if self.dispatched < p.seq => IdleState::Active,
            Some(p) => IdleState::Blocked { timer, mem_poll: Some((p.addr, p.is_write)) },
        }
    }

    /// Bulk-equivalent of `k` consecutive ticks taken in a
    /// [`IdleState::Blocked`] state whose poll (if any) kept returning
    /// [`MemIssue::Retry`], with no timer firing and no completion
    /// arriving inside the window: exactly the stall counters `k`
    /// stepped ticks would have advanced, and nothing else.
    pub fn skip_cycles(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        debug_assert!(matches!(self.idle_state(), IdleState::Blocked { .. }));
        self.stats.cycles += k;
        if self.dispatched > self.retired {
            // retire() finds the head-of-window load outstanding.
            self.stats.retire_stall_cycles += k;
        }
        if self.dispatched - self.retired >= self.cfg.rob {
            self.stats.window_full_cycles += k;
        } else {
            self.stats.mem_retry_cycles += k;
        }
    }

    /// Number of upcoming ticks guaranteed not to reach a memory
    /// dispatch, assuming no external completion arrives in between (the
    /// caller must ensure none does). Zero means the very next tick might
    /// call `mem`.
    ///
    /// Fetches the next trace op into the one-op lookahead slot when it
    /// is empty (and the window has room, mirroring `dispatch`): the op
    /// is consumed in the same order either way, so core behaviour is
    /// unchanged — only the cycle at which the fetch happens moves, and
    /// that cycle is not observable outside the core.
    pub fn compute_horizon(&mut self) -> u64 {
        if self.pending.is_none() && self.dispatched - self.retired < self.cfg.rob {
            let TraceOp { gap, addr, is_write } = self.source.next_op();
            let seq = self.stream_pos + u64::from(gap);
            self.stream_pos = seq + 1;
            self.pending = Some(PendingOp { seq, addr, is_write });
        }
        match self.pending {
            None => 0,
            // Dispatch advances at most `width` per tick, so the memory
            // op at `p.seq` stays out of reach for this many ticks even
            // if every one of them dispatches at full width.
            Some(p) => (p.seq - self.dispatched) / u64::from(self.cfg.width),
        }
    }

    /// Run `ticks` consecutive ordinary ticks starting at cycle `start`,
    /// none of which may reach a memory dispatch. Callers bound `ticks`
    /// by [`Core::compute_horizon`]; a tick that would dispatch the
    /// pending memory op panics, because the caller broke that contract.
    pub fn forward(&mut self, start: u64, ticks: u64) {
        let mut nomem = |_: u64, _: bool, _: u64| -> MemIssue {
            unreachable!("forward() tick reached a memory dispatch")
        };
        for j in 0..ticks {
            self.tick(start + j, &mut nomem);
        }
    }

    /// Advance one CPU cycle. `mem` is called for each dispatched memory
    /// access as `mem(vaddr, is_write, load_id)`.
    pub fn tick(&mut self, now: u64, mem: &mut dyn FnMut(u64, bool, u64) -> MemIssue) {
        self.stats.cycles += 1;
        // 1. Timer-based completions (cache hits with latency). The sweep
        // only runs when the earliest armed timer can fire.
        if self.next_timer <= now {
            let mut next = u64::MAX;
            for l in &mut self.inflight {
                if let Some(at) = l.done_at {
                    if at <= now {
                        l.done = true;
                        l.done_at = None;
                    } else {
                        next = next.min(at);
                    }
                }
            }
            self.next_timer = next;
        }
        self.retire();
        self.dispatch(now, mem);
        self.stats.retired = self.retired;
    }

    fn retire(&mut self) {
        let mut budget = u64::from(self.cfg.width);
        let started = self.retired;
        while budget > 0 && self.retired < self.dispatched {
            match self.inflight.front() {
                Some(front) if front.seq == self.retired => {
                    if front.done {
                        self.inflight.pop_front();
                        self.retired += 1;
                        budget -= 1;
                    } else {
                        break; // head-of-window load still outstanding
                    }
                }
                Some(front) => {
                    debug_assert!(front.seq > self.retired);
                    let n =
                        budget.min(front.seq - self.retired).min(self.dispatched - self.retired);
                    self.retired += n;
                    budget -= n;
                }
                None => {
                    let n = budget.min(self.dispatched - self.retired);
                    self.retired += n;
                    budget -= n;
                }
            }
        }
        if self.retired == started && self.dispatched > self.retired {
            self.stats.retire_stall_cycles += 1;
        }
    }

    fn dispatch(&mut self, now: u64, mem: &mut dyn FnMut(u64, bool, u64) -> MemIssue) {
        let mut budget = u64::from(self.cfg.width);
        while budget > 0 {
            if self.dispatched - self.retired >= self.cfg.rob {
                self.stats.window_full_cycles += 1;
                return;
            }
            if self.pending.is_none() {
                let TraceOp { gap, addr, is_write } = self.source.next_op();
                let seq = self.stream_pos + u64::from(gap);
                self.stream_pos = seq + 1;
                self.pending = Some(PendingOp { seq, addr, is_write });
            }
            let p = self.pending.expect("just fetched");
            if self.dispatched < p.seq {
                // Dispatch compute instructions up to the memory op.
                let room = self.cfg.rob - (self.dispatched - self.retired);
                let n = budget.min(p.seq - self.dispatched).min(room);
                self.dispatched += n;
                budget -= n;
                continue;
            }
            debug_assert_eq!(self.dispatched, p.seq);
            let id = self.next_load_id;
            match mem(p.addr, p.is_write, id) {
                MemIssue::Retry => {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                MemIssue::Done { latency } => {
                    if p.is_write {
                        self.stats.stores += 1;
                    } else {
                        self.stats.loads += 1;
                        self.next_load_id += 1;
                        let at = now + u64::from(latency);
                        self.next_timer = self.next_timer.min(at);
                        self.inflight.push_back(Load {
                            seq: p.seq,
                            id,
                            done_at: Some(at),
                            done: latency == 0,
                        });
                    }
                    self.dispatched += 1;
                    budget -= 1;
                    self.pending = None;
                }
                MemIssue::Pending => {
                    if p.is_write {
                        self.stats.stores += 1;
                        // Posted store: the window slot frees immediately.
                    } else {
                        self.stats.loads += 1;
                        self.inflight.push_back(Load {
                            seq: p.seq,
                            id,
                            done_at: None,
                            done: false,
                        });
                    }
                    self.next_load_id += 1;
                    self.dispatched += 1;
                    budget -= 1;
                    self.pending = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ReplaySource;

    fn compute_only_core(rob: u64, width: u32) -> Core {
        let src = ReplaySource::new(vec![TraceOp { gap: 999, addr: 0, is_write: false }]);
        Core::new(CoreConfig { rob, width }, Box::new(src))
    }

    #[test]
    fn compute_retires_at_width() {
        let mut c = compute_only_core(128, 4);
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: 1 };
        for now in 0..100 {
            c.tick(now, &mut mem);
        }
        // Steady state: 4 IPC (minus pipeline fill).
        assert!(c.retired() >= 4 * 98);
    }

    #[test]
    fn hit_latency_is_hidden_by_window() {
        // gap 8, hits of latency 2: the window covers the latency, IPC ~ width.
        let src = ReplaySource::new(vec![TraceOp { gap: 8, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 64, width: 4 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: 2 };
        for now in 0..1000 {
            c.tick(now, &mut mem);
        }
        let ipc = c.retired() as f64 / 1000.0;
        assert!(ipc > 3.0, "ipc {ipc}");
    }

    #[test]
    fn pending_load_blocks_retirement() {
        // Every op is a load that never completes: the core dispatches up
        // to the window limit and stops retiring.
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 16, width: 4 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Pending;
        for now in 0..100 {
            c.tick(now, &mut mem);
        }
        assert_eq!(c.retired(), 0);
        assert_eq!(c.outstanding_loads(), 16); // window full of loads
        assert!(c.stats().window_full_cycles > 0);
    }

    #[test]
    fn completion_unblocks_retirement() {
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 4, width: 4 }, Box::new(src));
        let mut ids = Vec::new();
        let mut mem = |_a: u64, _w: bool, id: u64| {
            ids.push(id);
            MemIssue::Pending
        };
        for now in 0..10 {
            c.tick(now, &mut mem);
        }
        assert_eq!(c.retired(), 0);
        for id in ids {
            c.complete(id);
        }
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Retry;
        for now in 10..12 {
            c.tick(now, &mut mem);
        }
        assert!(c.retired() >= 4);
    }

    #[test]
    fn window_bounds_mlp() {
        let src = ReplaySource::new(vec![TraceOp { gap: 3, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 16, width: 4 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Pending;
        for now in 0..100 {
            c.tick(now, &mut mem);
        }
        // gap 3 + 1 load per 4 slots -> at most 4 loads in a 16-entry window.
        assert_eq!(c.outstanding_loads(), 4);
    }

    #[test]
    fn stores_do_not_block() {
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: true }]);
        let mut c = Core::new(CoreConfig { rob: 8, width: 2 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Pending;
        for now in 0..50 {
            c.tick(now, &mut mem);
        }
        assert!(c.retired() > 50, "stores must retire without waiting");
        assert!(c.stats().stores > 0);
    }

    #[test]
    fn retry_stalls_dispatch() {
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 8, width: 2 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Retry;
        for now in 0..20 {
            c.tick(now, &mut mem);
        }
        assert_eq!(c.stats().loads, 0);
        assert!(c.stats().mem_retry_cycles > 0);
    }

    #[test]
    fn idle_state_reports_progress_and_blockage() {
        // Retry-blocked on a load: Blocked with the poll exposed.
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 8, width: 2 }, Box::new(src));
        assert_eq!(c.idle_state(), IdleState::Active, "fresh core fetches");
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Retry;
        c.tick(0, &mut mem);
        assert_eq!(c.idle_state(), IdleState::Blocked { timer: None, mem_poll: Some((64, false)) });

        // Window full of pending loads: Blocked with no poll.
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 4, width: 4 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Pending;
        for now in 0..4 {
            c.tick(now, &mut mem);
        }
        assert_eq!(c.idle_state(), IdleState::Blocked { timer: None, mem_poll: None });

        // A done_at timer shows up as the wake point.
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 1, width: 1 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: 50 };
        c.tick(0, &mut mem);
        assert_eq!(c.idle_state(), IdleState::Blocked { timer: Some(50), mem_poll: None });
    }

    #[test]
    fn skip_cycles_matches_stepped_blocked_ticks() {
        let build = |mode: usize| -> Core {
            let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
            let rob = if mode == 0 { 8 } else { 4 };
            let mut c = Core::new(CoreConfig { rob, width: 4 }, Box::new(src));
            // mode 0: park on Retry; mode 1: fill the window with Pending.
            let mut mem = |_a: u64, _w: bool, _id: u64| {
                if mode == 0 {
                    MemIssue::Retry
                } else {
                    MemIssue::Pending
                }
            };
            for now in 0..4 {
                c.tick(now, &mut mem);
            }
            assert!(matches!(c.idle_state(), IdleState::Blocked { .. }));
            c
        };
        for mode in 0..2 {
            let mut stepped = build(mode);
            let mut skipped = build(mode);
            let mut mem = |_a: u64, _w: bool, _id: u64| {
                if mode == 0 {
                    MemIssue::Retry
                } else {
                    MemIssue::Pending
                }
            };
            for now in 4..104 {
                stepped.tick(now, &mut mem);
            }
            skipped.skip_cycles(100);
            assert_eq!(stepped.stats(), skipped.stats(), "mode {mode}");
            assert_eq!(stepped.idle_state(), skipped.idle_state());
        }
    }

    #[test]
    fn forward_matches_stepped_compute() {
        let mk = || {
            let src = ReplaySource::new(vec![TraceOp { gap: 37, addr: 64, is_write: false }]);
            Core::new(CoreConfig { rob: 32, width: 4 }, Box::new(src))
        };
        let mut mem = |_: u64, _: bool, _: u64| MemIssue::Done { latency: 3 };
        let mut stepped = mk();
        for now in 0..400 {
            stepped.tick(now, &mut mem);
        }
        let mut fast = mk();
        let mut now = 0u64;
        while now < 400 {
            let h = fast.compute_horizon().min(400 - now);
            if h == 0 {
                fast.tick(now, &mut mem);
                now += 1;
            } else {
                fast.forward(now, h);
                now += h;
            }
        }
        assert_eq!(stepped.stats(), fast.stats());
        assert_eq!(stepped.retired(), fast.retired());
    }

    #[test]
    fn ipc_degrades_with_memory_latency() {
        // Same trace, two latencies: higher latency must not raise IPC.
        let run = |lat: u32| {
            let src = ReplaySource::new(vec![TraceOp { gap: 10, addr: 64, is_write: false }]);
            let mut c = Core::new(CoreConfig::default(), Box::new(src));
            let mut mem = move |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: lat };
            for now in 0..2000 {
                c.tick(now, &mut mem);
            }
            c.retired()
        };
        assert!(run(2) >= run(200));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::trace::ReplaySource;
    use dbp_util::prop::{any_bool, check, range, vec_of, CaseResult, Config, Gen};
    use dbp_util::prop_assert;

    fn arb_trace() -> impl Gen<Value = Vec<TraceOp>> {
        vec_of(
            (range(0u32..50), range(0u64..1_000_000), any_bool())
                .map(|(gap, page, is_write)| TraceOp { gap, addr: page << 6, is_write }),
            1..40,
        )
    }

    /// The window bound holds for any trace and any memory behaviour:
    /// outstanding loads never exceed the ROB, and retired count is
    /// monotone and bounded by dispatch.
    fn window_invariants(
        trace: Vec<TraceOp>,
        rob: u64,
        width: u32,
        latencies: &[u32],
    ) -> CaseResult {
        let mut core = Core::new(CoreConfig { rob, width }, Box::new(ReplaySource::new(trace)));
        let mut k = 0usize;
        let mut pending: Vec<u64> = Vec::new();
        let mut last_retired = 0;
        for now in 0..400u64 {
            let mut issued = Vec::new();
            let mut mem = |_a: u64, is_write: bool, id: u64| {
                k += 1;
                match k % 3 {
                    0 => MemIssue::Retry,
                    1 => MemIssue::Done { latency: latencies[k % latencies.len()] },
                    _ => {
                        if !is_write {
                            // Only loads produce completion callbacks.
                            issued.push(id);
                        }
                        MemIssue::Pending
                    }
                }
            };
            core.tick(now, &mut mem);
            pending.extend(issued);
            // Randomly complete one pending load.
            if now % 7 == 0 {
                if let Some(id) = pending.pop() {
                    core.complete(id);
                }
            }
            prop_assert!(core.outstanding_loads() as u64 <= rob);
            prop_assert!(core.retired() >= last_retired, "retirement is monotone");
            last_retired = core.retired();
        }
        Ok(())
    }

    #[test]
    fn window_invariants_hold() {
        let g = (arb_trace(), range(1u64..64), range(1u32..8), vec_of(range(0u32..400), 8..9));
        check(Config::cases(64), &g, |(trace, rob, width, latencies)| {
            window_invariants(trace, rob, width, &latencies)
        });
    }

    /// Regression: the shrunk counterexample recorded by the old proptest
    /// harness in `proptest-regressions/core_model.txt` — a single
    /// zero-gap store through a minimal (ROB 1, width 1) window with
    /// instant memory.
    #[test]
    fn regression_single_store_minimal_window() {
        window_invariants(vec![TraceOp { gap: 0, addr: 0, is_write: true }], 1, 1, &[0; 8])
            .unwrap();
    }

    /// With every access hitting instantly, IPC approaches the width.
    #[test]
    fn ideal_memory_reaches_peak_ipc() {
        check(Config::cases(64), &range(1u32..6), |width| {
            let trace = vec![TraceOp { gap: 10, addr: 64, is_write: false }];
            let mut core =
                Core::new(CoreConfig { rob: 256, width }, Box::new(ReplaySource::new(trace)));
            let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: 0 };
            let cycles = 2000u64;
            for now in 0..cycles {
                core.tick(now, &mut mem);
            }
            let ipc = core.retired() as f64 / cycles as f64;
            prop_assert!(ipc > f64::from(width) * 0.9, "ipc {ipc} width {width}");
            Ok(())
        });
    }
}
