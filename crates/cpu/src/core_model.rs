//! The abstract out-of-order core.

use std::collections::VecDeque;

use crate::stats::CoreStats;
use crate::trace::{TraceOp, TraceSource};

/// Core parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder-buffer (instruction window) capacity.
    pub rob: u64,
    /// Dispatch/retire width, instructions per cycle.
    pub width: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig { rob: 128, width: 4 }
    }
}

/// How the memory system answered a just-dispatched access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemIssue {
    /// Satisfied after `latency` CPU cycles (cache hit, or a posted store).
    Done { latency: u32 },
    /// A DRAM round-trip is in flight; [`Core::complete`] will be called
    /// with the access's load id.
    Pending,
    /// Resources exhausted (MSHRs, controller queue); retry next cycle.
    Retry,
}

#[derive(Debug, Clone, Copy)]
struct Load {
    seq: u64,
    id: u64,
    done_at: Option<u64>,
    done: bool,
}

#[derive(Debug, Clone, Copy)]
struct PendingOp {
    seq: u64,
    addr: u64,
    is_write: bool,
}

/// One core: consumes a trace, exposes per-cycle [`Core::tick`].
///
/// Sequence numbers count instructions. `dispatched - retired` is the
/// window occupancy; loads sit in `inflight` until their data arrives and
/// block retirement while at the window head.
pub struct Core {
    cfg: CoreConfig,
    source: Box<dyn TraceSource>,
    /// Seq of the next instruction to dispatch.
    dispatched: u64,
    /// Seq of the next instruction to retire.
    retired: u64,
    /// Stream position: seq the next fetched trace op starts from.
    stream_pos: u64,
    pending: Option<PendingOp>,
    inflight: VecDeque<Load>,
    next_load_id: u64,
    stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("cfg", &self.cfg)
            .field("dispatched", &self.dispatched)
            .field("retired", &self.retired)
            .field("inflight", &self.inflight.len())
            .finish()
    }
}

impl Core {
    /// Build a core reading from `source`.
    pub fn new(cfg: CoreConfig, source: Box<dyn TraceSource>) -> Self {
        assert!(cfg.rob > 0 && cfg.width > 0, "rob and width must be positive");
        Core {
            cfg,
            source,
            dispatched: 0,
            retired: 0,
            stream_pos: 0,
            pending: None,
            inflight: VecDeque::new(),
            next_load_id: 0,
            stats: CoreStats::default(),
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Outstanding (not yet completed) loads — the core's instantaneous
    /// memory-level parallelism.
    pub fn outstanding_loads(&self) -> usize {
        self.inflight.iter().filter(|l| !l.done).count()
    }

    /// Mark the load identified by `load_id` complete (DRAM data arrived).
    pub fn complete(&mut self, load_id: u64) {
        for l in &mut self.inflight {
            if l.id == load_id {
                l.done = true;
                l.done_at = None;
                return;
            }
        }
        debug_assert!(false, "completion for unknown load {load_id}");
    }

    /// Advance one CPU cycle. `mem` is called for each dispatched memory
    /// access as `mem(vaddr, is_write, load_id)`.
    pub fn tick(&mut self, now: u64, mem: &mut dyn FnMut(u64, bool, u64) -> MemIssue) {
        self.stats.cycles += 1;
        // 1. Timer-based completions (cache hits with latency).
        for l in &mut self.inflight {
            if let Some(at) = l.done_at {
                if at <= now {
                    l.done = true;
                    l.done_at = None;
                }
            }
        }
        self.retire();
        self.dispatch(now, mem);
        self.stats.retired = self.retired;
    }

    fn retire(&mut self) {
        let mut budget = u64::from(self.cfg.width);
        let started = self.retired;
        while budget > 0 && self.retired < self.dispatched {
            match self.inflight.front() {
                Some(front) if front.seq == self.retired => {
                    if front.done {
                        self.inflight.pop_front();
                        self.retired += 1;
                        budget -= 1;
                    } else {
                        break; // head-of-window load still outstanding
                    }
                }
                Some(front) => {
                    debug_assert!(front.seq > self.retired);
                    let n = budget
                        .min(front.seq - self.retired)
                        .min(self.dispatched - self.retired);
                    self.retired += n;
                    budget -= n;
                }
                None => {
                    let n = budget.min(self.dispatched - self.retired);
                    self.retired += n;
                    budget -= n;
                }
            }
        }
        if self.retired == started && self.dispatched > self.retired {
            self.stats.retire_stall_cycles += 1;
        }
    }

    fn dispatch(&mut self, now: u64, mem: &mut dyn FnMut(u64, bool, u64) -> MemIssue) {
        let mut budget = u64::from(self.cfg.width);
        while budget > 0 {
            if self.dispatched - self.retired >= self.cfg.rob {
                self.stats.window_full_cycles += 1;
                return;
            }
            if self.pending.is_none() {
                let TraceOp { gap, addr, is_write } = self.source.next_op();
                let seq = self.stream_pos + u64::from(gap);
                self.stream_pos = seq + 1;
                self.pending = Some(PendingOp { seq, addr, is_write });
            }
            let p = self.pending.expect("just fetched");
            if self.dispatched < p.seq {
                // Dispatch compute instructions up to the memory op.
                let room = self.cfg.rob - (self.dispatched - self.retired);
                let n = budget.min(p.seq - self.dispatched).min(room);
                self.dispatched += n;
                budget -= n;
                continue;
            }
            debug_assert_eq!(self.dispatched, p.seq);
            let id = self.next_load_id;
            match mem(p.addr, p.is_write, id) {
                MemIssue::Retry => {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                MemIssue::Done { latency } => {
                    if p.is_write {
                        self.stats.stores += 1;
                    } else {
                        self.stats.loads += 1;
                        self.next_load_id += 1;
                        self.inflight.push_back(Load {
                            seq: p.seq,
                            id,
                            done_at: Some(now + u64::from(latency)),
                            done: latency == 0,
                        });
                    }
                    self.dispatched += 1;
                    budget -= 1;
                    self.pending = None;
                }
                MemIssue::Pending => {
                    if p.is_write {
                        self.stats.stores += 1;
                        // Posted store: the window slot frees immediately.
                    } else {
                        self.stats.loads += 1;
                        self.inflight.push_back(Load {
                            seq: p.seq,
                            id,
                            done_at: None,
                            done: false,
                        });
                    }
                    self.next_load_id += 1;
                    self.dispatched += 1;
                    budget -= 1;
                    self.pending = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ReplaySource;

    fn compute_only_core(rob: u64, width: u32) -> Core {
        let src = ReplaySource::new(vec![TraceOp { gap: 999, addr: 0, is_write: false }]);
        Core::new(CoreConfig { rob, width }, Box::new(src))
    }

    #[test]
    fn compute_retires_at_width() {
        let mut c = compute_only_core(128, 4);
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: 1 };
        for now in 0..100 {
            c.tick(now, &mut mem);
        }
        // Steady state: 4 IPC (minus pipeline fill).
        assert!(c.retired() >= 4 * 98);
    }

    #[test]
    fn hit_latency_is_hidden_by_window() {
        // gap 8, hits of latency 2: the window covers the latency, IPC ~ width.
        let src = ReplaySource::new(vec![TraceOp { gap: 8, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 64, width: 4 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: 2 };
        for now in 0..1000 {
            c.tick(now, &mut mem);
        }
        let ipc = c.retired() as f64 / 1000.0;
        assert!(ipc > 3.0, "ipc {ipc}");
    }

    #[test]
    fn pending_load_blocks_retirement() {
        // Every op is a load that never completes: the core dispatches up
        // to the window limit and stops retiring.
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 16, width: 4 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Pending;
        for now in 0..100 {
            c.tick(now, &mut mem);
        }
        assert_eq!(c.retired(), 0);
        assert_eq!(c.outstanding_loads(), 16); // window full of loads
        assert!(c.stats().window_full_cycles > 0);
    }

    #[test]
    fn completion_unblocks_retirement() {
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 4, width: 4 }, Box::new(src));
        let mut ids = Vec::new();
        let mut mem = |_a: u64, _w: bool, id: u64| {
            ids.push(id);
            MemIssue::Pending
        };
        for now in 0..10 {
            c.tick(now, &mut mem);
        }
        assert_eq!(c.retired(), 0);
        for id in ids {
            c.complete(id);
        }
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Retry;
        for now in 10..12 {
            c.tick(now, &mut mem);
        }
        assert!(c.retired() >= 4);
    }

    #[test]
    fn window_bounds_mlp() {
        let src = ReplaySource::new(vec![TraceOp { gap: 3, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 16, width: 4 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Pending;
        for now in 0..100 {
            c.tick(now, &mut mem);
        }
        // gap 3 + 1 load per 4 slots -> at most 4 loads in a 16-entry window.
        assert_eq!(c.outstanding_loads(), 4);
    }

    #[test]
    fn stores_do_not_block() {
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: true }]);
        let mut c = Core::new(CoreConfig { rob: 8, width: 2 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Pending;
        for now in 0..50 {
            c.tick(now, &mut mem);
        }
        assert!(c.retired() > 50, "stores must retire without waiting");
        assert!(c.stats().stores > 0);
    }

    #[test]
    fn retry_stalls_dispatch() {
        let src = ReplaySource::new(vec![TraceOp { gap: 0, addr: 64, is_write: false }]);
        let mut c = Core::new(CoreConfig { rob: 8, width: 2 }, Box::new(src));
        let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Retry;
        for now in 0..20 {
            c.tick(now, &mut mem);
        }
        assert_eq!(c.stats().loads, 0);
        assert!(c.stats().mem_retry_cycles > 0);
    }

    #[test]
    fn ipc_degrades_with_memory_latency() {
        // Same trace, two latencies: higher latency must not raise IPC.
        let run = |lat: u32| {
            let src = ReplaySource::new(vec![TraceOp { gap: 10, addr: 64, is_write: false }]);
            let mut c = Core::new(CoreConfig::default(), Box::new(src));
            let mut mem = move |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: lat };
            for now in 0..2000 {
                c.tick(now, &mut mem);
            }
            c.retired()
        };
        assert!(run(2) >= run(200));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::trace::ReplaySource;
    use dbp_util::prop::{any_bool, check, range, vec_of, CaseResult, Config, Gen};
    use dbp_util::prop_assert;

    fn arb_trace() -> impl Gen<Value = Vec<TraceOp>> {
        vec_of(
            (range(0u32..50), range(0u64..1_000_000), any_bool())
                .map(|(gap, page, is_write)| TraceOp { gap, addr: page << 6, is_write }),
            1..40,
        )
    }

    /// The window bound holds for any trace and any memory behaviour:
    /// outstanding loads never exceed the ROB, and retired count is
    /// monotone and bounded by dispatch.
    fn window_invariants(
        trace: Vec<TraceOp>,
        rob: u64,
        width: u32,
        latencies: &[u32],
    ) -> CaseResult {
        let mut core = Core::new(
            CoreConfig { rob, width },
            Box::new(ReplaySource::new(trace)),
        );
        let mut k = 0usize;
        let mut pending: Vec<u64> = Vec::new();
        let mut last_retired = 0;
        for now in 0..400u64 {
            let mut issued = Vec::new();
            let mut mem = |_a: u64, is_write: bool, id: u64| {
                k += 1;
                match k % 3 {
                    0 => MemIssue::Retry,
                    1 => MemIssue::Done { latency: latencies[k % latencies.len()] },
                    _ => {
                        if !is_write {
                            // Only loads produce completion callbacks.
                            issued.push(id);
                        }
                        MemIssue::Pending
                    }
                }
            };
            core.tick(now, &mut mem);
            pending.extend(issued);
            // Randomly complete one pending load.
            if now % 7 == 0 {
                if let Some(id) = pending.pop() {
                    core.complete(id);
                }
            }
            prop_assert!(core.outstanding_loads() as u64 <= rob);
            prop_assert!(core.retired() >= last_retired, "retirement is monotone");
            last_retired = core.retired();
        }
        Ok(())
    }

    #[test]
    fn window_invariants_hold() {
        let g = (
            arb_trace(),
            range(1u64..64),
            range(1u32..8),
            vec_of(range(0u32..400), 8..9),
        );
        check(Config::cases(64), &g, |(trace, rob, width, latencies)| {
            window_invariants(trace, rob, width, &latencies)
        });
    }

    /// Regression: the shrunk counterexample recorded by the old proptest
    /// harness in `proptest-regressions/core_model.txt` — a single
    /// zero-gap store through a minimal (ROB 1, width 1) window with
    /// instant memory.
    #[test]
    fn regression_single_store_minimal_window() {
        window_invariants(
            vec![TraceOp { gap: 0, addr: 0, is_write: true }],
            1,
            1,
            &[0; 8],
        )
        .unwrap();
    }

    /// With every access hitting instantly, IPC approaches the width.
    #[test]
    fn ideal_memory_reaches_peak_ipc() {
        check(Config::cases(64), &range(1u32..6), |width| {
            let trace = vec![TraceOp { gap: 10, addr: 64, is_write: false }];
            let mut core = Core::new(
                CoreConfig { rob: 256, width },
                Box::new(ReplaySource::new(trace)),
            );
            let mut mem = |_a: u64, _w: bool, _id: u64| MemIssue::Done { latency: 0 };
            let cycles = 2000u64;
            for now in 0..cycles {
                core.tick(now, &mut mem);
            }
            let ipc = core.retired() as f64 / cycles as f64;
            prop_assert!(ipc > f64::from(width) * 0.9, "ipc {ipc} width {width}");
            Ok(())
        });
    }
}
