//! Dev tool: full mix sweep with gmean aggregates per policy.
use dbp_core::policy::PolicyKind;
use dbp_sim::metrics::gmean;
use dbp_sim::{runner, SchedulerKind, SimConfig};
use dbp_workloads::mixes_4core;

fn main() {
    let cfg = SimConfig::default();
    let combos: Vec<(&str, SchedulerKind, PolicyKind)> = vec![
        ("shared", SchedulerKind::FrFcfs, PolicyKind::Unpartitioned),
        ("EBP", SchedulerKind::FrFcfs, PolicyKind::Equal),
        ("DBP", SchedulerKind::FrFcfs, PolicyKind::Dbp(Default::default())),
        ("TCM", SchedulerKind::Tcm(Default::default()), PolicyKind::Unpartitioned),
        ("TCMDBP", SchedulerKind::Tcm(Default::default()), PolicyKind::Dbp(Default::default())),
        ("MCP", SchedulerKind::FrFcfs, PolicyKind::Mcp(Default::default())),
    ];
    let mixes = mixes_4core();
    let mut ws: Vec<Vec<f64>> = vec![Vec::new(); combos.len()];
    let mut ms: Vec<Vec<f64>> = vec![Vec::new(); combos.len()];
    for mix in &mixes {
        let alone = runner::alone_ipcs(&cfg, mix);
        print!("{:>9}", mix.name);
        for (k, (label, sched, policy)) in combos.iter().enumerate() {
            let mut c = cfg.clone();
            c.scheduler = *sched;
            c.policy = *policy;
            let run = runner::run_mix_with_alone(&c, mix, alone.clone());
            ws[k].push(run.metrics.weighted_speedup);
            ms[k].push(run.metrics.max_slowdown);
            print!("  {label}={:.3}/{:.3}", run.metrics.weighted_speedup, run.metrics.max_slowdown);
        }
        println!();
    }
    println!("\n== gmean WS / gmean MS ==");
    for (k, (label, ..)) in combos.iter().enumerate() {
        println!("{label:>7}: WS={:.4} MS={:.4}", gmean(&ws[k]), gmean(&ms[k]));
    }
}
