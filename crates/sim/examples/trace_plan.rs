//! Dev tool: trace plan evolution for one mix/policy.
use dbp_core::policy::PolicyKind;
use dbp_sim::{runner, SimConfig};
use dbp_workloads::mixes_4core;

fn main() {
    let cfg = SimConfig { policy: PolicyKind::Dbp(Default::default()), ..Default::default() };
    let idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let mix = &mixes_4core()[idx];
    let run = runner::run_shared(&cfg, mix);
    eprintln!("mig during measurement: {}", run.migrated_pages);
}
