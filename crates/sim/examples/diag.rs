//! Dev diagnostics: per-thread behaviour under each policy.
use dbp_core::policy::PolicyKind;
use dbp_sim::{runner, SchedulerKind, SimConfig};
use dbp_workloads::mixes_4core;

fn main() {
    let mix_idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let channels: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let ranks: u32 = std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let mut cfg = SimConfig::default();
    cfg.dram.channels = channels;
    cfg.dram.ranks_per_channel = ranks;
    cfg.dram.rows_per_bank = 8192 / (channels * ranks); // keep 512 MiB-ish
    cfg.target_instructions = 1_000_000;
    let mixes = mixes_4core();
    let mix = &mixes[mix_idx];
    println!(
        "mix {} = {:?}  geometry {}ch x {}rk x 8bk",
        mix.name, mix.benchmarks, channels, ranks
    );
    let alone = runner::alone_ipcs(&cfg, mix);
    for (label, sched, policy) in [
        ("shared", SchedulerKind::FrFcfs, PolicyKind::Unpartitioned),
        ("EBP   ", SchedulerKind::FrFcfs, PolicyKind::Equal),
        ("DBP   ", SchedulerKind::FrFcfs, PolicyKind::Dbp(Default::default())),
        ("TCM   ", SchedulerKind::Tcm(Default::default()), PolicyKind::Unpartitioned),
        ("TCMDBP", SchedulerKind::Tcm(Default::default()), PolicyKind::Dbp(Default::default())),
        ("MCP   ", SchedulerKind::FrFcfs, PolicyKind::Mcp(Default::default())),
    ] {
        let mut c = cfg.clone();
        c.scheduler = sched;
        c.policy = policy;
        let run = runner::run_mix_with_alone(&c, mix, alone.clone());
        print!(
            "{label} WS={:.3} MS={:.3} rh={:.3} mig={:>5}",
            run.metrics.weighted_speedup,
            run.metrics.max_slowdown,
            run.shared.row_hit_rate,
            run.shared.migrated_pages
        );
        for (i, t) in run.shared.threads.iter().enumerate() {
            print!(
                "  t{i}[su={:.2} rbl={:.2} blp={:.2} lat={:.0}]",
                run.metrics.speedups[i], t.rbl, t.blp, t.avg_read_latency
            );
        }
        println!();
    }
}
