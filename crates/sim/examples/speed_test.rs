use dbp_sim::{runner, SimConfig};
use dbp_workloads::mixes_4core;
use std::time::Instant;

fn main() {
    let mut cfg = SimConfig::default();
    cfg.dram.rows_per_bank = 2048; // 512 MiB, plenty for the footprints
    cfg.target_instructions = 1_000_000;
    let mix = &mixes_4core()[12]; // mix100-1, worst case
    let t0 = Instant::now();
    let run = runner::run_mix(&cfg, mix);
    let dt = t0.elapsed();
    println!("mix100-1 full run (4 alone + 1 shared) took {:.2?}", dt);
    println!("shared cycles: {}", run.shared.total_cycles);
    println!(
        "WS={:.3} MS={:.3} rowhit={:.3}",
        run.weighted_speedup(),
        run.max_slowdown(),
        run.shared.row_hit_rate
    );
    for (i, t) in run.shared.threads.iter().enumerate() {
        println!(
            "  t{i} ipc={:.3} alone={:.3} mpki={:.1} rbl={:.2} blp={:.2}",
            t.ipc, run.alone_ipcs[i], t.mpki, t.rbl, t.blp
        );
    }
}
