//! Dev calibration: one mix under every policy/scheduler combination.
use dbp_core::policy::PolicyKind;
use dbp_sim::{runner, SchedulerKind, SimConfig};
use dbp_workloads::mixes_4core;
use std::time::Instant;

fn main() {
    let mix_idx: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let instr: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let mut cfg = SimConfig::default();
    cfg.dram.rows_per_bank = 2048;
    cfg.target_instructions = instr;
    let mixes = mixes_4core();
    let mix = &mixes[mix_idx];
    println!("mix {} = {:?}", mix.name, mix.benchmarks);
    let alone = runner::alone_ipcs(&cfg, mix);
    println!("alone IPCs: {:?}", alone.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>());
    let combos: Vec<(&str, SchedulerKind, PolicyKind)> = vec![
        ("FRFCFS-shared", SchedulerKind::FrFcfs, PolicyKind::Unpartitioned),
        ("FRFCFS-EBP   ", SchedulerKind::FrFcfs, PolicyKind::Equal),
        ("FRFCFS-DBP   ", SchedulerKind::FrFcfs, PolicyKind::Dbp(Default::default())),
        ("TCM-shared   ", SchedulerKind::Tcm(Default::default()), PolicyKind::Unpartitioned),
        (
            "TCM-DBP      ",
            SchedulerKind::Tcm(Default::default()),
            PolicyKind::Dbp(Default::default()),
        ),
        ("FRFCFS-MCP   ", SchedulerKind::FrFcfs, PolicyKind::Mcp(Default::default())),
        ("PARBS-shared ", SchedulerKind::ParBs(Default::default()), PolicyKind::Unpartitioned),
    ];
    for (label, sched, policy) in combos {
        let mut c = cfg.clone();
        c.scheduler = sched;
        c.policy = policy;
        let t0 = Instant::now();
        let run = runner::run_mix_with_alone(&c, mix, alone.clone());
        println!(
            "{label}  WS={:.3} HS={:.3} MS={:.3} rowhit={:.3} migrated={} cyc={} ({:.1?})",
            run.metrics.weighted_speedup,
            run.metrics.harmonic_speedup,
            run.metrics.max_slowdown,
            run.shared.row_hit_rate,
            run.shared.migrated_pages,
            run.shared.total_cycles,
            t0.elapsed()
        );
    }
}
