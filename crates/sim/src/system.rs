//! The composed system and its cycle loop.

use std::collections::VecDeque;

use dbp_cache::{AccessLevel, Hierarchy, Mshr};
use dbp_core::policy::PartitionPolicy;
use dbp_core::{ColorTopology, ThreadMemProfile};
use dbp_cpu::{Core, MemIssue, TraceSource};
use dbp_dram::DramStats;
use dbp_memctrl::{Completion, MemRequest, MemoryController, ThreadProf};
use dbp_obs::{EpochSample, EventKind, FxHashMap, Prof, Recorder, RecorderConfig, ThreadSample};
use dbp_osmem::{ColorSet, MemoryManager, MigrationJob, OsStats};

use crate::audit::ShadowRack;
use crate::config::{MigrationCost, SimConfig};
use crate::metrics::{RunResult, ThreadResult};

/// System-level counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SysStats {
    /// Repartitioning epochs executed.
    pub repartitions: u64,
    /// Migration copy requests injected into the controller.
    pub migration_requests: u64,
}

/// One simulated CMP: cores, private caches, OS memory manager, memory
/// controller, DRAM, and a partitioning policy.
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    caches: Vec<Hierarchy>,
    mshrs: Vec<Mshr>,
    /// Per core: line address -> load ids waiting on the fill.
    waiting: Vec<FxHashMap<u64, Vec<u64>>>,
    osmem: MemoryManager,
    ctrl: MemoryController,
    policy: Box<dyn PartitionPolicy>,
    topo: ColorTopology,
    last_plan: Option<Vec<ColorSet>>,
    /// Request id -> (core, line) for demand-read completions.
    req_map: FxHashMap<u64, (usize, u64)>,
    next_req_id: u64,
    /// Copy traffic waiting for queue space: (thread, addr, is_write).
    migration_backlog: VecDeque<(usize, u64, bool)>,
    /// Per core: the last full poll evaluation proved "probe miss, no
    /// MSHR merge, MSHR full" — a verdict that cannot change until a
    /// completion is delivered to this core (frees an MSHR slot, fills
    /// the cache) or a repartition (remaps pages, refills migration
    /// budget), so repeat polls can return `Retry` without re-walking
    /// page table, caches and queues. Only consulted when time skipping
    /// is on: the stepped reference path stays a plain interpreter so
    /// the CI cross-check would expose a stale-verdict bug here.
    poll_stuck: Vec<bool>,
    last_fed_instr: Vec<u64>,
    cycle: u64,
    finish_cycle: Vec<Option<u64>>,
    completions: Vec<Completion>,
    stats: SysStats,
    // Measurement window (set when warmup ends).
    measure_start: u64,
    base_retired: Vec<u64>,
    prof_base: Vec<ThreadProf>,
    dram_base: Option<DramStats>,
    os_base: OsStats,
    sys_base: SysStats,
    rec: Recorder,
    /// Decision audit layer (shadow policies + estimator accuracy +
    /// convergence), built only when the recorder asked for it
    /// ([`RecorderConfig::audit`]). Observation-only: the byte-identity
    /// property tests hold attached-vs-detached runs equal.
    audit: Option<ShadowRack>,
    /// Host-side self-profiler (wall-clock spans + work counters); named
    /// `host_prof` because `ctrl.prof()` is the *simulated* per-thread
    /// DRAM profiler — the two measure different worlds.
    host_prof: Prof,
    ctr_cycles: dbp_obs::prof::Counter,
    ctr_skipped: dbp_obs::prof::Counter,
    /// Event-driven time skipping (see [`System::maybe_skip`]). On by
    /// default; disabled by `DBP_NO_SKIP` or [`System::set_time_skip`]
    /// for stepped-reference cross-checks.
    time_skip: bool,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl System {
    /// Build a system with one core per trace.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or the configuration is invalid.
    pub fn new(cfg: SimConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        // Back-compat: DBP_TRACE_PLAN used to switch on an ad-hoc eprintln
        // dump of each epoch's profiles and plan; it now enables a recorder
        // that pretty-prints the same (structured) events to stderr.
        let rec = if std::env::var_os("DBP_TRACE_PLAN").is_some() {
            Recorder::new(RecorderConfig { stderr_echo: true, ..Default::default() })
        } else {
            Recorder::disabled()
        };
        Self::with_recorder(cfg, traces, rec)
    }

    /// Build a system that emits telemetry into `rec` (see [`dbp_obs`]).
    /// The recorder handle is cloned into every instrumented layer:
    /// policy, OS memory manager, and memory scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or the configuration is invalid.
    pub fn with_recorder(cfg: SimConfig, traces: Vec<Box<dyn TraceSource>>, rec: Recorder) -> Self {
        Self::with_instrumentation(cfg, traces, rec, Prof::disabled())
    }

    /// Build a system that emits telemetry into `rec` *and* host-side
    /// self-profiling spans/counters into `prof` (see [`dbp_obs::Prof`]).
    /// Profiling only observes wall time: the simulated outcome is
    /// byte-identical with `prof` enabled or disabled.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or the configuration is invalid.
    pub fn with_instrumentation(
        cfg: SimConfig,
        traces: Vec<Box<dyn TraceSource>>,
        rec: Recorder,
        prof: Prof,
    ) -> Self {
        cfg.validate().expect("invalid SimConfig");
        assert!(!traces.is_empty(), "at least one trace required");
        let n = traces.len();
        let topo = ColorTopology::from_dram(&cfg.dram);
        let mut policy = cfg.policy.build();
        policy.attach_recorder(rec.clone());
        let mut osmem = MemoryManager::new(&cfg.dram, n, cfg.migration_mode);
        osmem.attach_recorder(rec.clone());
        // Install the policy's cold-start plan before any page is touched,
        // so static policies (equal split) are in force from cycle 0.
        let cold = vec![ThreadMemProfile::default(); n];
        let plan = policy.partition(&cold, &topo, None);
        for (t, colors) in plan.iter().enumerate() {
            osmem.set_partition(t, *colors);
        }
        let dram = dbp_dram::Dram::new(cfg.dram.clone());
        let mut ctrl = MemoryController::new(dram, cfg.ctrl, cfg.scheduler.build(n), n);
        ctrl.attach_recorder(rec.clone());
        ctrl.attach_profiler(&prof);
        let ctr_cycles = prof.counter("sim/cycles_stepped");
        let ctr_skipped = prof.counter("sim/cycles_skipped");
        // Any value (even "0") disables skipping: the variable is a CI
        // cross-check switch, not a tristate.
        let time_skip = std::env::var_os("DBP_NO_SKIP").is_none();
        let audit = if rec.audit_requested() {
            Some(ShadowRack::standard(&cfg, &topo, &plan))
        } else {
            None
        };
        System {
            cores: traces.into_iter().map(|t| Core::new(cfg.core, t)).collect(),
            caches: (0..n).map(|_| Hierarchy::new(cfg.hierarchy)).collect(),
            mshrs: (0..n).map(|_| Mshr::new(cfg.mshrs)).collect(),
            waiting: (0..n).map(|_| FxHashMap::default()).collect(),
            last_plan: Some(plan),
            req_map: FxHashMap::default(),
            next_req_id: 0,
            migration_backlog: VecDeque::new(),
            poll_stuck: vec![false; n],
            last_fed_instr: vec![0; n],
            cycle: 0,
            finish_cycle: vec![None; n],
            completions: Vec::new(),
            stats: SysStats::default(),
            measure_start: 0,
            base_retired: vec![0; n],
            prof_base: vec![ThreadProf::default(); n],
            dram_base: None,
            os_base: OsStats::default(),
            sys_base: SysStats::default(),
            osmem,
            ctrl,
            policy,
            topo,
            cfg,
            rec,
            audit,
            host_prof: prof,
            ctr_cycles,
            ctr_skipped,
            time_skip,
        }
    }

    /// Enable or disable event-driven time skipping. Skipping never
    /// changes simulated outcomes (that is the invariant `DBP_NO_SKIP=1`
    /// CI runs exist to police), only wall-clock speed.
    pub fn set_time_skip(&mut self, on: bool) {
        self.time_skip = on;
    }

    /// The telemetry recorder this system emits into (disabled unless
    /// built via [`System::with_recorder`] or `DBP_TRACE_PLAN`).
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// The host-side self-profiler this system reports into (disabled
    /// unless built via [`System::with_instrumentation`]).
    pub fn profiler(&self) -> &Prof {
        &self.host_prof
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Current CPU cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// System counters.
    pub fn stats(&self) -> &SysStats {
        &self.stats
    }

    /// The controller (for inspection).
    pub fn ctrl(&self) -> &MemoryController {
        &self.ctrl
    }

    /// The OS memory manager (for inspection).
    pub fn osmem(&self) -> &MemoryManager {
        &self.osmem
    }

    /// The plan currently in force.
    pub fn current_plan(&self) -> Option<&[ColorSet]> {
        self.last_plan.as_deref()
    }

    /// Run the warmup phase, then measure until every core reaches the
    /// instruction target (or the cycle cap) and return the result.
    pub fn run(&mut self) -> RunResult {
        if self.cfg.warmup_instructions > 0 {
            let _phase = self.host_prof.span("sim/warmup");
            let warm = self.cfg.warmup_instructions;
            // Warmup must also span several repartition epochs (plus one
            // cycle, so no epoch boundary coincides with measurement
            // start): a dynamic policy's plan — smoothed and debounced —
            // needs a few epochs to settle, and its settling migrations
            // belong to warmup, not to the measured steady state.
            let min_cycles = 4 * self.cfg.epoch_cpu_cycles + 1;
            while self.cycle < self.cfg.max_cpu_cycles
                && (self.cycle < min_cycles || self.cores.iter().any(|c| c.retired() < warm))
            {
                self.step();
                // The skip bound is derived from the *post-step* state: a
                // loop exit condition must never be jumped over. While a
                // core is still short of the warmup target only the cycle
                // cap can end the loop; once all cores are warm the jump
                // must land exactly on the min-cycle clamp, because
                // measurement starts there.
                let behind = self.cores.iter().any(|c| c.retired() < warm);
                if self.cycle < self.cfg.max_cpu_cycles && (behind || self.cycle < min_cycles) {
                    let bound = if behind { self.cfg.max_cpu_cycles } else { min_cycles };
                    self.maybe_skip(bound);
                }
            }
            self.begin_measurement();
        }
        {
            let _phase = self.host_prof.span("sim/measure");
            while self.cycle < self.cfg.max_cpu_cycles
                && self.finish_cycle.iter().any(Option::is_none)
            {
                self.step();
                // Same post-step guard: if the step just finished the last
                // core, stepped mode exits here — a jump would inflate the
                // final cycle count.
                if self.finish_cycle.iter().any(Option::is_none) {
                    self.maybe_skip(self.cfg.max_cpu_cycles);
                }
            }
        }
        let _phase = self.host_prof.span("sim/collect");
        self.collect()
    }

    /// Reset the measurement window to start *now* (end of warmup).
    fn begin_measurement(&mut self) {
        self.feed_instructions();
        // Measurement covers the steady state: finish any in-flight
        // partition transition instantly (and costlessly) so it is not
        // charged to an arbitrary slice of the measured window.
        self.osmem.conform_all();
        self.migration_backlog.clear();
        self.poll_stuck.fill(false);
        if let Some(rack) = &mut self.audit {
            rack.note_measurement_start(self.stats.repartitions);
        }
        self.measure_start = self.cycle;
        for i in 0..self.cores.len() {
            self.base_retired[i] = self.cores[i].retired();
            self.prof_base[i] = self.ctrl.prof().cumulative(i);
            self.finish_cycle[i] = None;
        }
        self.dram_base = Some(self.ctrl.dram().stats().clone());
        self.os_base = *self.osmem.stats();
        self.sys_base = self.stats;
        // Latency anatomy measures the steady state only; in-flight
        // requests keep their wait accumulators so breakdowns of reads
        // spanning the warmup boundary stay sum-exact.
        self.ctrl.reset_latency();
    }

    /// Advance exactly one CPU cycle (exposed for tests and tooling).
    ///
    /// Dispatches once on whether the host profiler is live: the
    /// `PROF = false` monomorphisation contains no span or counter code
    /// at all, so a disabled profiler costs one predictable branch per
    /// cycle here (plus one per controller tick) — not a guard pair per
    /// phase.
    pub fn step(&mut self) {
        if self.host_prof.is_enabled() {
            self.step_impl::<true>();
        } else {
            self.step_impl::<false>();
        }
    }

    /// Advance one cycle, then — when time skipping is enabled and every
    /// component is provably idle — jump to the next cycle at which
    /// anything can happen, but never to or past `bound`.
    ///
    /// Counters charged per cycle (core stall anatomy, controller idle
    /// time, bank-level-parallelism sampling) are bulk-advanced over the
    /// jumped window, so outcomes are byte-identical to calling
    /// [`System::step`] `bound - cycle` times; only wall-clock changes.
    pub fn advance(&mut self, bound: u64) {
        self.step();
        self.maybe_skip(bound);
    }

    /// Jump `cycle` forward to the next possibly-interesting cycle, or do
    /// nothing if any component could act (or observe new state) before
    /// it. See DESIGN.md "Event-driven time skipping" for the calendar
    /// and the no-state-change proof obligations.
    fn maybe_skip(&mut self, bound: u64) {
        if !self.time_skip {
            return;
        }
        let cur = self.cycle;
        if cur >= bound {
            return;
        }
        let n = self.cores.len();
        if n > 64 {
            return; // forward-plan bitmask: far above any simulated CMP
        }
        // Gate 1: every core must be either blocked — with any memory
        // poll provably stuck at `Retry` for the whole window — or in a
        // compute phase with a provable memory-free horizon. The blocked
        // re-check mirrors `tick_cores`' pre-flight on *pure* views only:
        // a peek that could allocate/migrate, a probe that would hit, or
        // a free resource all mean the next tick mutates shared state —
        // no skip.
        let channels = self.cfg.dram.channels;
        let write_cap = self.cfg.ctrl.write_q_cap;
        let warm = self.cfg.warmup_instructions;
        let mut target = bound;
        let mut fwd: u64 = 0;
        for i in 0..n {
            match self.cores[i].idle_state() {
                dbp_cpu::IdleState::Blocked { timer, mem_poll } => {
                    if let Some(t) = timer {
                        target = target.min(t);
                    }
                    let Some((vaddr, _)) = mem_poll else { continue };
                    if self.poll_stuck[i] {
                        continue; // memoised stuck verdict, still valid
                    }
                    let Some(pa) = self.osmem.peek(i, vaddr) else {
                        return;
                    };
                    let line = pa & !63;
                    if self.caches[i].probe(pa) || self.mshrs[i].contains(line) {
                        return; // would hit or merge: the poll makes progress
                    }
                    let would_retry = self.mshrs[i].is_full()
                        || !self.ctrl.can_accept(self.ctrl.channel_of(line), false)
                        || (0..channels).any(|ch| self.ctrl.queue_len(ch, true) + 2 > write_cap);
                    if !would_retry {
                        return; // the poll would enqueue next tick
                    }
                }
                dbp_cpu::IdleState::Active => {
                    // Compute phase: the window is replayed with ordinary
                    // ticks (`Core::forward`), so the core's own timers
                    // fire internally and need no calendar entry — only
                    // its next possible memory dispatch bounds the jump.
                    let h = self.cores[i].compute_horizon();
                    if h == 0 {
                        return;
                    }
                    fwd |= 1 << i;
                    target = target.min(cur + h);
                    // Forwarded ticks retire instructions, but the warmup
                    // exit (`run`) and the finish check (`step`) observe
                    // `retired` on executed cycles only: end the window
                    // before this core could cross either threshold.
                    let retired = self.cores[i].retired();
                    let width = self.cores[i].max_retire_per_cycle();
                    let fence = |threshold: u64, target: &mut u64| {
                        let room = threshold.saturating_sub(retired);
                        *target = (*target).min(cur + room.saturating_sub(1) / width);
                    };
                    if retired < warm {
                        fence(warm, &mut target);
                    }
                    if self.finish_cycle[i].is_none() {
                        let done = self.base_retired[i] + self.cfg.target_instructions;
                        fence(done, &mut target);
                    }
                }
            }
        }
        // Gate 2: pending migration copy traffic that the controller
        // would accept means the next DRAM tick enqueues — no skip. (If
        // the queue is full it stays full for the whole window: nothing
        // issues or completes before the controller's next event.)
        if let Some(&(_, addr, is_write)) = self.migration_backlog.front() {
            if self.ctrl.can_accept(self.ctrl.channel_of(addr), is_write) {
                return;
            }
        }
        // Calendar: the jump lands on the earliest of the controller's
        // next event, a core wake timer, and the next epoch / feed
        // boundary (those run code even with everyone idle).
        let cpd = self.cfg.cpu_per_dram;
        let next_mult = |n: u64, m: u64| if n.is_multiple_of(m) { n } else { (n / m + 1) * m };
        target = target.min(next_mult(cur, self.cfg.epoch_cpu_cycles));
        target = target.min(next_mult(cur, self.cfg.instr_feed_interval));
        // The controller only acts on DRAM-tick cycles: when the window
        // already ends at or before the first one, its calendar cannot
        // lower `target` (`next_event` > `last_dram`, so scaled it is
        // ≥ `from * cpd`) and the query is skipped.
        let from = cur.div_ceil(cpd);
        if target > from * cpd {
            let last_dram = (cur - 1) / cpd;
            target = target.min(self.ctrl.next_event(last_dram).saturating_mul(cpd));
        }
        if target <= cur {
            return;
        }
        // Perform the jump: cycles [cur, target) are skipped, `target`
        // itself executes as a normal step.
        let k = target - cur;
        for (i, core) in self.cores.iter_mut().enumerate() {
            if fwd & (1 << i) != 0 {
                core.forward(cur, k);
            } else {
                core.skip_cycles(k);
            }
        }
        let count = target.div_ceil(cpd) - from;
        self.ctrl.skip_ticks(from, count);
        if self.host_prof.is_enabled() {
            self.ctr_skipped.add(k);
        }
        self.cycle = target;
    }

    fn step_impl<const PROF: bool>(&mut self) {
        let cycle = self.cycle;
        self.rec.set_cycle(cycle);
        if PROF {
            self.ctr_cycles.incr();
        }
        if cycle.is_multiple_of(self.cfg.cpu_per_dram) {
            let _s = PROF.then(|| self.host_prof.span("sim/dram_tick"));
            self.dram_tick(cycle / self.cfg.cpu_per_dram);
        }
        if cycle > 0 && cycle.is_multiple_of(self.cfg.epoch_cpu_cycles) {
            let _s = PROF.then(|| self.host_prof.span("sim/policy_epoch"));
            self.repartition();
        } else if cycle > 0 && cycle.is_multiple_of(self.cfg.instr_feed_interval) {
            let _s = PROF.then(|| self.host_prof.span("sim/feed_instructions"));
            self.feed_instructions();
        }
        let _s = PROF.then(|| self.host_prof.span("sim/cores_tick"));
        self.tick_cores(cycle);
        drop(_s);
        for i in 0..self.cores.len() {
            if self.finish_cycle[i].is_none()
                && self.cores[i].retired() - self.base_retired[i] >= self.cfg.target_instructions
            {
                self.finish_cycle[i] = Some(cycle + 1);
            }
        }
        self.cycle += 1;
    }

    fn dram_tick(&mut self, dram_now: u64) {
        // Feed backlog copy traffic gently (up to 4 requests per cycle).
        // The span opens only when there is a backlog: most DRAM ticks
        // have none, and an always-on child would drown the signal (and
        // cost two clock reads per tick) for an empty loop.
        if !self.migration_backlog.is_empty() {
            let _s = self.host_prof.span("sim/migration_feed");
            for _ in 0..4 {
                let Some(&(thread, addr, is_write)) = self.migration_backlog.front() else {
                    break;
                };
                let ch = self.ctrl.channel_of(addr);
                if !self.ctrl.can_accept(ch, is_write) {
                    break;
                }
                self.migration_backlog.pop_front();
                let id = self.next_req_id;
                self.next_req_id += 1;
                self.ctrl.enqueue(MemRequest::migration(id, thread, addr, is_write, dram_now));
                self.stats.migration_requests += 1;
            }
        }
        let mut buf = std::mem::take(&mut self.completions);
        buf.clear();
        self.ctrl.tick(dram_now, &mut buf);
        for c in &buf {
            let (core, line) = self.req_map.remove(&c.id).expect("completion for unknown request");
            self.poll_stuck[core] = false;
            self.mshrs[core].complete(line);
            if let Some(waiters) = self.waiting[core].remove(&line) {
                for load in waiters {
                    self.cores[core].complete(load);
                }
            }
        }
        self.completions = buf;
    }

    fn tick_cores(&mut self, cycle: u64) {
        let dram_now = cycle / self.cfg.cpu_per_dram;
        let channels = self.cfg.dram.channels;
        let write_cap = self.cfg.ctrl.write_q_cap;
        let charge_migration = self.cfg.migration_cost == MigrationCost::Charged;
        let lines_per_page = self.cfg.migration_lines_per_page;
        let page_bytes = u64::from(self.cfg.dram.page_bytes);
        let time_skip = self.time_skip;
        let System {
            cores,
            caches,
            mshrs,
            waiting,
            osmem,
            ctrl,
            req_map,
            next_req_id,
            migration_backlog,
            poll_stuck,
            stats,
            ..
        } = self;
        for (i, core) in cores.iter_mut().enumerate() {
            let cache = &mut caches[i];
            let mshr = &mut mshrs[i];
            let waits = &mut waiting[i];
            let stuck = &mut poll_stuck[i];
            let mut mem = |vaddr: u64, is_write: bool, load_id: u64| -> MemIssue {
                if time_skip && *stuck {
                    // Memoised verdict (see `poll_stuck`): this exact poll
                    // already proved Retry-on-full-MSHR and nothing that
                    // could change it has happened since.
                    return MemIssue::Retry;
                }
                let tr = osmem.translate(i, vaddr);
                if let Some(job) = tr.migration {
                    if charge_migration {
                        queue_migration_traffic(
                            migration_backlog,
                            stats,
                            &job,
                            lines_per_page,
                            page_bytes,
                        );
                    }
                }
                let pa = tr.pa;
                let line = pa & !63;
                // Resource pre-flight (only if this will miss the caches).
                let merged = mshr.contains(line);
                if !cache.probe(pa) && !merged {
                    if mshr.is_full() {
                        *stuck = true;
                        return MemIssue::Retry;
                    }
                    if !ctrl.can_accept(ctrl.channel_of(line), false) {
                        return MemIssue::Retry;
                    }
                    // Leave head-room for the up-to-two write-backs a fill
                    // can trigger.
                    for ch in 0..channels {
                        if ctrl.queue_len(ch, true) + 2 > write_cap {
                            return MemIssue::Retry;
                        }
                    }
                }
                let acc = cache.access(pa, is_write);
                for wb in &acc.writebacks {
                    let id = *next_req_id;
                    *next_req_id += 1;
                    ctrl.enqueue(MemRequest::writeback(id, i, *wb, dram_now));
                }
                match acc.level {
                    AccessLevel::L1Hit | AccessLevel::L2Hit => {
                        MemIssue::Done { latency: acc.latency }
                    }
                    AccessLevel::MemoryMiss => {
                        if !merged {
                            mshr.alloc(line);
                            let id = *next_req_id;
                            *next_req_id += 1;
                            req_map.insert(id, (i, line));
                            ctrl.enqueue(MemRequest::demand_read(id, i, line, dram_now));
                        }
                        if !is_write {
                            waits.entry(line).or_default().push(load_id);
                        }
                        MemIssue::Pending
                    }
                }
            };
            core.tick(cycle, &mut mem);
        }
    }

    fn feed_instructions(&mut self) {
        for i in 0..self.cores.len() {
            let retired = self.cores[i].retired();
            let delta = retired - self.last_fed_instr[i];
            self.last_fed_instr[i] = retired;
            self.ctrl.prof_mut().add_instructions(i, delta);
        }
    }

    fn repartition(&mut self) {
        self.feed_instructions();
        // Refilled budget / remapped pages can unstick any poll.
        self.poll_stuck.fill(false);
        self.osmem.refill_migration_budget(self.cfg.migration_budget_pages);
        let epoch = self.stats.repartitions;
        let snap = self.ctrl.prof_mut().take_epoch();
        if self.rec.is_enabled() {
            self.rec.emit(EventKind::EpochStart { epoch });
            for (t, p) in snap.iter().enumerate() {
                self.rec.emit(EventKind::ThreadProfile {
                    thread: t,
                    mpki: p.mpki(),
                    rbl: p.rbl(),
                    blp: p.blp(),
                });
            }
            let epoch_dram_cycles = self.cfg.epoch_cpu_cycles / self.cfg.cpu_per_dram;
            let (mut hits, mut rows) = (0u64, 0u64);
            for p in &snap {
                hits += p.row_hits;
                rows += p.row_hits + p.row_misses + p.row_conflicts;
            }
            self.rec.sample(EpochSample {
                epoch,
                cycle: self.cycle,
                queue_depth: self.ctrl.in_flight() as u64,
                row_hit_rate: if rows == 0 { 0.0 } else { hits as f64 / rows as f64 },
                bus_utilisation: snap.iter().map(|p| p.bus_cycles).sum::<u64>() as f64
                    / epoch_dram_cycles.max(1) as f64,
                threads: snap
                    .iter()
                    .map(|p| ThreadSample {
                        mpki: p.mpki(),
                        rbl: p.rbl(),
                        blp: p.blp(),
                        reads: p.reads,
                        avg_read_latency: p.avg_read_latency(),
                    })
                    .collect(),
            });
        }
        let profiles: Vec<ThreadMemProfile> = snap
            .iter()
            .map(|p| ThreadMemProfile {
                mpki: p.mpki(),
                rbl: p.rbl(),
                blp: p.blp(),
                reads: p.reads,
                bus_cycles: p.bus_cycles,
            })
            .collect();
        let plan = self.policy.partition(&profiles, &self.topo, self.last_plan.as_deref());
        if let Some(rack) = &mut self.audit {
            rack.observe(epoch, &profiles, &snap, &plan, &self.topo, &self.osmem);
        }
        if self.rec.is_enabled() {
            let changed_threads: Vec<usize> = (0..plan.len())
                .filter(|&t| self.last_plan.as_ref().is_none_or(|lp| lp[t] != plan[t]))
                .collect();
            self.rec.emit(EventKind::RepartitionPlan {
                epoch,
                plan: plan.iter().map(ToString::to_string).collect(),
                changed_threads,
            });
        }
        for (t, colors) in plan.iter().enumerate() {
            let changed = self.last_plan.as_ref().is_none_or(|lp| lp[t] != *colors);
            if changed {
                let mut jobs = self.osmem.set_partition(t, *colors);
                // A grown partition needs its pages spread to be useful.
                jobs.extend(self.osmem.rebalance_thread(t));
                if self.cfg.migration_cost == MigrationCost::Charged {
                    for job in &jobs {
                        queue_migration_traffic(
                            &mut self.migration_backlog,
                            &mut self.stats,
                            job,
                            self.cfg.migration_lines_per_page,
                            u64::from(self.cfg.dram.page_bytes),
                        );
                    }
                }
            }
        }
        self.last_plan = Some(plan);
        self.stats.repartitions += 1;
    }

    fn collect(&mut self) -> RunResult {
        self.feed_instructions();
        if let Some(rep) = self.ctrl.latency_report() {
            self.rec.set_latency(rep.clone());
        }
        if let Some(rack) = &self.audit {
            self.rec.set_audit(rack.report());
        }
        let target = self.cfg.target_instructions;
        let threads: Vec<ThreadResult> = (0..self.cores.len())
            .map(|i| {
                let prof = self.ctrl.prof().cumulative(i).delta(&self.prof_base[i]);
                let cycles = self.finish_cycle[i].unwrap_or(self.cycle) - self.measure_start;
                let retired = (self.cores[i].retired() - self.base_retired[i]).min(target);
                ThreadResult {
                    ipc: retired as f64 / cycles.max(1) as f64,
                    cycles_to_target: cycles,
                    reached_target: self.finish_cycle[i].is_some(),
                    mpki: prof.mpki(),
                    rbl: prof.rbl(),
                    blp: prof.blp(),
                    avg_read_latency: prof.avg_read_latency(),
                    reads: prof.reads,
                }
            })
            .collect();
        let dram_stats = match &self.dram_base {
            Some(base) => self.ctrl.dram().stats().delta(base),
            None => self.ctrl.dram().stats().clone(),
        };
        let elapsed_dram = (self.cycle - self.measure_start) / self.cfg.cpu_per_dram;
        RunResult {
            total_cycles: self.cycle - self.measure_start,
            reached_target: self.finish_cycle.iter().all(Option::is_some),
            row_hit_rate: {
                let mut hits = 0u64;
                let mut total = 0u64;
                for i in 0..self.cores.len() {
                    let p = self.ctrl.prof().cumulative(i).delta(&self.prof_base[i]);
                    hits += p.row_hits;
                    total += p.row_hits + p.row_misses + p.row_conflicts;
                }
                if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                }
            },
            dram: crate::metrics::DramActivity {
                activates: dram_stats.activates,
                reads: dram_stats.reads,
                writes: dram_stats.writes,
                refreshes: dram_stats.refreshes,
                elapsed: elapsed_dram,
            },
            bus_utilisation: dram_stats.bus_utilisation(elapsed_dram.max(1)),
            accesses_per_activate: dram_stats.accesses_per_activate(),
            bank_imbalance: dram_stats.bank_imbalance(),
            migrated_pages: self.osmem.stats().migrated_pages - self.os_base.migrated_pages,
            migration_requests: self.stats.migration_requests - self.sys_base.migration_requests,
            repartitions: self.stats.repartitions - self.sys_base.repartitions,
            fallback_allocations: self.osmem.stats().fallback_allocations
                - self.os_base.fallback_allocations,
            threads,
        }
    }
}

/// Expand one page migration into line-granularity copy traffic.
fn queue_migration_traffic(
    backlog: &mut VecDeque<(usize, u64, bool)>,
    stats: &mut SysStats,
    job: &MigrationJob,
    lines_per_page: u32,
    page_bytes: u64,
) {
    let half = u64::from(lines_per_page / 2).max(1);
    let stride = (page_bytes / half).max(64);
    for k in 0..half {
        backlog.push_back((job.thread, job.old_frame * page_bytes + k * stride, false));
        backlog.push_back((job.thread, job.new_frame * page_bytes + k * stride, true));
    }
    let _ = stats;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use dbp_core::policy::PolicyKind;
    use dbp_cpu::TraceOp;
    use dbp_workloads::{profiles, SyntheticTrace};

    fn stream_trace(stride_pages: u64) -> Box<dyn TraceSource> {
        let mut vpn = 0u64;
        let mut line = 0u64;
        Box::new(move || {
            line += 1;
            if line == 64 {
                line = 0;
                vpn += stride_pages;
            }
            TraceOp { gap: 20, addr: (vpn << 12) | (line << 6), is_write: false }
        })
    }

    fn small_cfg() -> SimConfig {
        let mut cfg = SimConfig::fast_test();
        cfg.target_instructions = 30_000;
        cfg
    }

    #[test]
    fn single_core_reaches_target() {
        let mut sys = System::new(small_cfg(), vec![stream_trace(1)]);
        let r = sys.run();
        assert!(r.reached_target);
        assert!(r.threads[0].ipc > 0.0);
        assert!(r.threads[0].reads > 0, "stream must miss to DRAM");
    }

    #[test]
    fn ipc_is_deterministic() {
        let run = || {
            let t = SyntheticTrace::new(profiles::by_name("mcf"), 7);
            let mut sys = System::new(small_cfg(), vec![Box::new(t)]);
            sys.run().threads[0].ipc
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn two_streams_interfere() {
        let solo = {
            let mut sys = System::new(small_cfg(), vec![stream_trace(1)]);
            sys.run().threads[0].ipc
        };
        let duo = {
            let mut sys = System::new(small_cfg(), vec![stream_trace(1), stream_trace(1)]);
            sys.run().threads[0].ipc
        };
        assert!(duo <= solo * 1.01, "co-runner cannot speed a thread up");
    }

    #[test]
    fn partitioned_threads_use_disjoint_banks() {
        let mut cfg = small_cfg();
        cfg.policy = PolicyKind::Equal;
        let mut sys = System::new(cfg, vec![stream_trace(1), stream_trace(1)]);
        sys.run();
        let plan = sys.current_plan().unwrap();
        assert!(plan[0].is_disjoint(&plan[1]));
        // No fallback allocations: partitions were large enough.
        assert_eq!(sys.osmem().stats().fallback_allocations, 0);
    }

    #[test]
    fn dbp_repartitions_during_run() {
        let mut cfg = small_cfg();
        cfg.policy = PolicyKind::Dbp(Default::default());
        cfg.epoch_cpu_cycles = 20_000;
        cfg.target_instructions = 100_000;
        cfg.warmup_instructions = 0; // count the settling migrations too
        let t0 = SyntheticTrace::new(profiles::by_name("mcf"), 1);
        let t1 = SyntheticTrace::new(profiles::by_name("libquantum"), 2);
        let mut sys = System::new(cfg, vec![Box::new(t0), Box::new(t1)]);
        let r = sys.run();
        assert!(r.repartitions >= 2, "epochs must fire");
        let plan = sys.current_plan().unwrap();
        assert!(plan[0].is_disjoint(&plan[1]), "both intensive: disjoint banks");
        assert!(r.migrated_pages > 0, "repartitioning must move pages");
    }

    #[test]
    fn tcm_scheduler_runs_end_to_end() {
        let mut cfg = small_cfg();
        cfg.scheduler = SchedulerKind::Tcm(Default::default());
        let t0 = SyntheticTrace::new(profiles::by_name("mcf"), 1);
        let t1 = SyntheticTrace::new(profiles::by_name("povray"), 2);
        let mut sys = System::new(cfg, vec![Box::new(t0), Box::new(t1)]);
        let r = sys.run();
        assert!(r.reached_target);
    }

    #[test]
    fn migration_cost_free_moves_pages_without_traffic() {
        let mut cfg = small_cfg();
        cfg.policy = PolicyKind::Dbp(Default::default());
        cfg.migration_cost = MigrationCost::Free;
        cfg.epoch_cpu_cycles = 20_000;
        let t0 = SyntheticTrace::new(profiles::by_name("mcf"), 1);
        let t1 = SyntheticTrace::new(profiles::by_name("lbm"), 2);
        let mut sys = System::new(cfg, vec![Box::new(t0), Box::new(t1)]);
        let r = sys.run();
        assert_eq!(r.migration_requests, 0);
    }

    #[test]
    fn row_hit_rate_reported() {
        let mut sys = System::new(small_cfg(), vec![stream_trace(1)]);
        let r = sys.run();
        assert!(r.row_hit_rate > 0.5, "a pure stream is row-friendly: {}", r.row_hit_rate);
    }

    #[test]
    fn time_skipping_engages_and_matches_stepped_run() {
        let mut cfg = small_cfg();
        cfg.policy = PolicyKind::Dbp(Default::default());
        cfg.epoch_cpu_cycles = 10_000;
        cfg.instr_feed_interval = 5_000;
        cfg.target_instructions = 40_000;
        let arm = |skip: bool| {
            let t0 = SyntheticTrace::new(profiles::by_name("mcf"), 11);
            let t1 = SyntheticTrace::new(profiles::by_name("libquantum"), 12);
            let prof = dbp_obs::Prof::enabled();
            let mut sys = System::with_instrumentation(
                cfg.clone(),
                vec![Box::new(t0), Box::new(t1)],
                Recorder::disabled(),
                prof,
            );
            sys.set_time_skip(skip);
            let r = sys.run();
            let skipped = sys.profiler().counter("sim/cycles_skipped").get();
            (r, skipped, sys.cycle())
        };
        let (skipped_run, skipped_cycles, skipped_end) = arm(true);
        let (stepped_run, stepped_skipped, stepped_end) = arm(false);
        assert_eq!(stepped_skipped, 0, "DBP_NO_SKIP semantics: no jumps");
        assert!(skipped_cycles > 0, "memory-bound mix must expose idle windows");
        assert_eq!(skipped_run, stepped_run);
        assert_eq!(skipped_end, stepped_end);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::config::SchedulerKind;
    use dbp_core::policy::PolicyKind;
    use dbp_util::prop::{check, range, Config};
    use dbp_util::{prop_assert, prop_assert_eq};
    use dbp_workloads::{profiles, SyntheticTrace};

    /// Skip-on and stepped runs of random mixes must agree on every
    /// reported metric, on final simulated time, and on per-rank refresh
    /// schedules, under every scheduler and both partition policies.
    #[test]
    fn time_skipping_is_bit_exact_end_to_end() {
        let names = ["mcf", "libquantum", "lbm", "povray", "gcc", "omnetpp"];
        let gen = (
            range(0usize..7),           // scheduler
            range(0usize..names.len()), // workload 0
            range(0usize..names.len()), // workload 1
            range(0u64..1000),          // seed base
            range(0usize..2),           // policy: none / dbp
        );
        check(Config::cases(6), &gen, |(s, w0, w1, seed, pol)| {
            let mut cfg = SimConfig::fast_test();
            cfg.epoch_cpu_cycles = 10_000;
            cfg.instr_feed_interval = 5_000;
            cfg.target_instructions = 20_000;
            cfg.scheduler = match s {
                0 => SchedulerKind::Fcfs,
                1 => SchedulerKind::FrFcfs,
                2 => SchedulerKind::FrFcfsCap(Default::default()),
                3 => SchedulerKind::ParBs(Default::default()),
                4 => SchedulerKind::Atlas(Default::default()),
                5 => SchedulerKind::Bliss(Default::default()),
                _ => SchedulerKind::Tcm(Default::default()),
            };
            if pol == 1 {
                cfg.policy = PolicyKind::Dbp(Default::default());
            }
            let arm = |skip: bool| {
                let t0 = SyntheticTrace::new(profiles::by_name(names[w0]), seed + 1);
                let t1 = SyntheticTrace::new(profiles::by_name(names[w1]), seed + 2);
                let mut sys = System::new(cfg.clone(), vec![Box::new(t0), Box::new(t1)]);
                sys.set_time_skip(skip);
                let run = sys.run();
                let dram = sys.ctrl().dram();
                let deadlines: Vec<u64> = (0..cfg.dram.channels)
                    .flat_map(|ch| (0..cfg.dram.ranks_per_channel).map(move |rk| (ch, rk)))
                    .map(|(ch, rk)| dram.refresh_deadline(ch, rk))
                    .collect();
                let s = dram.stats();
                (run, sys.cycle(), deadlines, (s.activates, s.reads, s.writes, s.refreshes))
            };
            let a = arm(true);
            let b = arm(false);
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2, b.2);
            prop_assert_eq!(a.3, b.3);
            prop_assert!(a.3 .3 > 0, "run must span at least one refresh");
            Ok(())
        });
    }

    /// Attaching the decision audit layer (shadow policies + estimator
    /// replica + convergence accounting) must leave the simulation
    /// byte-identical to an unobserved run — every metric, final
    /// simulated time, refresh schedules, DRAM counters — under every
    /// scheduler and both partition policies, and the audited arm must
    /// actually produce a populated report.
    #[test]
    fn audit_layer_is_observation_only_end_to_end() {
        let names = ["mcf", "libquantum", "lbm", "povray", "gcc", "omnetpp"];
        let gen = (
            range(0usize..7),           // scheduler
            range(0usize..names.len()), // workload 0
            range(0usize..names.len()), // workload 1
            range(0u64..1000),          // seed base
            range(0usize..2),           // policy: none / dbp
        );
        check(Config::cases(6), &gen, |(s, w0, w1, seed, pol)| {
            let mut cfg = SimConfig::fast_test();
            cfg.epoch_cpu_cycles = 10_000;
            cfg.instr_feed_interval = 5_000;
            cfg.target_instructions = 20_000;
            cfg.scheduler = match s {
                0 => SchedulerKind::Fcfs,
                1 => SchedulerKind::FrFcfs,
                2 => SchedulerKind::FrFcfsCap(Default::default()),
                3 => SchedulerKind::ParBs(Default::default()),
                4 => SchedulerKind::Atlas(Default::default()),
                5 => SchedulerKind::Bliss(Default::default()),
                _ => SchedulerKind::Tcm(Default::default()),
            };
            if pol == 1 {
                cfg.policy = PolicyKind::Dbp(Default::default());
            }
            let arm = |audit: bool| {
                let t0 = SyntheticTrace::new(profiles::by_name(names[w0]), seed + 1);
                let t1 = SyntheticTrace::new(profiles::by_name(names[w1]), seed + 2);
                let rec = if audit {
                    Recorder::new(RecorderConfig { audit: true, ..Default::default() })
                } else {
                    Recorder::disabled()
                };
                let mut sys = System::with_recorder(
                    cfg.clone(),
                    vec![Box::new(t0), Box::new(t1)],
                    rec.clone(),
                );
                let run = sys.run();
                let dram = sys.ctrl().dram();
                let deadlines: Vec<u64> = (0..cfg.dram.channels)
                    .flat_map(|ch| (0..cfg.dram.ranks_per_channel).map(move |rk| (ch, rk)))
                    .map(|(ch, rk)| dram.refresh_deadline(ch, rk))
                    .collect();
                let s = dram.stats();
                (
                    run,
                    sys.cycle(),
                    deadlines,
                    (s.activates, s.reads, s.writes, s.refreshes),
                    rec.snapshot().audit,
                )
            };
            let a = arm(true);
            let b = arm(false);
            prop_assert_eq!(&a.0, &b.0);
            prop_assert_eq!(a.1, b.1);
            prop_assert_eq!(a.2, b.2);
            prop_assert_eq!(a.3, b.3);
            let report = a.4.expect("audited arm publishes a report");
            prop_assert!(b.4.is_none(), "unobserved arm must not audit");
            prop_assert_eq!(report.threads, 2);
            prop_assert_eq!(report.shadows.len(), 3);
            prop_assert!(
                report.convergence.decisions > 0,
                "run must span at least one repartition decision"
            );
            Ok(())
        });
    }
}
