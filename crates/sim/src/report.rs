//! Plain-text table rendering for the benchmark harness.

/// A simple fixed-width table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Render as CSV (headers first; cells containing commas or quotes
    /// are quoted per RFC 4180).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with 3 decimal places (the harness convention).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as a signed percentage, e.g. `+4.3%`.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["mix", "WS"]);
        t.row(["mix100-1", "2.531"]);
        t.row(["gmean", "2.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("mix"));
        assert!(lines[2].contains("mix100-1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "say \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(1.043), "+4.3%");
        assert_eq!(pct(0.95), "-5.0%");
    }
}
