//! Plain-text table rendering and JSON summaries for the harness.

use dbp_obs::Json;

use crate::metrics::RunResult;

/// A simple fixed-width table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl Table {
    /// Render as CSV (headers first; cells containing commas or quotes
    /// are quoted per RFC 4180).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A [`RunResult`] as a JSON object, suitable as the `summary` of a
/// [`dbp_obs::export::metrics_document`].
pub fn run_result_json(r: &RunResult) -> Json {
    Json::obj([
        ("total_cycles", Json::uint(r.total_cycles)),
        ("reached_target", Json::Bool(r.reached_target)),
        ("row_hit_rate", Json::num(r.row_hit_rate)),
        ("bus_utilisation", Json::num(r.bus_utilisation)),
        ("accesses_per_activate", Json::num(r.accesses_per_activate)),
        ("bank_imbalance", Json::num(r.bank_imbalance)),
        ("migrated_pages", Json::uint(r.migrated_pages)),
        ("migration_requests", Json::uint(r.migration_requests)),
        ("repartitions", Json::uint(r.repartitions)),
        ("fallback_allocations", Json::uint(r.fallback_allocations)),
        (
            "threads",
            Json::arr(r.threads.iter().map(|t| {
                Json::obj([
                    ("ipc", Json::num(t.ipc)),
                    ("cycles_to_target", Json::uint(t.cycles_to_target)),
                    ("reached_target", Json::Bool(t.reached_target)),
                    ("mpki", Json::num(t.mpki)),
                    ("rbl", Json::num(t.rbl)),
                    ("blp", Json::num(t.blp)),
                    ("avg_read_latency", Json::num(t.avg_read_latency)),
                    ("reads", Json::uint(t.reads)),
                ])
            })),
        ),
    ])
}

/// Format a float with 3 decimal places (the harness convention).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as a signed percentage, e.g. `+4.3%`.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["mix", "WS"]);
        t.row(["mix100-1", "2.531"]);
        t.row(["gmean", "2.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("mix"));
        assert!(lines[2].contains("mix100-1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "say \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(1.043), "+4.3%");
        assert_eq!(pct(0.95), "-5.0%");
    }

    #[test]
    fn run_result_json_round_trips() {
        use crate::metrics::{DramActivity, ThreadResult};
        let r = RunResult {
            threads: vec![ThreadResult {
                ipc: 0.75,
                cycles_to_target: 40_000,
                reached_target: true,
                mpki: 21.5,
                rbl: 0.4,
                blp: 2.25,
                avg_read_latency: 180.0,
                reads: 860,
            }],
            total_cycles: 40_000,
            dram: DramActivity::default(),
            reached_target: true,
            row_hit_rate: 0.55,
            bus_utilisation: 0.31,
            accesses_per_activate: 1.8,
            bank_imbalance: 0.2,
            migrated_pages: 12,
            migration_requests: 12,
            repartitions: 3,
            fallback_allocations: 0,
        };
        let doc = dbp_obs::json::parse(&run_result_json(&r).to_json()).expect("must parse");
        assert_eq!(doc.get("total_cycles").and_then(|v| v.as_num()), Some(40_000.0));
        assert_eq!(doc.get("repartitions").and_then(|v| v.as_num()), Some(3.0));
        let t = &doc.get("threads").and_then(|v| v.as_arr()).expect("threads")[0];
        assert_eq!(t.get("ipc").and_then(|v| v.as_num()), Some(0.75));
        assert_eq!(t.get("reads").and_then(|v| v.as_num()), Some(860.0));
    }
}
