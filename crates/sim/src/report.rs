//! Plain-text table rendering and JSON summaries for the harness.

use dbp_obs::Json;

use crate::metrics::RunResult;

// The table renderer lives in `dbp-obs` (shared with `dbpreport` and the
// latency-anatomy tables); re-exported here for the harness's long-time
// users of `sim::report::Table`.
pub use dbp_obs::table::Table;

/// Render a captioned latency-anatomy report (re-export, see
/// [`dbp_obs::latency::latency_report_text`]).
pub use dbp_obs::latency::latency_report_text;

/// A [`RunResult`] as a JSON object, suitable as the `summary` of a
/// [`dbp_obs::export::metrics_document`].
pub fn run_result_json(r: &RunResult) -> Json {
    Json::obj([
        ("total_cycles", Json::uint(r.total_cycles)),
        ("reached_target", Json::Bool(r.reached_target)),
        ("row_hit_rate", Json::num(r.row_hit_rate)),
        ("bus_utilisation", Json::num(r.bus_utilisation)),
        ("accesses_per_activate", Json::num(r.accesses_per_activate)),
        ("bank_imbalance", Json::num(r.bank_imbalance)),
        ("migrated_pages", Json::uint(r.migrated_pages)),
        ("migration_requests", Json::uint(r.migration_requests)),
        ("repartitions", Json::uint(r.repartitions)),
        ("fallback_allocations", Json::uint(r.fallback_allocations)),
        (
            "threads",
            Json::arr(r.threads.iter().map(|t| {
                Json::obj([
                    ("ipc", Json::num(t.ipc)),
                    ("cycles_to_target", Json::uint(t.cycles_to_target)),
                    ("reached_target", Json::Bool(t.reached_target)),
                    ("mpki", Json::num(t.mpki)),
                    ("rbl", Json::num(t.rbl)),
                    ("blp", Json::num(t.blp)),
                    ("avg_read_latency", Json::num(t.avg_read_latency)),
                    ("reads", Json::uint(t.reads)),
                ])
            })),
        ),
    ])
}

/// Format a float with 3 decimal places (the harness convention).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as a signed percentage, e.g. `+4.3%`.
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_reexport_is_the_obs_renderer() {
        // Behavioural details are covered in `dbp-obs`; this pins the
        // re-export so harness callers keep compiling against it.
        let mut t = Table::new(["mix", "WS"]);
        t.row(["mix100-1", "2.531"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("mix100-1"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(1.043), "+4.3%");
        assert_eq!(pct(0.95), "-5.0%");
    }

    #[test]
    fn run_result_json_round_trips() {
        use crate::metrics::{DramActivity, ThreadResult};
        let r = RunResult {
            threads: vec![ThreadResult {
                ipc: 0.75,
                cycles_to_target: 40_000,
                reached_target: true,
                mpki: 21.5,
                rbl: 0.4,
                blp: 2.25,
                avg_read_latency: 180.0,
                reads: 860,
            }],
            total_cycles: 40_000,
            dram: DramActivity::default(),
            reached_target: true,
            row_hit_rate: 0.55,
            bus_utilisation: 0.31,
            accesses_per_activate: 1.8,
            bank_imbalance: 0.2,
            migrated_pages: 12,
            migration_requests: 12,
            repartitions: 3,
            fallback_allocations: 0,
        };
        let doc = dbp_obs::json::parse(&run_result_json(&r).to_json()).expect("must parse");
        assert_eq!(doc.get("total_cycles").and_then(|v| v.as_num()), Some(40_000.0));
        assert_eq!(doc.get("repartitions").and_then(|v| v.as_num()), Some(3.0));
        let t = &doc.get("threads").and_then(|v| v.as_arr()).expect("threads")[0];
        assert_eq!(t.get("ipc").and_then(|v| v.as_num()), Some(0.75));
        assert_eq!(t.get("reads").and_then(|v| v.as_num()), Some(860.0));
    }
}
