//! Whole-system configuration.

use dbp_cache::HierarchyConfig;
use dbp_core::policy::PolicyKind;
use dbp_cpu::CoreConfig;
use dbp_dram::DramConfig;
use dbp_memctrl::scheduler::{
    Atlas, AtlasConfig, Bliss, BlissConfig, Fcfs, FrFcfs, FrFcfsCap, FrFcfsCapConfig, ParBs,
    ParBsConfig, Scheduler, Tcm, TcmConfig,
};
use dbp_memctrl::CtrlConfig;
use dbp_osmem::MigrationMode;

/// Which request scheduler the controller runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    Fcfs,
    FrFcfs,
    FrFcfsCap(FrFcfsCapConfig),
    ParBs(ParBsConfig),
    Atlas(AtlasConfig),
    Bliss(BlissConfig),
    Tcm(TcmConfig),
}

impl SchedulerKind {
    /// Instantiate the scheduler for `threads` threads.
    pub fn build(&self, threads: usize) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fcfs => Box::new(Fcfs),
            SchedulerKind::FrFcfs => Box::new(FrFcfs),
            SchedulerKind::FrFcfsCap(cfg) => Box::new(FrFcfsCap::new(cfg)),
            SchedulerKind::ParBs(cfg) => Box::new(ParBs::new(cfg, threads)),
            SchedulerKind::Atlas(cfg) => Box::new(Atlas::new(cfg, threads)),
            SchedulerKind::Bliss(cfg) => Box::new(Bliss::new(cfg, threads)),
            SchedulerKind::Tcm(cfg) => Box::new(Tcm::new(cfg, threads)),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FrFcfs => "FR-FCFS",
            SchedulerKind::FrFcfsCap(_) => "FR-FCFS+Cap",
            SchedulerKind::ParBs(_) => "PAR-BS",
            SchedulerKind::Atlas(_) => "ATLAS",
            SchedulerKind::Bliss(_) => "BLISS",
            SchedulerKind::Tcm(_) => "TCM",
        }
    }
}

/// Whether page-migration traffic is charged to the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationCost {
    /// Each migrated page injects line-granularity copy traffic
    /// (reads of the old frame + writes of the new one).
    #[default]
    Charged,
    /// Migration is instantaneous and free (an upper bound used by the
    /// migration-cost ablation).
    Free,
}

/// Everything needed to build a [`crate::System`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub dram: DramConfig,
    pub ctrl: CtrlConfig,
    pub core: CoreConfig,
    pub hierarchy: HierarchyConfig,
    /// Outstanding-miss capacity per core.
    pub mshrs: usize,
    /// CPU cycles per DRAM bus cycle (4 GHz CPU over DDR3-1333 ~ 6).
    pub cpu_per_dram: u64,
    pub scheduler: SchedulerKind,
    pub policy: PolicyKind,
    /// Repartitioning epoch, CPU cycles.
    pub epoch_cpu_cycles: u64,
    /// How partition changes move resident pages.
    pub migration_mode: MigrationMode,
    pub migration_cost: MigrationCost,
    /// Instructions each thread executes before measurement starts.
    /// Warms the caches, lets first-touch allocation place the footprint,
    /// and lets dynamic policies settle (their first repartition wave —
    /// including its migration cost — happens here, as in the paper's
    /// steady-state methodology).
    pub warmup_instructions: u64,
    /// Per-thread instruction target *after warmup*; IPC is measured at
    /// this point.
    pub target_instructions: u64,
    /// Hard wall on simulated CPU cycles (safety against livelock).
    pub max_cpu_cycles: u64,
    /// How often retired-instruction counts are fed to the profiler,
    /// CPU cycles (must divide the epoch for clean accounting).
    pub instr_feed_interval: u64,
    /// Migration copy granularity: requests injected per migrated page
    /// (half reads, half writes). 128 = full 4 KiB page at 64 B lines.
    pub migration_lines_per_page: u32,
    /// Pages the OS migration daemon may move per epoch (None =
    /// unthrottled). Caps the disruption a repartition can cause within
    /// one epoch; the remainder moves in later epochs.
    pub migration_budget_pages: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            // 2 channels x 1 rank x 8 banks = 16 banks / 16 page colors:
            // the bank-to-thread ratio of the paper-era 4-core setups
            // (large enough to matter, small enough that threads contend).
            dram: DramConfig { ranks_per_channel: 1, rows_per_bank: 8192, ..DramConfig::default() },
            ctrl: CtrlConfig::default(),
            core: CoreConfig::default(),
            hierarchy: HierarchyConfig::default(),
            mshrs: 32,
            cpu_per_dram: 6,
            scheduler: SchedulerKind::FrFcfs,
            policy: PolicyKind::Unpartitioned,
            epoch_cpu_cycles: 1_000_000,
            migration_mode: MigrationMode::Lazy,
            migration_cost: MigrationCost::Charged,
            warmup_instructions: 500_000,
            target_instructions: 1_000_000,
            max_cpu_cycles: 2_000_000_000,
            instr_feed_interval: 100_000,
            migration_lines_per_page: 128,
            migration_budget_pages: Some(128),
        }
    }
}

impl SimConfig {
    /// A configuration sized for unit tests: small DRAM, short epochs,
    /// low instruction targets.
    pub fn fast_test() -> Self {
        SimConfig {
            dram: DramConfig { rows_per_bank: 1024, ..DramConfig::default() },
            epoch_cpu_cycles: 200_000,
            warmup_instructions: 20_000,
            target_instructions: 100_000,
            max_cpu_cycles: 200_000_000,
            instr_feed_interval: 20_000,
            ..Default::default()
        }
    }

    /// Validate cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated requirement.
    pub fn validate(&self) -> Result<(), String> {
        self.dram.validate()?;
        if self.cpu_per_dram == 0 {
            return Err("cpu_per_dram must be positive".into());
        }
        if self.epoch_cpu_cycles == 0 || self.instr_feed_interval == 0 {
            return Err("epoch and feed interval must be positive".into());
        }
        if self.instr_feed_interval > self.epoch_cpu_cycles {
            return Err("instr_feed_interval must not exceed the epoch".into());
        }
        if self.target_instructions == 0 {
            return Err("target_instructions must be positive".into());
        }
        if self.mshrs == 0 {
            return Err("mshrs must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimConfig::default().validate().unwrap();
        SimConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn scheduler_kinds_build() {
        for k in [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::FrFcfsCap(FrFcfsCapConfig::default()),
            SchedulerKind::ParBs(ParBsConfig::default()),
            SchedulerKind::Atlas(AtlasConfig::default()),
            SchedulerKind::Bliss(BlissConfig::default()),
            SchedulerKind::Tcm(TcmConfig::default()),
        ] {
            let s = k.build(4);
            assert!(!s.name().is_empty());
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn validation_catches_bad_feed_interval() {
        let mut c = SimConfig::default();
        c.instr_feed_interval = c.epoch_cpu_cycles + 1;
        assert!(c.validate().is_err());
    }
}
