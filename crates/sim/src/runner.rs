//! Experiment runner: alone runs, shared runs, and metric assembly.
//!
//! Methodology (standard for multiprogrammed memory studies, and the one
//! the paper uses): every thread runs until a fixed instruction target;
//! threads that finish early keep executing to sustain contention; IPC is
//! measured at the target. `ipc_alone` comes from running each benchmark
//! alone on the same memory system with the FR-FCFS baseline and no
//! partitioning.

use dbp_core::policy::PolicyKind;
use dbp_cpu::TraceSource;
use dbp_workloads::{Mix, SyntheticTrace};

use crate::config::{SchedulerKind, SimConfig};
use crate::metrics::{MixMetrics, RunResult};
use crate::system::System;

/// A fully measured mix: alone IPCs, the shared run, and the metrics.
#[derive(Debug, Clone)]
pub struct MixRun {
    pub mix_name: &'static str,
    pub alone_ipcs: Vec<f64>,
    pub shared: RunResult,
    pub metrics: MixMetrics,
}

impl MixRun {
    /// Assemble a measured mix from already-computed parts.
    ///
    /// # Panics
    ///
    /// Panics if `alone_ipcs` does not hold exactly one baseline per core
    /// of `mix` — a stale cache entry for a different core count must
    /// fail loudly instead of indexing metrics against the wrong
    /// baselines.
    pub fn from_parts(mix: &Mix, alone_ipcs: Vec<f64>, shared: RunResult) -> MixRun {
        assert_eq!(
            alone_ipcs.len(),
            mix.cores(),
            "alone-run baseline count does not match mix `{}` core count",
            mix.name
        );
        let metrics = MixMetrics::new(&alone_ipcs, &shared.ipcs());
        MixRun { mix_name: mix.name, alone_ipcs, shared, metrics }
    }

    /// Weighted speedup of the shared run.
    pub fn weighted_speedup(&self) -> f64 {
        self.metrics.weighted_speedup
    }

    /// Maximum slowdown of the shared run.
    pub fn max_slowdown(&self) -> f64 {
        self.metrics.max_slowdown
    }
}

/// Deterministic seed for (mix, core): FNV-1a over the mix name, the
/// benchmark name, and the core index, so repeated benchmarks in scaled
/// mixes get distinct streams.
///
/// The core index is folded into the FNV stream itself (not XORed onto
/// the result afterwards): two cores running the same benchmark in the
/// same mix must get seeds that differ throughout the word, not in a
/// couple of high bits, or their generator streams start out correlated.
pub fn seed_for(mix: &Mix, core: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let bytes =
        mix.name.bytes().chain(mix.benchmarks[core].bytes()).chain((core as u64).to_le_bytes());
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The synthetic trace for one core of a mix.
pub fn trace_for(mix: &Mix, core: usize) -> Box<dyn TraceSource> {
    let profile = dbp_workloads::profiles::by_name(mix.benchmarks[core]);
    Box::new(SyntheticTrace::new(profile, seed_for(mix, core)))
}

/// The configuration an alone run actually executes under: the shared
/// run's system with the baseline FR-FCFS scheduler and no partitioning,
/// regardless of what `cfg` selects for the shared run.
pub fn alone_config(cfg: &SimConfig) -> SimConfig {
    let mut alone_cfg = cfg.clone();
    alone_cfg.scheduler = SchedulerKind::FrFcfs;
    alone_cfg.policy = PolicyKind::Unpartitioned;
    alone_cfg
}

/// The [`SimConfig`] fields that can influence an alone run, rendered as
/// a stable string (a memoization key for solo-run caches).
///
/// Scheduler, policy, and the migration knobs are deliberately excluded:
/// alone runs always execute under FR-FCFS/Unpartitioned (see
/// [`alone_config`]), and with a static whole-machine partition no page
/// ever migrates, so those fields cannot change the outcome. Everything
/// else — DRAM geometry/timing/mapping, controller queues, core model,
/// cache hierarchy, clock ratio, epoch length (it sets the minimum
/// warmup span), and the instruction targets — is included.
pub fn alone_fingerprint(cfg: &SimConfig) -> String {
    format!(
        "dram={:?};ctrl={:?};core={:?};hier={:?};mshrs={};ratio={};epoch={};warm={};target={};cap={};feed={}",
        cfg.dram,
        cfg.ctrl,
        cfg.core,
        cfg.hierarchy,
        cfg.mshrs,
        cfg.cpu_per_dram,
        cfg.epoch_cpu_cycles,
        cfg.warmup_instructions,
        cfg.target_instructions,
        cfg.max_cpu_cycles,
        cfg.instr_feed_interval,
    )
}

/// An alone run hit the cycle cap before reaching its instruction
/// target: its IPC would be truncated, and every weighted-speedup /
/// maximum-slowdown number derived from it silently wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AloneRunError {
    pub mix: &'static str,
    pub benchmark: &'static str,
    pub core: usize,
    pub max_cpu_cycles: u64,
    pub target_instructions: u64,
}

impl std::fmt::Display for AloneRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "alone run of `{}` (core {} of mix `{}`) hit the cycle cap: \
             {} CPU cycles elapsed before the target of {} instructions; \
             its IPC would be a truncated lower bound, poisoning every \
             metric derived from it — raise max_cpu_cycles or lower \
             target_instructions",
            self.benchmark, self.core, self.mix, self.max_cpu_cycles, self.target_instructions
        )
    }
}

impl std::error::Error for AloneRunError {}

/// Alone-run IPC of one benchmark of `mix`, or an error if the run hit
/// the cycle cap before the instruction target.
pub fn try_alone_ipc(cfg: &SimConfig, mix: &Mix, core: usize) -> Result<f64, AloneRunError> {
    let mut sys = System::new(alone_config(cfg), vec![trace_for(mix, core)]);
    let r = sys.run();
    if !r.reached_target {
        return Err(AloneRunError {
            mix: mix.name,
            benchmark: mix.benchmarks[core],
            core,
            max_cpu_cycles: cfg.max_cpu_cycles,
            target_instructions: cfg.target_instructions,
        });
    }
    Ok(r.threads[0].ipc)
}

/// Alone-run IPC of one benchmark of `mix`.
///
/// # Panics
///
/// Panics — in every build profile, not just debug — if the run hits the
/// cycle cap before the instruction target (see [`AloneRunError`]).
pub fn alone_ipc(cfg: &SimConfig, mix: &Mix, core: usize) -> f64 {
    try_alone_ipc(cfg, mix, core).unwrap_or_else(|e| panic!("{e}"))
}

/// Alone-run IPC of every benchmark in `mix`: each runs by itself on the
/// full memory system (FR-FCFS, unpartitioned), regardless of what
/// `cfg` selects for the shared run.
///
/// # Panics
///
/// Panics — in every build profile — if any alone run hits the cycle cap
/// before the instruction target (see [`AloneRunError`]).
pub fn alone_ipcs(cfg: &SimConfig, mix: &Mix) -> Vec<f64> {
    (0..mix.cores()).map(|i| alone_ipc(cfg, mix, i)).collect()
}

/// The shared (co-scheduled) run of `mix` under `cfg`.
pub fn run_shared(cfg: &SimConfig, mix: &Mix) -> RunResult {
    let traces = (0..mix.cores()).map(|i| trace_for(mix, i)).collect();
    let mut sys = System::new(cfg.clone(), traces);
    sys.run()
}

/// [`run_shared`], emitting telemetry into `rec`. The recorder only
/// observes: with a disabled recorder this is byte-identical to
/// [`run_shared`] (the determinism suite asserts it for an enabled one
/// too).
pub fn run_shared_recorded(cfg: &SimConfig, mix: &Mix, rec: dbp_obs::Recorder) -> RunResult {
    let traces = (0..mix.cores()).map(|i| trace_for(mix, i)).collect();
    let mut sys = System::with_recorder(cfg.clone(), traces, rec);
    sys.run()
}

/// [`run_shared`], with full instrumentation: telemetry into `rec`,
/// host-side self-profiling spans/counters into `prof`. Both only
/// observe — the simulated outcome is byte-identical to [`run_shared`].
///
/// Call [`dbp_obs::Prof::snapshot`] afterwards to read the profile; when
/// this runs on a pool worker thread, call [`dbp_obs::Prof::flush_thread`]
/// before the job returns (see the `Prof` docs for the contract).
pub fn run_shared_instrumented(
    cfg: &SimConfig,
    mix: &Mix,
    rec: dbp_obs::Recorder,
    prof: dbp_obs::Prof,
) -> RunResult {
    let traces = (0..mix.cores()).map(|i| trace_for(mix, i)).collect();
    let mut sys = System::with_instrumentation(cfg.clone(), traces, rec, prof);
    sys.run()
}

/// [`run_shared`], self-profiled only (no telemetry recorder).
pub fn run_shared_profiled(cfg: &SimConfig, mix: &Mix, prof: dbp_obs::Prof) -> RunResult {
    run_shared_instrumented(cfg, mix, dbp_obs::Recorder::disabled(), prof)
}

/// [`run_shared`], with per-request latency anatomy switched on: returns
/// the run result plus the measured [`dbp_obs::LatencyReport`]
/// (histograms, breakdowns, and the interference matrices).
///
/// Each call owns a private recorder, so this is safe to fan out across
/// worker threads (the recorder's shared state is not `Send`; it never
/// leaves this call).
pub fn run_shared_latency(cfg: &SimConfig, mix: &Mix) -> (RunResult, dbp_obs::LatencyReport) {
    let rec = dbp_obs::Recorder::new(Default::default());
    let result = run_shared_recorded(cfg, mix, rec.clone());
    let latency = rec.snapshot().latency.unwrap_or_default();
    (result, latency)
}

/// [`run_shared`], with the decision audit layer switched on: shadow
/// policies, demand-prediction accuracy, and convergence telemetry.
/// Returns the run result plus the [`dbp_obs::AuditReport`]. The audit
/// only observes — the simulated outcome is byte-identical to
/// [`run_shared`] (a property test over all schedulers asserts it).
pub fn run_shared_audited(cfg: &SimConfig, mix: &Mix) -> (RunResult, dbp_obs::AuditReport) {
    let rec = dbp_obs::Recorder::new(dbp_obs::RecorderConfig { audit: true, ..Default::default() });
    let result = run_shared_recorded(cfg, mix, rec.clone());
    let audit = rec.snapshot().audit.unwrap_or_default();
    (result, audit)
}

/// Alone runs + shared run + metrics in one call.
pub fn run_mix(cfg: &SimConfig, mix: &Mix) -> MixRun {
    let alone = alone_ipcs(cfg, mix);
    run_mix_with_alone(cfg, mix, alone)
}

/// Shared run + metrics, reusing already-measured alone IPCs (they do not
/// depend on the scheduler/policy under test, so sweeps share them).
///
/// # Panics
///
/// Panics if `alone_ipcs.len() != mix.cores()` (see
/// [`MixRun::from_parts`]).
pub fn run_mix_with_alone(cfg: &SimConfig, mix: &Mix, alone_ipcs: Vec<f64>) -> MixRun {
    MixRun::from_parts(mix, alone_ipcs, run_shared(cfg, mix))
}

/// [`run_mix`], with the *shared* run emitting telemetry into `rec`
/// (alone runs are calibration, not the experiment, so they stay silent).
pub fn run_mix_recorded(cfg: &SimConfig, mix: &Mix, rec: dbp_obs::Recorder) -> MixRun {
    let alone_ipcs = alone_ipcs(cfg, mix);
    MixRun::from_parts(mix, alone_ipcs, run_shared_recorded(cfg, mix, rec))
}

/// [`run_mix`], with the *shared* run fully instrumented (telemetry into
/// `rec`, self-profiling into `prof`). Alone runs are calibration, not
/// the experiment, so they stay unrecorded and unprofiled — a profile of
/// this call measures the shared run's host cost only.
pub fn run_mix_instrumented(
    cfg: &SimConfig,
    mix: &Mix,
    rec: dbp_obs::Recorder,
    prof: dbp_obs::Prof,
) -> MixRun {
    let alone_ipcs = alone_ipcs(cfg, mix);
    MixRun::from_parts(mix, alone_ipcs, run_shared_instrumented(cfg, mix, rec, prof))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_workloads::mixes_4core;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::fast_test();
        cfg.target_instructions = 40_000;
        cfg
    }

    #[test]
    fn seeds_differ_across_cores_and_mixes() {
        let mixes = mixes_4core();
        assert_ne!(seed_for(&mixes[0], 0), seed_for(&mixes[0], 1));
        assert_ne!(seed_for(&mixes[0], 0), seed_for(&mixes[1], 0));
    }

    #[test]
    fn seeds_differ_in_low_word_for_repeated_benchmarks() {
        // A scaled mix repeats its benchmarks: cores 0 and 4 run the same
        // program with the same mix name, so the *only* distinguisher is
        // the core index. The old `h ^ (core << 32)` left such seeds
        // identical in the low 32 bits (correlated generator streams);
        // folding the core into the FNV stream must perturb both halves.
        let m8 = dbp_workloads::scale_mix(&mixes_4core()[0], 8);
        assert_eq!(m8.benchmarks[0], m8.benchmarks[4]);
        let a = seed_for(&m8, 0);
        let b = seed_for(&m8, 4);
        assert_ne!(a & 0xffff_ffff, b & 0xffff_ffff, "low word must differ");
        assert_ne!(a >> 32, b >> 32, "high word must differ");
    }

    #[test]
    #[should_panic(expected = "cycle cap")]
    fn alone_run_hitting_cycle_cap_panics_in_every_profile() {
        // A cycle cap far below what the instruction target needs: the
        // old debug_assert! compiled away in --release and fed the
        // truncated IPC straight into the headline metrics.
        let mut cfg = tiny_cfg();
        cfg.max_cpu_cycles = 10_000;
        let _ = alone_ipcs(&cfg, &mixes_4core()[0]);
    }

    #[test]
    fn try_alone_ipc_reports_cycle_cap_context() {
        let mut cfg = tiny_cfg();
        cfg.max_cpu_cycles = 10_000;
        let mix = &mixes_4core()[0];
        let err = try_alone_ipc(&cfg, mix, 1).unwrap_err();
        assert_eq!(err.mix, mix.name);
        assert_eq!(err.benchmark, mix.benchmarks[1]);
        assert_eq!(err.core, 1);
        let msg = err.to_string();
        assert!(msg.contains("cycle cap") && msg.contains(mix.benchmarks[1]), "{msg}");
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn stale_alone_vector_for_wrong_core_count_fails_loudly() {
        let cfg = tiny_cfg();
        let mix = &mixes_4core()[0]; // 4 cores
        run_mix_with_alone(&cfg, mix, vec![0.5, 0.5]); // stale 2-core cache entry
    }

    #[test]
    fn alone_fingerprint_tracks_alone_relevant_fields_only() {
        let cfg = tiny_cfg();
        let base = alone_fingerprint(&cfg);
        // Scheduler/policy/migration knobs cannot affect an alone run.
        let mut c = cfg.clone();
        c.scheduler = SchedulerKind::Tcm(Default::default());
        c.policy = PolicyKind::Dbp(Default::default());
        c.migration_budget_pages = None;
        c.migration_cost = crate::config::MigrationCost::Free;
        assert_eq!(alone_fingerprint(&c), base);
        // DRAM geometry and the instruction target do.
        let mut c = cfg.clone();
        c.dram.banks_per_rank *= 2;
        assert_ne!(alone_fingerprint(&c), base);
        let mut c = cfg;
        c.target_instructions += 1;
        assert_ne!(alone_fingerprint(&c), base);
    }

    #[test]
    fn latency_anatomy_is_deterministic_and_observation_only() {
        let cfg = tiny_cfg();
        let mix = &mixes_4core()[0];
        let (r1, l1) = run_shared_latency(&cfg, mix);
        let (r2, l2) = run_shared_latency(&cfg, mix);
        assert_eq!(l1, l2, "seeded runs must produce identical anatomy");
        assert_eq!(l1.cores.len(), mix.cores());
        assert_eq!(l1.bank_interference.n(), mix.cores());
        assert!(l1.total_reads() > 0, "measured window must profile reads");
        // Observation only: the recorded run's headline numbers match an
        // unrecorded run of the same seed.
        let plain = run_shared(&cfg, mix);
        assert_eq!(plain.total_cycles, r1.total_cycles);
        assert_eq!(r1.total_cycles, r2.total_cycles);
        for (a, b) in plain.threads.iter().zip(&r1.threads) {
            assert_eq!(a.ipc, b.ipc);
            assert_eq!(a.reads, b.reads);
        }
    }

    #[test]
    fn audited_run_is_deterministic_and_observation_only() {
        let cfg = SimConfig {
            policy: dbp_core::policy::PolicyKind::Dbp(Default::default()),
            ..tiny_cfg()
        };
        let mix = &mixes_4core()[0];
        let (r1, a1) = run_shared_audited(&cfg, mix);
        let (r2, a2) = run_shared_audited(&cfg, mix);
        assert_eq!(a1, a2, "seeded runs must produce identical audits");
        assert_eq!(a1.threads, mix.cores());
        assert_eq!(a1.shadows.len(), 3, "standard rack: equal, MCP, alt-DBP");
        assert!(a1.convergence.decisions > 0, "run must span repartition decisions");
        assert_eq!(a1.epochs.len() as u64, a1.convergence.decisions);
        assert!(
            a1.prediction.iter().any(|p| p.samples > 0),
            "multi-epoch run must pair predictions with outcomes"
        );
        // Observation only: the audited run's headline numbers match an
        // unaudited run of the same seed.
        let plain = run_shared(&cfg, mix);
        assert_eq!(plain.total_cycles, r1.total_cycles);
        assert_eq!(r1.total_cycles, r2.total_cycles);
        for (a, b) in plain.threads.iter().zip(&r1.threads) {
            assert_eq!(a.ipc, b.ipc);
            assert_eq!(a.reads, b.reads);
        }
    }

    #[test]
    fn profiled_run_is_observation_only_and_sums_exactly() {
        let cfg = tiny_cfg();
        let mix = &mixes_4core()[0];
        let plain = run_shared(&cfg, mix);
        let prof = dbp_obs::Prof::enabled();
        let r = run_shared_profiled(&cfg, mix, prof.clone());
        // Observation only: identical simulated outcome.
        assert_eq!(plain.total_cycles, r.total_cycles);
        for (a, b) in plain.threads.iter().zip(&r.threads) {
            assert_eq!(a.ipc, b.ipc);
            assert_eq!(a.reads, b.reads);
        }
        let p = prof.snapshot();
        assert!(!p.is_empty());
        let roots: Vec<&str> = p.spans.iter().map(|s| s.name.as_str()).collect();
        for phase in ["sim/warmup", "sim/measure", "sim/collect"] {
            assert!(roots.contains(&phase), "missing root span {phase}: {roots:?}");
        }
        // The cycle counter is the ground truth the spans observe: every
        // step — warmup and measured — increments it exactly once.
        let stepped = p
            .counters
            .iter()
            .find(|(n, _)| n == "sim/cycles_stepped")
            .map(|&(_, v)| v)
            .expect("cycle counter present");
        let measure = p.spans.iter().find(|s| s.name == "sim/measure").unwrap();
        let cores_tick: u64 =
            measure.children.iter().filter(|c| c.name == "sim/cores_tick").map(|c| c.count).sum();
        assert!(stepped >= cores_tick, "steps span warmup too");
        assert!(cores_tick > 0, "measured window must step");
    }

    #[test]
    fn run_mix_produces_consistent_metrics() {
        let cfg = tiny_cfg();
        let mix = &mixes_4core()[2]; // mix25-1: one intensive + three calm
        let run = run_mix(&cfg, mix);
        assert_eq!(run.alone_ipcs.len(), 4);
        assert!(run.weighted_speedup() > 0.0 && run.weighted_speedup() <= 4.2);
        assert!(run.max_slowdown() >= 1.0 - 1e-6, "shared can't beat alone");
    }

    #[test]
    fn alone_runs_are_reusable() {
        let cfg = tiny_cfg();
        let mix = &mixes_4core()[0];
        let alone = alone_ipcs(&cfg, mix);
        let a = run_mix_with_alone(&cfg, mix, alone.clone());
        let b = run_mix_with_alone(&cfg, mix, alone);
        assert_eq!(a.metrics.weighted_speedup, b.metrics.weighted_speedup);
    }
}
