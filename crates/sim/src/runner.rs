//! Experiment runner: alone runs, shared runs, and metric assembly.
//!
//! Methodology (standard for multiprogrammed memory studies, and the one
//! the paper uses): every thread runs until a fixed instruction target;
//! threads that finish early keep executing to sustain contention; IPC is
//! measured at the target. `ipc_alone` comes from running each benchmark
//! alone on the same memory system with the FR-FCFS baseline and no
//! partitioning.

use dbp_core::policy::PolicyKind;
use dbp_cpu::TraceSource;
use dbp_workloads::{Mix, SyntheticTrace};

use crate::config::{SchedulerKind, SimConfig};
use crate::metrics::{MixMetrics, RunResult};
use crate::system::System;

/// A fully measured mix: alone IPCs, the shared run, and the metrics.
#[derive(Debug, Clone)]
pub struct MixRun {
    pub mix_name: &'static str,
    pub alone_ipcs: Vec<f64>,
    pub shared: RunResult,
    pub metrics: MixMetrics,
}

impl MixRun {
    /// Weighted speedup of the shared run.
    pub fn weighted_speedup(&self) -> f64 {
        self.metrics.weighted_speedup
    }

    /// Maximum slowdown of the shared run.
    pub fn max_slowdown(&self) -> f64 {
        self.metrics.max_slowdown
    }
}

/// Deterministic seed for (mix, core): FNV-1a over the mix name plus the
/// core index, so repeated benchmarks in scaled mixes get distinct
/// streams.
pub fn seed_for(mix: &Mix, core: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in mix.name.bytes().chain(mix.benchmarks[core].bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (core as u64) << 32
}

/// The synthetic trace for one core of a mix.
pub fn trace_for(mix: &Mix, core: usize) -> Box<dyn TraceSource> {
    let profile = dbp_workloads::profiles::by_name(mix.benchmarks[core]);
    Box::new(SyntheticTrace::new(profile, seed_for(mix, core)))
}

/// Alone-run IPC of every benchmark in `mix`: each runs by itself on the
/// full memory system (FR-FCFS, unpartitioned), regardless of what
/// `cfg` selects for the shared run.
pub fn alone_ipcs(cfg: &SimConfig, mix: &Mix) -> Vec<f64> {
    let mut alone_cfg = cfg.clone();
    alone_cfg.scheduler = SchedulerKind::FrFcfs;
    alone_cfg.policy = PolicyKind::Unpartitioned;
    (0..mix.cores())
        .map(|i| {
            let mut sys = System::new(alone_cfg.clone(), vec![trace_for(mix, i)]);
            let r = sys.run();
            debug_assert!(r.reached_target, "alone run hit the cycle cap");
            r.threads[0].ipc
        })
        .collect()
}

/// The shared (co-scheduled) run of `mix` under `cfg`.
pub fn run_shared(cfg: &SimConfig, mix: &Mix) -> RunResult {
    let traces = (0..mix.cores()).map(|i| trace_for(mix, i)).collect();
    let mut sys = System::new(cfg.clone(), traces);
    sys.run()
}

/// [`run_shared`], emitting telemetry into `rec`. The recorder only
/// observes: with a disabled recorder this is byte-identical to
/// [`run_shared`] (the determinism suite asserts it for an enabled one
/// too).
pub fn run_shared_recorded(cfg: &SimConfig, mix: &Mix, rec: dbp_obs::Recorder) -> RunResult {
    let traces = (0..mix.cores()).map(|i| trace_for(mix, i)).collect();
    let mut sys = System::with_recorder(cfg.clone(), traces, rec);
    sys.run()
}

/// Alone runs + shared run + metrics in one call.
pub fn run_mix(cfg: &SimConfig, mix: &Mix) -> MixRun {
    let alone = alone_ipcs(cfg, mix);
    run_mix_with_alone(cfg, mix, alone)
}

/// Shared run + metrics, reusing already-measured alone IPCs (they do not
/// depend on the scheduler/policy under test, so sweeps share them).
pub fn run_mix_with_alone(cfg: &SimConfig, mix: &Mix, alone_ipcs: Vec<f64>) -> MixRun {
    let shared = run_shared(cfg, mix);
    let metrics = MixMetrics::new(&alone_ipcs, &shared.ipcs());
    MixRun { mix_name: mix.name, alone_ipcs, shared, metrics }
}

/// [`run_mix`], with the *shared* run emitting telemetry into `rec`
/// (alone runs are calibration, not the experiment, so they stay silent).
pub fn run_mix_recorded(cfg: &SimConfig, mix: &Mix, rec: dbp_obs::Recorder) -> MixRun {
    let alone_ipcs = alone_ipcs(cfg, mix);
    let shared = run_shared_recorded(cfg, mix, rec);
    let metrics = MixMetrics::new(&alone_ipcs, &shared.ipcs());
    MixRun { mix_name: mix.name, alone_ipcs, shared, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_workloads::mixes_4core;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::fast_test();
        cfg.target_instructions = 40_000;
        cfg
    }

    #[test]
    fn seeds_differ_across_cores_and_mixes() {
        let mixes = mixes_4core();
        assert_ne!(seed_for(&mixes[0], 0), seed_for(&mixes[0], 1));
        assert_ne!(seed_for(&mixes[0], 0), seed_for(&mixes[1], 0));
    }

    #[test]
    fn run_mix_produces_consistent_metrics() {
        let cfg = tiny_cfg();
        let mix = &mixes_4core()[2]; // mix25-1: one intensive + three calm
        let run = run_mix(&cfg, mix);
        assert_eq!(run.alone_ipcs.len(), 4);
        assert!(run.weighted_speedup() > 0.0 && run.weighted_speedup() <= 4.2);
        assert!(run.max_slowdown() >= 1.0 - 1e-6, "shared can't beat alone");
    }

    #[test]
    fn alone_runs_are_reusable() {
        let cfg = tiny_cfg();
        let mix = &mixes_4core()[0];
        let alone = alone_ipcs(&cfg, mix);
        let a = run_mix_with_alone(&cfg, mix, alone.clone());
        let b = run_mix_with_alone(&cfg, mix, alone);
        assert_eq!(a.metrics.weighted_speedup, b.metrics.weighted_speedup);
    }
}
