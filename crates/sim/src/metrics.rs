//! Multiprogrammed-performance metrics: weighted speedup (system
//! throughput), harmonic speedup, and maximum slowdown (unfairness) —
//! the three metrics the paper reports.

/// Per-thread outcome of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadResult {
    /// Instructions per CPU cycle up to the instruction target.
    pub ipc: f64,
    /// Cycles to reach the target (total cycles if it never did).
    pub cycles_to_target: u64,
    /// Whether the thread reached the instruction target.
    pub reached_target: bool,
    /// Measured demand-read MPKI.
    pub mpki: f64,
    /// Measured row-buffer locality.
    pub rbl: f64,
    /// Measured bank-level parallelism.
    pub blp: f64,
    /// Average DRAM read latency (queueing + service), DRAM cycles.
    pub avg_read_latency: f64,
    /// Demand reads issued.
    pub reads: u64,
}

/// DRAM activity during the measured window (command counts for energy
/// accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramActivity {
    pub activates: u64,
    pub reads: u64,
    pub writes: u64,
    pub refreshes: u64,
    /// DRAM bus cycles elapsed in the window.
    pub elapsed: u64,
}

impl DramActivity {
    /// Energy in nanojoules under `model`.
    pub fn energy_nj(&self, model: &dbp_dram::EnergyModel) -> f64 {
        // Rebuild a DramStats shell for the model's accounting.
        let stats = dbp_dram::DramStats {
            activates: self.activates,
            reads: self.reads,
            writes: self.writes,
            refreshes: self.refreshes,
            ..Default::default()
        };
        model.total_nj(&stats, self.elapsed)
    }
}

/// Whole-system outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    pub threads: Vec<ThreadResult>,
    pub total_cycles: u64,
    /// DRAM command activity in the measured window.
    pub dram: DramActivity,
    /// All threads reached the instruction target before the cycle cap.
    pub reached_target: bool,
    /// System-wide row-buffer hit rate across serviced requests.
    pub row_hit_rate: f64,
    /// DRAM data-bus utilisation over the run.
    pub bus_utilisation: f64,
    /// Column accesses per row activation (device-level locality).
    pub accesses_per_activate: f64,
    /// Coefficient of variation of per-bank accesses.
    pub bank_imbalance: f64,
    /// Pages moved by repartitioning.
    pub migrated_pages: u64,
    /// Copy requests injected for those pages.
    pub migration_requests: u64,
    /// Repartitioning epochs executed.
    pub repartitions: u64,
    /// Allocations that spilled outside their partition.
    pub fallback_allocations: u64,
}

impl RunResult {
    /// Per-thread IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.ipc).collect()
    }
}

/// Shared-run metrics relative to per-thread alone-run IPCs.
#[derive(Debug, Clone, PartialEq)]
pub struct MixMetrics {
    /// Per-thread speedups `ipc_shared / ipc_alone`.
    pub speedups: Vec<f64>,
    /// Weighted speedup: sum of speedups (system throughput).
    pub weighted_speedup: f64,
    /// Harmonic mean of speedups (balance of throughput and fairness).
    pub harmonic_speedup: f64,
    /// Maximum slowdown: `max(ipc_alone / ipc_shared)` (unfairness; lower
    /// is better/fairer).
    pub max_slowdown: f64,
}

impl MixMetrics {
    /// Compute the metrics from alone and shared IPCs.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, or contain
    /// non-positive IPCs.
    pub fn new(alone: &[f64], shared: &[f64]) -> Self {
        assert_eq!(alone.len(), shared.len(), "thread count mismatch");
        assert!(!alone.is_empty(), "no threads");
        for (&a, &s) in alone.iter().zip(shared) {
            assert!(a > 0.0 && s > 0.0, "IPCs must be positive (alone {a}, shared {s})");
        }
        let speedups: Vec<f64> = shared.iter().zip(alone).map(|(s, a)| s / a).collect();
        let weighted_speedup = speedups.iter().sum();
        let harmonic_speedup =
            speedups.len() as f64 / speedups.iter().map(|s| 1.0 / s).sum::<f64>();
        let max_slowdown = speedups.iter().map(|s| 1.0 / s).fold(f64::MIN, f64::max);
        MixMetrics { speedups, weighted_speedup, harmonic_speedup, max_slowdown }
    }
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn gmean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "gmean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "gmean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_activity_energy_scales_with_commands() {
        let model = dbp_dram::EnergyModel::default();
        let quiet = DramActivity { elapsed: 1000, ..Default::default() };
        let busy =
            DramActivity { activates: 100, reads: 300, writes: 100, refreshes: 2, elapsed: 1000 };
        assert!(busy.energy_nj(&model) > quiet.energy_nj(&model));
        assert!(quiet.energy_nj(&model) > 0.0, "background power is nonzero");
    }

    #[test]
    fn metrics_on_no_slowdown() {
        let m = MixMetrics::new(&[1.0, 2.0], &[1.0, 2.0]);
        assert!((m.weighted_speedup - 2.0).abs() < 1e-12);
        assert!((m.harmonic_speedup - 1.0).abs() < 1e-12);
        assert!((m.max_slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_slowdown_tracks_worst_thread() {
        let m = MixMetrics::new(&[1.0, 1.0], &[0.5, 0.9]);
        assert!((m.max_slowdown - 2.0).abs() < 1e-12);
        assert!((m.weighted_speedup - 1.4).abs() < 1e-12);
    }

    #[test]
    fn harmonic_punishes_imbalance() {
        let balanced = MixMetrics::new(&[1.0, 1.0], &[0.7, 0.7]);
        let skewed = MixMetrics::new(&[1.0, 1.0], &[1.0, 0.4]);
        assert!(balanced.harmonic_speedup > skewed.harmonic_speedup);
    }

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        gmean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        MixMetrics::new(&[1.0], &[1.0, 2.0]);
    }
}
