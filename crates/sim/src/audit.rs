//! Shadow-policy evaluation: the simulator side of the decision audit.
//!
//! A [`ShadowRack`] holds N extra [`PartitionPolicy`] instances that see
//! the exact same per-epoch [`ThreadMemProfile`] stream as the live
//! policy, in observation-only mode: their plans are recorded, compared
//! against the live decision, and costed (how many resident pages *would*
//! have to migrate to adopt them) — but never applied. The pure-data
//! accounting lives in [`dbp_obs::audit`]; this module owns everything
//! that needs the policy trait, the topology, or the OS memory manager,
//! which `dbp-obs` (dependency-free by design) cannot see.
//!
//! ## Observation-only contract
//!
//! `observe` takes `&MemoryManager` and reads page placement through
//! [`MemoryManager::pages_outside`]; shadow policies receive their *own*
//! previous plan (never the live one) and a disabled recorder, so no
//! shadow decision can leak into events, placement, or scheduling. The
//! property tests in `system.rs` hold the whole rack to byte-identical
//! simulation output, attached vs detached, across every scheduler.

use dbp_core::policy::{DbpConfig, PartitionPolicy, PolicyKind};
use dbp_core::{BankDemandEstimator, ColorTopology, EstimatorConfig, ThreadMemProfile};
use dbp_memctrl::ThreadProf;
use dbp_obs::audit::{AuditBuilder, EpochObservation, ProfileSample, ShadowEpoch};
use dbp_obs::AuditReport;
use dbp_osmem::{ColorSet, MemoryManager};

use crate::config::SimConfig;

/// One shadow policy plus the plan it last proposed (its own history —
/// a shadow reacts to its own previous decision, as it would if live).
struct Shadow {
    name: String,
    policy: Box<dyn PartitionPolicy>,
    last_plan: Vec<ColorSet>,
}

/// The decision audit layer: shadow policies, the demand estimator
/// replica, and the accumulating report builder.
pub struct ShadowRack {
    shadows: Vec<Shadow>,
    /// Replica of the live estimator (the live policy's knobs when it is
    /// DBP, defaults otherwise) used to log per-epoch demand predictions.
    estimator: BankDemandEstimator,
    builder: AuditBuilder,
    epoch_cpu_cycles: u64,
}

impl std::fmt::Debug for ShadowRack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.shadows.iter().map(|s| s.name.as_str()).collect();
        f.debug_struct("ShadowRack").field("shadows", &names).finish()
    }
}

impl ShadowRack {
    /// Build the standard rack: equal split, MCP, and DBP with a doubled
    /// estimator gain (`alpha`) — one static rival, one channel-granular
    /// rival, and one knob ablation of the live estimator. `live_cold`
    /// is the live policy's cold-start plan, seeding its change
    /// detection; each shadow cold-starts itself the same way the system
    /// cold-starts the live policy.
    pub fn standard(cfg: &SimConfig, topo: &ColorTopology, live_cold: &[ColorSet]) -> ShadowRack {
        let threads = live_cold.len();
        let estimator_cfg = match cfg.policy {
            PolicyKind::Dbp(dbp) => dbp.estimator,
            _ => EstimatorConfig::default(),
        };
        let alt_estimator = EstimatorConfig { alpha: estimator_cfg.alpha * 2.0, ..estimator_cfg };
        let alt_dbp = match cfg.policy {
            PolicyKind::Dbp(dbp) => DbpConfig { estimator: alt_estimator, ..dbp },
            _ => DbpConfig { estimator: alt_estimator, ..DbpConfig::default() },
        };
        let kinds: Vec<(String, PolicyKind)> = vec![
            ("equal-BP".to_string(), PolicyKind::Equal),
            ("MCP".to_string(), PolicyKind::Mcp(Default::default())),
            (format!("DBP(alpha={})", alt_estimator.alpha), PolicyKind::Dbp(alt_dbp)),
        ];
        let cold_profiles = vec![ThreadMemProfile::default(); threads];
        let mut shadows = Vec::new();
        for (name, kind) in kinds {
            let mut policy = kind.build();
            let last_plan = policy.partition(&cold_profiles, topo, None);
            shadows.push(Shadow { name, policy, last_plan });
        }
        let cold_plans = std::iter::once(live_cold)
            .chain(shadows.iter().map(|s| s.last_plan.as_slice()))
            .map(|plan| plan.iter().map(|c| topo.units_of(c)).collect())
            .collect();
        let builder = AuditBuilder::new(
            cfg.policy.label(),
            shadows.iter().map(|s| s.name.clone()).collect(),
            threads,
            topo.units(),
            cold_plans,
        );
        ShadowRack {
            shadows,
            estimator: BankDemandEstimator::new(estimator_cfg),
            builder,
            epoch_cpu_cycles: cfg.epoch_cpu_cycles,
        }
    }

    /// Record that measurement began after `decisions` repartitions.
    pub fn note_measurement_start(&mut self, decisions: u64) {
        self.builder.note_measurement_start(decisions);
    }

    /// Feed one repartition decision: the profiles every policy saw, the
    /// raw epoch counters behind them, and the live plan about to be
    /// applied. Runs every shadow policy on the same inputs and logs the
    /// comparison. Strictly read-only with respect to the simulation
    /// (`osmem` is only consulted for hypothetical migration costs).
    pub fn observe(
        &mut self,
        epoch: u64,
        profiles: &[ThreadMemProfile],
        snap: &[ThreadProf],
        live_plan: &[ColorSet],
        topo: &ColorTopology,
        osmem: &MemoryManager,
    ) {
        let achieved = snap
            .iter()
            .map(|p| ProfileSample {
                mpki: p.mpki(),
                rbl: p.rbl(),
                blp: p.blp(),
                ipc: p.instructions as f64 / self.epoch_cpu_cycles.max(1) as f64,
            })
            .collect();
        let predicted_units =
            profiles.iter().map(|p| self.estimator.demand(p, topo.units())).collect();
        let shadow_epochs = self
            .shadows
            .iter_mut()
            .map(|s| {
                let plan = s.policy.partition(profiles, topo, Some(&s.last_plan));
                // The migration cost of adopting this plan *now*: pages
                // resident outside the proposed partition. An honest
                // counterfactual proxy — placement history belongs to
                // the live policy, so a long-diverged shadow reads high.
                let would_migrate_pages = plan
                    .iter()
                    .enumerate()
                    .map(|(t, colors)| osmem.pages_outside(t, colors) as u64)
                    .sum();
                let units = plan.iter().map(|c| topo.units_of(c)).collect();
                s.last_plan = plan;
                ShadowEpoch { units, would_migrate_pages }
            })
            .collect();
        self.builder.observe(&EpochObservation {
            epoch,
            live_units: live_plan.iter().map(|c| topo.units_of(c)).collect(),
            achieved,
            predicted_units,
            shadows: shadow_epochs,
        });
    }

    /// Snapshot the audit accumulated so far.
    pub fn report(&self) -> AuditReport {
        self.builder.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbp_osmem::MigrationMode;

    fn base_cfg() -> SimConfig {
        SimConfig { policy: PolicyKind::Dbp(DbpConfig::default()), ..SimConfig::fast_test() }
    }

    fn cold_plan(cfg: &SimConfig, topo: &ColorTopology, n: usize) -> Vec<ColorSet> {
        let mut policy = cfg.policy.build();
        policy.partition(&vec![ThreadMemProfile::default(); n], topo, None)
    }

    fn profiles() -> Vec<ThreadMemProfile> {
        vec![
            ThreadMemProfile { mpki: 30.0, rbl: 0.4, blp: 3.0, reads: 4000, bus_cycles: 9000 },
            ThreadMemProfile { mpki: 0.2, rbl: 0.9, blp: 1.1, reads: 40, bus_cycles: 90 },
        ]
    }

    fn snap() -> Vec<ThreadProf> {
        vec![
            ThreadProf { instructions: 50_000, ..Default::default() },
            ThreadProf { instructions: 90_000, ..Default::default() },
        ]
    }

    #[test]
    fn standard_rack_runs_three_shadows() {
        let cfg = base_cfg();
        let topo = ColorTopology::from_dram(&cfg.dram);
        let cold = cold_plan(&cfg, &topo, 2);
        let mut rack = ShadowRack::standard(&cfg, &topo, &cold);
        let osmem = MemoryManager::new(&cfg.dram, 2, MigrationMode::Lazy);
        rack.observe(0, &profiles(), &snap(), &cold, &topo, &osmem);
        let r = rack.report();
        assert_eq!(r.shadows.len(), 3);
        assert_eq!(r.live.name, "DBP");
        assert_eq!(r.shadows[0].name, "equal-BP");
        assert_eq!(r.shadows[1].name, "MCP");
        assert_eq!(r.shadows[2].name, "DBP(alpha=4)");
        assert_eq!(r.threads, 2);
        assert_eq!(r.convergence.decisions, 1);
        // Demand predictions logged for both threads at the first epoch.
        assert_eq!(r.epochs.len(), 1);
        assert!(r.epochs[0].mean_abs_pred_error.is_none());
    }

    #[test]
    fn observe_is_read_only_for_osmem() {
        let cfg = base_cfg();
        let topo = ColorTopology::from_dram(&cfg.dram);
        let cold = cold_plan(&cfg, &topo, 2);
        let mut rack = ShadowRack::standard(&cfg, &topo, &cold);
        let mut osmem = MemoryManager::new(&cfg.dram, 2, MigrationMode::Lazy);
        osmem.set_partition(0, topo.unit_colors(0));
        osmem.set_partition(1, topo.unit_colors(1));
        for page in 0..16u64 {
            osmem.translate(0, page << 12);
            osmem.translate(1, (page + 100) << 12);
        }
        let before = *osmem.stats();
        let placements: Vec<u64> =
            (0..16u64).map(|page| osmem.translate(0, page << 12).pa).collect();
        rack.observe(0, &profiles(), &snap(), &cold, &topo, &osmem);
        rack.observe(1, &profiles(), &snap(), &cold, &topo, &osmem);
        let after_placements: Vec<u64> =
            (0..16u64).map(|page| osmem.translate(0, page << 12).pa).collect();
        assert_eq!(before, *osmem.stats());
        assert_eq!(placements, after_placements);
    }

    #[test]
    fn shadow_distance_tracks_divergence_from_live() {
        // A live plan that deliberately starves thread 1 must diverge
        // from the equal-split shadow.
        let cfg = base_cfg();
        let topo = ColorTopology::from_dram(&cfg.dram);
        let cold = cold_plan(&cfg, &topo, 2);
        let mut rack = ShadowRack::standard(&cfg, &topo, &cold);
        let osmem = MemoryManager::new(&cfg.dram, 2, MigrationMode::Lazy);
        let units = topo.units();
        let skewed: Vec<ColorSet> =
            vec![topo.units_colors(0..units - 1), topo.units_colors(units - 1..units)];
        rack.observe(0, &profiles(), &snap(), &skewed, &topo, &osmem);
        let r = rack.report();
        let equal = &r.shadows[0];
        assert!(equal.mean_distance > 0.0, "skewed live vs equal shadow must differ");
    }
}
