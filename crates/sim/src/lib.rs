//! Full-system CMP + DRAM simulator for the DBP reproduction.
//!
//! Composes every substrate crate into one cycle-driven system:
//!
//! - `dbp-cpu` cores consume synthetic traces and stall on memory;
//! - `dbp-cache` private L1/L2 hierarchies filter the access stream;
//! - `dbp-osmem` translates and allocates pages under the active
//!   partition, migrating pages when the partition changes;
//! - `dbp-memctrl` + `dbp-dram` serve the misses under a configurable
//!   scheduler;
//! - `dbp-core` policies repartition the banks every profiling epoch.
//!
//! The CPU and DRAM run in separate clock domains
//! ([`SimConfig::cpu_per_dram`] CPU cycles per DRAM cycle).
//!
//! # Example
//!
//! ```
//! use dbp_sim::{SimConfig, System, runner};
//! use dbp_workloads::mixes_4core;
//!
//! let mut cfg = SimConfig::fast_test();
//! cfg.target_instructions = 50_000;
//! let mix = &mixes_4core()[5]; // a 50%-intensive mix
//! let result = runner::run_mix(&cfg, mix);
//! assert!(result.weighted_speedup() > 0.0);
//! ```

pub mod audit;
pub mod config;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod system;

pub use config::{MigrationCost, SchedulerKind, SimConfig};
pub use metrics::{DramActivity, MixMetrics, RunResult, ThreadResult};
pub use system::System;
